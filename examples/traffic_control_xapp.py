#!/usr/bin/env python3
"""Fighting bufferbloat with the traffic-control xApp (paper §6.1.1).

Scenario: a VoIP call (G.711, 172 B every 20 ms) shares one UE's
bearer with a greedy TCP-Cubic download.  Without intervention the
Cubic flow bloats the RLC buffer and the VoIP frames inherit hundreds
of milliseconds of queueing delay.

The traffic controller (Table 3 of the paper) forwards RLC statistics
over a Redis-like broker to the bufferbloat xApp; when the sojourn time
crosses the threshold, the xApp — through the TC service model —
creates a second FIFO queue, installs a 5-tuple filter for the VoIP
flow, loads the 5G-BDP pacer and a round-robin scheduler.

Run:  python examples/traffic_control_xapp.py
"""

from repro.controllers.traffic import BufferbloatXapp, TrafficControllerIApp
from repro.core.server import Server, ServerConfig
from repro.core.simclock import SimClock
from repro.core.transport import InProcTransport
from repro.metrics.stats import percentile
from repro.northbound.broker import Broker
from repro.ran.base_station import BaseStation, BaseStationConfig, attach_agent
from repro.traffic import CubicFlow, DeliveryHub, FiveTuple, VoipFlow


def run(mode: str) -> VoipFlow:
    clock = SimClock()
    bs = BaseStation(BaseStationConfig(), clock)
    transport = InProcTransport()
    broker = Broker()

    if mode == "xapp":
        server = Server(ServerConfig(e2ap_codec="fb"))
        server.listen(transport, "ric")
        iapp = TrafficControllerIApp(broker, sm_codec="fb", stats_period_ms=100.0)
        server.add_iapp(iapp)
        agent = attach_agent(bs, transport, e2ap_codec="fb", sm_codec="fb")
        agent.connect("ric")

    bs.attach_ue(1, fixed_mcs=20)
    bs.start()

    voip = VoipFlow(clock, sink=lambda p: bs.deliver_downlink(1, p))
    cubic = CubicFlow(clock, sink=lambda p: bs.deliver_downlink(1, p))
    hub = DeliveryHub()
    bs.rlc_of(1).on_delivered = hub
    hub.register(voip.flow, voip.on_delivered)
    hub.register(cubic.flow, cubic.on_delivered)

    xapp = None
    if mode == "xapp":
        xapp = BufferbloatXapp(iapp, low_latency_flow=voip.flow, threshold_ms=20.0)

    voip.start()
    clock.call_at(5.0, cubic.start)  # the download starts 5 s in
    clock.run_until(30.0)

    if xapp is not None and xapp.triggered:
        print(f"  xApp acted at t={xapp.actions.triggered_at_ms / 1000:.2f} s "
              f"(queue+filter+pacer+RR installed)")
    return voip


def main() -> None:
    print("--- transparent mode: VoIP shares the bloated RLC buffer ---")
    transparent = run("transparent")
    p50_t = percentile(transparent.rtts_ms[len(transparent.rtts_ms) // 3:], 50)
    print(f"  VoIP RTT p50 (congested window): {p50_t:.0f} ms")

    print("--- xApp mode: TC SM segregates and paces the flows ---")
    controlled = run("xapp")
    p50_x = percentile(controlled.rtts_ms[len(controlled.rtts_ms) // 3:], 50)
    print(f"  VoIP RTT p50 (congested window): {p50_x:.0f} ms")

    print(f"=> the xApp made the VoIP flow {p50_t / p50_x:.1f}x faster "
          f"(the paper's Fig. 11c reports ~4x)")
    assert p50_t / p50_x > 4.0


if __name__ == "__main__":
    main()
