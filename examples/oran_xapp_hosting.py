#!/usr/bin/env python3
"""Hosting O-RAN-style xApps on a FlexRIC specialization (paper §6.3).

The paper argues that a "simple-to-use E2 controller, as opposed to
cluster-based implementations such as O-RAN RIC" can host standard
xApps with the five platform services — messaging, subscription
merging, xApp management, a shared database, and logging/fault
management — implemented as SM-independent iApps.

This example deploys three xApps on the host:

* ``kpm-monitor`` — collects E2SM-KPM cell metrics into the shared DB,
* ``load-alert``  — consumes the same (merged!) subscription and raises
  alerts on the message bus when PRB utilisation is high,
* ``crashy``      — an xApp that throws on every indication, showing
  the fault isolation boundary.

Run:  python examples/oran_xapp_hosting.py
"""

from repro.controllers.xapp_host import HostedXapp, XappHostIApp
from repro.core.server import Server, ServerConfig
from repro.core.simclock import SimClock
from repro.core.transport import InProcTransport
from repro.ran.base_station import BaseStation, BaseStationConfig, attach_agent
from repro.sm import kpm
from repro.sm.base import decode_payload
from repro.traffic.flows import FiveTuple
from repro.traffic.iperf import FullBufferFlow


class KpmMonitor(HostedXapp):
    name = "kpm-monitor"

    def on_start(self, api):
        super().on_start(api)
        for node in api.nodes():
            api.subscribe_sm(node.conn_id, kpm.INFO.oid, period_ms=100.0)
        api.log("subscribed to KPM on every node")

    def on_indication(self, conn_id, oid, event):
        style, samples, _ = kpm.report_from_value(
            decode_payload(bytes(event.payload), "fb")
        )
        for sample in samples:
            self.api.db_put(f"kpm/{conn_id}/{sample.name}", sample.value)


class LoadAlert(HostedXapp):
    name = "load-alert"

    def on_start(self, api):
        super().on_start(api)
        for node in api.nodes():
            # Identical parameters: the host MERGES this with
            # kpm-monitor's subscription - one E2 subscription total.
            api.subscribe_sm(node.conn_id, kpm.INFO.oid, period_ms=100.0)
        self.alerts = 0

    def on_indication(self, conn_id, oid, event):
        style, samples, _ = kpm.report_from_value(
            decode_payload(bytes(event.payload), "fb")
        )
        throughput = {s.name: s.value for s in samples}.get("DRB.UEThpDl", 0.0)
        if throughput > 1.0 and self.alerts == 0:  # > 1 Mbit moved
            self.alerts += 1
            self.api.publish("alerts/load", {"node": conn_id, "mbit": throughput})
            self.api.log(f"load alert on node {conn_id}: {throughput:.1f} Mbit")


class Crashy(HostedXapp):
    name = "crashy"

    def on_start(self, api):
        super().on_start(api)
        for node in api.nodes():
            api.subscribe_sm(node.conn_id, kpm.INFO.oid, period_ms=100.0)

    def on_indication(self, conn_id, oid, event):
        raise RuntimeError("I always crash")


def main() -> None:
    clock = SimClock()
    transport = InProcTransport()
    server = Server(ServerConfig(e2ap_codec="fb"))
    server.listen(transport, "ric")
    host = XappHostIApp(sm_codec="fb")
    server.add_iapp(host)

    bs = BaseStation(BaseStationConfig(), clock)
    agent = attach_agent(bs, transport, e2ap_codec="fb", sm_codec="fb")
    # Add the standardized E2SM-KPM alongside the FlexRIC bundle.
    kpm_function = kpm.KpmFunction(
        provider=kpm.base_station_provider(bs), sm_codec="fb", clock=clock
    )
    agent.register_function(kpm_function)
    agent.connect("ric")

    bs.attach_ue(1, fixed_mcs=20)
    flow = FullBufferFlow(
        clock,
        sink=lambda p: bs.deliver_downlink(1, p),
        backlog_probe=lambda: bs.rlc_of(1).backlog_bytes,
        flow=FiveTuple("10.0.0.9", "10.0.1.1", 5202, 5202, "udp"),
    )
    flow.start()
    bs.start()

    alerts = []
    host.bus.subscribe("alerts/*", lambda channel, payload: alerts.append(payload))

    host.deploy(KpmMonitor())
    host.deploy(LoadAlert())
    host.deploy(Crashy())
    print(f"deployed xApps: {host.deployed()}")
    print(f"E2 subscriptions at the agent: {host.merged_subscriptions} "
          f"(merges saved: {host.merges_saved})")

    clock.run_until(2.0)

    print(f"shared DB after 2 s: "
          f"{ {k: round(v, 2) for k, v in sorted(host.db.items()) if '/DRB' in k or 'Conn' in k} }")
    print(f"alerts on the bus: {alerts}")
    print(f"crashy's recorded faults: {host.faults.get('crashy', 0)} "
          f"(host and peers unaffected)")
    assert host.merged_subscriptions == 1, "all three xApps share ONE subscription"
    assert alerts, "the load alert should have fired"
    assert host.faults.get("crashy", 0) > 0
    healthy_logs = [e for e in host.logbook if e.level == "error"]
    print(f"error log entries: {len(healthy_logs)} (isolation boundary held)")
    print("xApp hosting example OK")


if __name__ == "__main__":
    main()
