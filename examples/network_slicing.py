#!/usr/bin/env python3
"""RAT-unaware network slicing through the SC SM (paper §6.1.2).

Reenacts the paper's Fig. 13a storyline with the slicing controller's
REST northbound driven exactly like the paper's command-line xApp
(curl -> here a stdlib HTTP client):

  t1  two UEs, no slicing          -> equal split
  t2  a third UE connects          -> the "white" UE drops below 50 %
  t3  deploy NVS 50/50 via REST    -> white restored to half the cell
  t4  reconfigure to 66/34         -> white gets two thirds

Run:  python examples/network_slicing.py
"""

from repro.controllers.slicing import SlicingControllerIApp
from repro.core.server import Server, ServerConfig
from repro.core.simclock import SimClock
from repro.core.transport import InProcTransport
from repro.northbound.rest import RestClient, RestServer
from repro.ran.base_station import BaseStation, BaseStationConfig, attach_agent
from repro.sm.slice_ctrl import ALGO_NVS
from repro.traffic.flows import FiveTuple
from repro.traffic.iperf import FullBufferFlow


def slice_body(slice_id: int, cap: float, label: str) -> dict:
    return {
        "slice_id": slice_id,
        "label": label,
        "kind": "capacity",
        "cap": cap,
        "rate_mbps": 0.0,
        "ref_mbps": 0.0,
        "ue_scheduler": "pf",
    }


def main() -> None:
    clock = SimClock()
    bs = BaseStation(BaseStationConfig(), clock)
    transport = InProcTransport()
    server = Server(ServerConfig(e2ap_codec="fb"))
    server.listen(transport, "ric")
    iapp = SlicingControllerIApp(sm_codec="fb")
    server.add_iapp(iapp)
    agent = attach_agent(bs, transport, e2ap_codec="fb", sm_codec="fb")
    agent.connect("ric")
    bs.start()

    rest = RestServer()
    iapp.expose_rest(rest)
    rest.start()
    curl = RestClient("127.0.0.1", rest.port)

    flows = {}

    def add_ue(rnti: int) -> None:
        bs.attach_ue(rnti, fixed_mcs=20)
        flow = FullBufferFlow(
            clock,
            sink=lambda p, r=rnti: bs.deliver_downlink(r, p),
            backlog_probe=lambda r=rnti: bs.rlc_of(r).backlog_bytes,
            flow=FiveTuple("10.0.0.9", f"10.0.1.{rnti}", 5202, 5202, "udp"),
        )
        flow.start()
        flows[rnti] = flow

    def measure(label: str, seconds: float = 4.0) -> None:
        before = {r: bs.mac.ues[r].total_bytes_dl for r in bs.mac.ues}
        clock.run_until(clock.now + seconds)
        parts = []
        for rnti in sorted(before):
            mbps = (bs.mac.ues[rnti].total_bytes_dl - before[rnti]) * 8 / seconds / 1e6
            parts.append(f"ue{rnti}={mbps:5.1f}")
        print(f"  {label:<28} {'  '.join(parts)}  Mbps")

    try:
        nodes = curl.get("/nodes")
        conn = nodes[0]["conn_id"]
        print(f"controller sees node {nodes[0]['plmn']}/{nodes[0]['nb_id']} "
              f"({nodes[0]['kind']})")

        add_ue(1)  # the "white" UE with a 50 % SLA
        add_ue(2)
        measure("t1: 2 UEs, no slicing")

        add_ue(3)
        measure("t2: 3rd UE arrives")

        # t3: the xApp (curl) deploys NVS slices and associates UEs.
        curl.post(f"/slice/{conn}", {"algo": ALGO_NVS})
        curl.post(f"/slice/{conn}", {"slice": slice_body(1, 0.5, "white")})
        curl.post(f"/slice/{conn}", {"slice": slice_body(2, 0.5, "rest")})
        curl.post(f"/slice/{conn}", {"assoc": {"rnti": 1, "slice_id": 1}})
        curl.post(f"/slice/{conn}", {"assoc": {"rnti": 2, "slice_id": 2}})
        curl.post(f"/slice/{conn}", {"assoc": {"rnti": 3, "slice_id": 2}})
        measure("t3: NVS 50/50 deployed")

        # t4: shrink-then-grow to 66/34 (admission control is strict).
        curl.post(f"/slice/{conn}", {"slice": slice_body(2, 0.34, "rest")})
        curl.post(f"/slice/{conn}", {"slice": slice_body(1, 0.66, "white")})
        measure("t4: white grows to 66%")

        ues = curl.get("/ues")
        print(f"discovered UEs via RRC events: "
              f"{[(u['rnti'], u['slice_id']) for u in ues]}")
        print("slicing example OK")
    finally:
        rest.stop()


if __name__ == "__main__":
    main()
