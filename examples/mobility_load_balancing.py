#!/usr/bin/env python3
"""Mobility load balancing through the RRC SM's handover control.

The paper's introduction lists "user associations and handovers" among
what xApps "control, coordinate, and optimize" through FlexRIC.  This
example builds that xApp: two neighbouring cells, five UEs all camped
on cell 1, and a load-balancing iApp that watches per-cell PRB load
through the MAC statistics SM and commands handovers (RRC SM control)
until the load evens out.  Queued downlink data is forwarded losslessly
during each handover.

Run:  python examples/mobility_load_balancing.py
"""

from repro.core.codec.base import materialize
from repro.core.e2ap.ies import RicActionDefinition, RicActionKind
from repro.core.server import Server, ServerConfig, SubscriptionCallbacks
from repro.core.simclock import SimClock
from repro.core.transport import InProcTransport
from repro.ran.base_station import BaseStation, BaseStationConfig, attach_agent
from repro.ran.mobility import MobilityManager
from repro.sm import mac_stats, rrc_conf
from repro.sm.base import PeriodicTrigger, decode_payload
from repro.traffic.flows import FiveTuple
from repro.traffic.iperf import FullBufferFlow


class LoadBalancer:
    """The xApp: even out the number of active UEs across cells."""

    def __init__(self, server, sm_codec="fb"):
        self.server = server
        self.sm_codec = sm_codec
        self.load = {}        # conn_id -> number of active UEs
        self.nb_of = {}       # conn_id -> nb_id
        self.rrc_fid = {}     # conn_id -> RRC function id
        self.ues_at = {}      # conn_id -> [rnti, ...]
        self.handovers = 0

    def watch(self, record):
        self.nb_of[record.conn_id] = record.node_id.nb_id
        self.rrc_fid[record.conn_id] = record.function_by_oid(
            rrc_conf.INFO.oid
        ).ran_function_id
        mac_item = record.function_by_oid(mac_stats.INFO.oid)
        self.server.subscribe(
            conn_id=record.conn_id,
            ran_function_id=mac_item.ran_function_id,
            event_trigger=PeriodicTrigger(100.0).to_bytes(self.sm_codec),
            actions=[RicActionDefinition(action_id=1, kind=RicActionKind.REPORT)],
            callbacks=SubscriptionCallbacks(
                on_indication=lambda event, conn=record.conn_id: self._on_stats(conn, event)
            ),
        )

    def _on_stats(self, conn_id, event):
        tree = materialize(decode_payload(bytes(event.payload), self.sm_codec))
        rntis = [ue["rnti"] for ue in tree["ues"]]
        self.load[conn_id] = len(rntis)
        self.ues_at[conn_id] = rntis
        self._rebalance()

    def _rebalance(self):
        if len(self.load) < 2:
            return
        ranked = sorted(self.load.items(), key=lambda item: item[1])
        (low_conn, low), (high_conn, high) = ranked[0], ranked[-1]
        if high - low < 2 or not self.ues_at.get(high_conn):
            return
        rnti = self.ues_at[high_conn][0]
        self.server.control(
            conn_id=high_conn,
            ran_function_id=self.rrc_fid[high_conn],
            header=b"",
            payload=rrc_conf.build_handover(
                rnti, target_nb=self.nb_of[low_conn], codec_name=self.sm_codec
            ),
        )
        self.handovers += 1
        print(f"  xApp: handover UE {rnti} "
              f"cell {self.nb_of[high_conn]} -> cell {self.nb_of[low_conn]} "
              f"(load {high} vs {low})")


def main() -> None:
    clock = SimClock()
    transport = InProcTransport()
    server = Server(ServerConfig(e2ap_codec="fb"))
    server.listen(transport, "ric")

    manager = MobilityManager()
    cells = {}
    for nb_id in (1, 2):
        bs = BaseStation(BaseStationConfig(nb_id=nb_id), clock)
        manager.register(bs)
        attach_agent(bs, transport, e2ap_codec="fb", sm_codec="fb").connect("ric")
        bs.start()
        cells[nb_id] = bs

    balancer = LoadBalancer(server)
    for record in server.agents():
        balancer.watch(record)

    # Five UEs all camp on cell 1 (e.g. after an event lets out).
    for rnti in range(1, 6):
        cells[1].attach_ue(rnti, fixed_mcs=20)
        flow = FullBufferFlow(
            clock,
            sink=lambda p, r=rnti: manager.cell(manager.locate(r)).deliver_downlink(r, p),
            backlog_probe=lambda r=rnti: manager.cell(manager.locate(r)).rlc_of(r).backlog_bytes,
            flow=FiveTuple("10.0.0.9", f"10.0.1.{rnti}", 5202, 5202, "udp"),
        )
        flow.start()
    print(f"initial camping: cell1={len(cells[1].mac.ues)} UEs, "
          f"cell2={len(cells[2].mac.ues)} UEs")

    clock.run_until(3.0)

    print(f"after balancing:  cell1={len(cells[1].mac.ues)} UEs, "
          f"cell2={len(cells[2].mac.ues)} UEs "
          f"({balancer.handovers} handovers, {manager.handovers_done} executed)")
    per_ue = {
        rnti: manager.cell(manager.locate(rnti)).mac.ues[rnti].total_bytes_dl * 8 / 3.0 / 1e6
        for rnti in range(1, 6)
    }
    print("  per-UE throughput: "
          + "  ".join(f"ue{r}={v:5.1f}" for r, v in per_ue.items()) + "  Mbps")
    assert abs(len(cells[1].mac.ues) - len(cells[2].mac.ues)) <= 1
    # Two cells instead of one: every UE ends up faster than a 5-way split.
    single_cell_share = 50.0 / 5
    assert min(per_ue.values()) > single_cell_share
    print("mobility load balancing OK")


if __name__ == "__main__":
    main()
