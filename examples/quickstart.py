#!/usr/bin/env python3
"""Quickstart: a minimal SD-RAN controller with the FlexRIC SDK.

Builds the smallest complete deployment (Fig. 1 of the paper):

1. a simulated 5G base station with one UE,
2. a FlexRIC *agent* attached to it, exposing the standard service
   models (MAC/RLC/PDCP statistics, RRC events, slice control,
   traffic control),
3. a FlexRIC *server* (controller) with one iApp that subscribes to
   MAC statistics and prints what arrives,
4. one control interaction: pin the cell to the NVS slice algorithm.

Run:  python examples/quickstart.py
"""

from repro.core.codec.base import materialize
from repro.core.e2ap.ies import RicActionDefinition, RicActionKind
from repro.core.server import Server, ServerConfig, SubscriptionCallbacks
from repro.core.simclock import SimClock
from repro.core.transport import InProcTransport
from repro.ran.base_station import BaseStation, BaseStationConfig, attach_agent
from repro.sm import mac_stats, slice_ctrl
from repro.sm.base import PeriodicTrigger, decode_payload
from repro.traffic.flows import FiveTuple, Packet


def main() -> None:
    # --- RAN substrate: one NR cell on a simulation clock -------------
    clock = SimClock()
    bs = BaseStation(BaseStationConfig(plmn="00101", nb_id=1), clock)

    # --- controller: server library + an inline iApp ------------------
    transport = InProcTransport()
    server = Server(ServerConfig(ric_id=1, e2ap_codec="fb"))
    server.listen(transport, "ric")

    # --- agent: one call wires the standard RAN-function bundle -------
    agent = attach_agent(bs, transport, e2ap_codec="fb", sm_codec="fb")
    agent.connect("ric")
    record = server.agents()[0]
    print(f"agent connected: {record.node_id.label}, "
          f"functions={sorted(record.functions)}")

    # --- subscribe to MAC statistics every 100 ms ---------------------
    reports = []

    def on_stats(event) -> None:
        tree = materialize(decode_payload(bytes(event.payload), "fb"))
        reports.append(tree)

    mac_item = record.function_by_oid(mac_stats.INFO.oid)
    server.subscribe(
        conn_id=record.conn_id,
        ran_function_id=mac_item.ran_function_id,
        event_trigger=PeriodicTrigger(100.0).to_bytes("fb"),
        actions=[RicActionDefinition(action_id=1, kind=RicActionKind.REPORT)],
        callbacks=SubscriptionCallbacks(on_indication=on_stats),
    )

    # --- a control message: select the NVS slice algorithm ------------
    sc_item = record.function_by_oid(slice_ctrl.INFO.oid)
    server.control(
        conn_id=record.conn_id,
        ran_function_id=sc_item.ran_function_id,
        header=b"",
        payload=slice_ctrl.build_set_algo(slice_ctrl.ALGO_NVS, "fb"),
        on_outcome=lambda outcome: print(f"control outcome: {type(outcome).__name__}"),
    )

    # --- traffic + run -------------------------------------------------
    ue = bs.attach_ue(rnti=1, fixed_mcs=20)
    flow = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 5001, "udp")
    for _ in range(2000):
        bs.deliver_downlink(1, Packet(flow=flow, size=1400, created_at=clock.now))
    bs.start()
    clock.run_until(1.0)

    print(f"received {len(reports)} MAC reports over 1 simulated second")
    last = reports[-1]["ues"][0]
    print(f"UE {last['rnti']}: mcs={last['mcs_dl']} "
          f"slice={last['slice_id']} bytes_dl(last period)={last['bytes_dl']}")
    print(f"total downlink delivered: {ue.total_bytes_dl * 8 / 1e6:.1f} Mbit")
    assert reports, "expected at least one statistics report"
    print("quickstart OK")


if __name__ == "__main__":
    main()
