#!/usr/bin/env python3
"""E2 interoperability: one agent, two very different controllers.

FlexRIC "is O-RAN compatible by means of E2AP control protocol" (§1).
This example attaches the *same* FlexRIC agent implementation to

1. the O-RAN RIC reference model (E2 termination + RMR + xApp,
   ASN.1-encoded E2AP), and
2. a native FlexRIC controller,

and round-trips a HW-SM ping through both, printing the per-path cost
(the two-hop, double-decode O-RAN path versus FlexRIC's direct one).

Run:  python examples/oran_interop.py
"""

import time

from repro.baselines.oran import HwXapp, OranRic
from repro.core.agent import Agent, AgentConfig
from repro.core.e2ap.ies import GlobalE2NodeId, NodeKind
from repro.core.server import Server, ServerConfig
from repro.core.transport import InProcTransport
from repro.experiments.common import HwPingerIApp
from repro.sm import hw


def ping_via_oran() -> float:
    transport = InProcTransport()
    ric = OranRic()  # 15 platform components, E2T, submgr, dbaas
    ric.listen(transport, "oran")
    xapp = HwXapp(ric.router, ric.dbaas_store)
    ric.deploy_xapp(xapp)

    agent = Agent(
        AgentConfig(node_id=GlobalE2NodeId("00101", 1, NodeKind.GNB), e2ap_codec="asn"),
        transport=transport,
    )
    agent.register_function(hw.HwRanFunction(sm_codec="asn"))
    agent.connect("oran")

    meid = xapp.poll_rnib()[0]  # xApps discover agents by polling the RNIB
    print(f"  O-RAN xApp discovered agent {meid!r} in the RNIB")
    function_id = xapp.function_id_for(meid, hw.INFO.oid)
    xapp.subscribe(meid, function_id, 0)
    for _ in range(20):
        xapp.ping(meid, function_id, b"x" * 100)
    rtt = sorted(xapp.rtts_us)[len(xapp.rtts_us) // 2]
    print(f"  RIC memory footprint (platform + state): {ric.memory_mb():.0f} MB")
    return rtt


def ping_via_flexric() -> float:
    transport = InProcTransport()
    server = Server(ServerConfig(e2ap_codec="fb"))
    server.listen(transport, "ric")
    pinger = HwPingerIApp(sm_codec="fb")
    server.add_iapp(pinger)

    agent = Agent(
        AgentConfig(node_id=GlobalE2NodeId("00101", 1, NodeKind.GNB), e2ap_codec="fb"),
        transport=transport,
    )
    agent.register_function(hw.HwRanFunction(sm_codec="fb"))
    agent.connect("ric")
    pinger.subscribed.wait(1.0)
    for _ in range(20):
        pinger.ping(b"x" * 100)
    rtt = sorted(pinger.rtts_us)[len(pinger.rtts_us) // 2]
    print(f"  FlexRIC server memory footprint: {server.memory.measure_mb():.2f} MB")
    return rtt


def main() -> None:
    print("--- same agent, O-RAN RIC controller (ASN.1, 2 hops, 2 decodes) ---")
    oran_rtt = ping_via_oran()
    print(f"  ping p50: {oran_rtt:.0f} us")
    print("--- same agent, FlexRIC controller (FB, direct, lazy dispatch) ---")
    flexric_rtt = ping_via_flexric()
    print(f"  ping p50: {flexric_rtt:.0f} us")
    print(f"=> O-RAN path costs {oran_rtt / flexric_rtt:.1f}x the FlexRIC path "
          f"(paper Fig. 9a: at least 2-3x)")


if __name__ == "__main__":
    main()
