#!/usr/bin/env python3
"""RAN sharing with the recursive virtualization controller (paper §6.2).

Two mobile operators share one physical base station.  The
virtualization controller:

* faces the real agent southbound like any FlexRIC server,
* re-exposes the E2 interface northbound *through the agent library*
  (the recursion of Fig. 14) to each operator's unchanged slicing
  controller,
* virtualizes NVS resources per Appendix B: each operator sees a
  private network of share 1.0 while physically holding its 50 % SLA,
* partitions MAC statistics and RRC events so each operator only sees
  its own subscribers.

Operator A re-slices its virtual network 66/34 — operator B never
notices; when B goes idle, A's slices reclaim the whole cell.

Run:  python examples/ran_sharing_tenants.py
"""

from repro.controllers.slicing import SlicingControllerIApp
from repro.controllers.virtualization import TenantConfig, VirtualizationController
from repro.core.server import Server, ServerConfig
from repro.core.simclock import SimClock
from repro.core.transport import InProcTransport
from repro.ran.base_station import BaseStation, BaseStationConfig, attach_agent
from repro.ran.phy import LTE_CELL_10MHZ
from repro.sm.slice_ctrl import SliceConfig
from repro.traffic.flows import FiveTuple
from repro.traffic.iperf import FullBufferFlow


def main() -> None:
    clock = SimClock()
    transport = InProcTransport()

    # Each operator runs the stock slicing controller of §6.1.2.
    tenant_servers, tenant_iapps = {}, {}
    for name in ("A", "B"):
        server = Server(ServerConfig(e2ap_codec="fb"))
        server.listen(transport, f"tenant-{name}")
        iapp = SlicingControllerIApp(sm_codec="fb")
        server.add_iapp(iapp)
        tenant_servers[name], tenant_iapps[name] = server, iapp

    virt = VirtualizationController(
        transport,
        "virt-south",
        tenants=[
            TenantConfig("A", share=0.5, subscribers={1, 2}),
            TenantConfig("B", share=0.5, subscribers={3, 4}),
        ],
    )

    bs = BaseStation(BaseStationConfig(phy=LTE_CELL_10MHZ), clock)
    attach_agent(bs, transport, e2ap_codec="fb", sm_codec="fb").connect("virt-south")
    virt.connect_tenant("A", "tenant-A")
    virt.connect_tenant("B", "tenant-B")
    print("virtualization layer up: NVS installed, per-tenant default slices created")

    flows = {}
    for rnti in (1, 2, 3, 4):
        bs.attach_ue(rnti, fixed_mcs=28)
        flow = FullBufferFlow(
            clock,
            sink=lambda p, r=rnti: bs.deliver_downlink(r, p),
            backlog_probe=lambda r=rnti: bs.rlc_of(r).backlog_bytes,
            flow=FiveTuple("10.0.0.9", f"10.0.2.{rnti}", 5202, 5202, "udp"),
        )
        flow.start()
        flows[rnti] = flow
    bs.start()

    def measure(label: str, seconds: float = 4.0) -> dict:
        before = {r: bs.mac.ues[r].total_bytes_dl for r in (1, 2, 3, 4)}
        clock.run_until(clock.now + seconds)
        mbps = {
            r: (bs.mac.ues[r].total_bytes_dl - before[r]) * 8 / seconds / 1e6
            for r in before
        }
        print(f"  {label:<34} "
              + "  ".join(f"ue{r}={v:5.1f}" for r, v in sorted(mbps.items()))
              + "  Mbps")
        return mbps

    measure("no sub-slices: all equal")

    # Operator A re-slices ITS OWN virtual network (66/34).  The
    # controller code is identical to the single-operator case — it
    # has no idea a virtualization layer sits below.
    iapp_a = tenant_iapps["A"]
    conn_a = tenant_servers["A"].agents()[0].conn_id
    iapp_a.add_slice(conn_a, SliceConfig(slice_id=1, cap=0.66, label="A-gold"))
    iapp_a.add_slice(conn_a, SliceConfig(slice_id=2, cap=0.33, label="A-silver"))
    iapp_a.associate_ue(conn_a, 1, 1)
    iapp_a.associate_ue(conn_a, 2, 2)
    split = measure("A re-slices 66/34 (B untouched)")
    assert abs(split[3] - split[4]) < 1.0, "operator B must be unaffected"

    # Operator B goes idle: in the shared cell, A reclaims everything.
    flows[3].stop()
    flows[4].stop()
    reclaimed = measure("B idle: A reclaims the cell")
    assert reclaimed[1] + reclaimed[2] > 1.8 * (split[1] + split[2])

    # Each operator's statistics are partitioned.
    for name, expected in (("A", [1, 2]), ("B", [3, 4])):
        conn = tenant_servers[name].agents()[0].conn_id
        from repro.core.codec.base import materialize

        stats = materialize(tenant_iapps[name].mac_db[conn])
        rntis = [ue["rnti"] for ue in stats["ues"]]
        print(f"  operator {name} sees UEs {rntis}")
        assert rntis == expected
    print("RAN sharing example OK (isolation + multiplexing gain)")


if __name__ == "__main__":
    main()
