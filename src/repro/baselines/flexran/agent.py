"""FlexRAN agent baseline.

Exports the combined MAC+RLC+PDCP statistics every period in one
Protobuf message ("in both cases, we enable all statistics for MAC,
RLC, and PDCP (excluding HARQ), covering approximately the same data",
§5.1).  Unlike the FlexRIC agent there is no subscription machinery:
the controller pushes a single stats configuration and the agent
streams from then on.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.baselines.flexran import protocol
from repro.core.simclock import PeriodicTask, SimClock
from repro.core.transport.base import Endpoint, Transport, TransportEvents
from repro.metrics.cpu import CpuMeter

#: Providers return the full stats tree for their sublayer.
Provider = Callable[[], object]


class FlexRanAgent:
    """Baseline agent: one controller, one streaming stats pipe."""

    def __init__(
        self,
        agent_id: int,
        transport: Transport,
        mac_provider: Provider,
        rlc_provider: Provider,
        pdcp_provider: Provider,
        clock: Optional[SimClock] = None,
        cpu_meter: Optional[CpuMeter] = None,
        rat: str = "lte",
    ) -> None:
        self.agent_id = agent_id
        self.transport = transport
        self.mac_provider = mac_provider
        self.rlc_provider = rlc_provider
        self.pdcp_provider = pdcp_provider
        self.clock = clock
        self.cpu = cpu_meter or CpuMeter(f"flexran-agent-{agent_id}")
        self.rat = rat
        self._endpoint: Optional[Endpoint] = None
        self._task: Optional[PeriodicTask] = None
        self._tick = 0
        self.reports_sent = 0

    def connect(self, address: str) -> None:
        self._endpoint = self.transport.connect(
            address, TransportEvents(on_message=self._on_message)
        )
        self._endpoint.send(protocol.hello(self.agent_id, self.rat, 0))

    def disconnect(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None
        if self._endpoint is not None and not self._endpoint.closed:
            self._endpoint.close()

    def _on_message(self, endpoint: Endpoint, data: bytes) -> None:
        with self.cpu.measure():
            msg_type, body = protocol.decode_flexran(data)
            if msg_type == protocol.MSG_STATS_CONFIG:
                self._configure(body["period_ms"])
            elif msg_type == protocol.MSG_ECHO_REQUEST:
                reply = protocol.echo_reply(body["seq"], body["data"])
                endpoint.send(reply)

    def _configure(self, period_ms: float) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None
        if self.clock is not None and period_ms > 0:
            self._task = self.clock.call_every(period_ms / 1000.0, self.pump)

    def pump(self) -> None:
        """Encode and send one full stats report (wall-clock mode)."""
        if self._endpoint is None or self._endpoint.closed:
            return
        self._tick += 1
        with self.cpu.measure():
            report = protocol.stats_report(
                self.agent_id,
                mac=self.mac_provider(),
                rlc=self.rlc_provider(),
                pdcp=self.pdcp_provider(),
                tick=self._tick,
            )
        self._endpoint.send(report)
        self.reports_sent += 1
