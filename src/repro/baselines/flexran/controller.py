"""FlexRAN controller baseline: RIB storage and polling applications.

The two properties the paper measures against (§2, §5.3):

* every incoming report is **fully decoded** (Protobuf) and the
  materialized tree is stored in the RIB with per-UE indices and a
  deep history — the memory-hungry organization behind Fig. 8a's
  375 MB vs 124 MB,
* applications **poll** the RIB on a fixed 1 ms cadence instead of
  being notified, "adding overhead by requiring applications to poll
  for new messages" — each poll costs work even when nothing changed,
  and data is at worst one period stale (the 1 ms application RTT
  floor noted in §5.2).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.baselines.flexran import protocol
from repro.core.codec.base import materialize
from repro.core.transport.base import Endpoint, Listener, Transport, TransportEvents
from repro.metrics.cpu import CpuMeter
from repro.metrics.memory import MemoryMeter


class Rib:
    """RAN information base: deep-materialized stats with history."""

    HISTORY = 100

    def __init__(self) -> None:
        #: agent_id -> newest full report.
        self.latest: Dict[int, Any] = {}
        #: agent_id -> bounded history of full reports.
        self.history: Dict[int, Deque[Any]] = {}
        #: (agent_id, rnti) -> newest per-UE MAC entry (poll index).
        self.ue_index: Dict[Tuple[int, int], Any] = {}
        self.reports_stored = 0
        self._new_since_poll = 0

    def store(self, agent_id: int, body: Any) -> None:
        tree = materialize(body)
        self.latest[agent_id] = tree
        bucket = self.history.get(agent_id)
        if bucket is None:
            bucket = deque(maxlen=self.HISTORY)
            self.history[agent_id] = bucket
        bucket.append(tree)
        for entry in tree.get("mac", {}).get("ues", ()):
            self.ue_index[(agent_id, entry["rnti"])] = dict(entry)
        self.reports_stored += 1
        self._new_since_poll += 1

    def poll(self) -> int:
        """Application poll: scan for new data; returns new-report count.

        The scan itself costs work proportional to the RIB size even
        when nothing is new — the polling overhead FlexRAN bears.
        """
        for agent_id in self.latest:
            # Touch each agent's history bucket: the cost of discovering
            # whether anything changed without a notification path.
            len(self.history.get(agent_id, ()))
        fresh = self._new_since_poll
        self._new_since_poll = 0
        return fresh


class FlexRanController:
    """Baseline controller: accept agents, decode, store, serve polls."""

    def __init__(self, cpu_meter: Optional[CpuMeter] = None) -> None:
        self.cpu = cpu_meter or CpuMeter("flexran-controller")
        self.memory = MemoryMeter("flexran-controller")
        self.rib = Rib()
        self.memory.track("rib", lambda: self.rib)
        self._agents: Dict[int, Endpoint] = {}
        self._listener: Optional[Listener] = None
        self._echo_times: Dict[int, float] = {}
        self.echo_replies: List[Tuple[int, bytes]] = []
        #: applications registered for the poll loop.
        self._poll_apps: List[Callable[[int], None]] = []
        self.polls_run = 0
        self.messages_received = 0

    def listen(self, transport: Transport, address: str) -> Listener:
        self._listener = transport.listen(
            address,
            TransportEvents(
                on_message=self._on_message,
                on_disconnected=self._on_disconnect,
            ),
        )
        return self._listener

    def add_poll_app(self, app: Callable[[int], None]) -> None:
        """Register an application run on every poll iteration with the
        number of new reports (0 on idle polls)."""
        self._poll_apps.append(app)

    def poll_once(self) -> int:
        """One 1 ms poll iteration (driven by the experiment loop)."""
        with self.cpu.measure():
            self.polls_run += 1
            fresh = self.rib.poll()
            for app in self._poll_apps:
                app(fresh)
        return fresh

    def configure_stats(self, agent_id: int, period_ms: float) -> None:
        self._agents[agent_id].send(protocol.stats_config(period_ms))

    def echo(self, agent_id: int, seq: int, payload: bytes) -> None:
        """Send one echo request (RTT probe)."""
        with self.cpu.measure():
            request = protocol.echo_request(seq, payload)
        self._agents[agent_id].send(request)

    # -- transport events ---------------------------------------------------

    def _on_message(self, endpoint: Endpoint, data: bytes) -> None:
        with self.cpu.measure():
            msg_type, body = protocol.decode_flexran(data)  # full decode
            self.messages_received += 1
            if msg_type == protocol.MSG_HELLO:
                self._agents[body["agent_id"]] = endpoint
            elif msg_type == protocol.MSG_STATS_REPORT:
                self.rib.store(body["agent_id"], body)
            elif msg_type == protocol.MSG_ECHO_REPLY:
                self.echo_replies.append((body["seq"], bytes(body["data"])))

    def _on_disconnect(self, endpoint: Endpoint) -> None:
        gone = [aid for aid, ep in self._agents.items() if ep is endpoint]
        for agent_id in gone:
            del self._agents[agent_id]

    @property
    def agent_ids(self) -> List[int]:
        return sorted(self._agents)
