"""FlexRAN's custom south-bound protocol.

Modelled after the original FlexRAN protocol characteristics the paper
leans on for its comparison (§2, §5.2):

* Protobuf encoding (the ``pb`` codec),
* **no double encoding** — statistics ride inside the same message as
  the header, encoded in one pass (hence FlexRAN's lower signaling rate
  in Fig. 7b),
* "tightly coupled with the underlying radio access technology": the
  message schema hard-codes LTE statistics fields rather than carrying
  opaque SM payloads.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.codec.base import get_codec

MSG_HELLO = 1
MSG_STATS_CONFIG = 2
MSG_STATS_REPORT = 3
MSG_ECHO_REQUEST = 4
MSG_ECHO_REPLY = 5
MSG_CONTROL = 6

_CODEC = "pb"
_PROTOCOL_VERSION = 2

_xid_counter = 0


def encode_flexran(msg_type: int, body: Dict[str, Any]) -> bytes:
    """Single-pass Protobuf encoding of the flex_header + body.

    Every FlexRAN message carries a ``flex_header`` submessage
    (version, type, transaction id, direction), mirroring the original
    protocol's ``flexran.proto``.
    """
    global _xid_counter
    _xid_counter += 1
    message = {
        "header": {
            "version": _PROTOCOL_VERSION,
            "type": msg_type,
            "xid": _xid_counter,
            "dir": 0,
        },
        "body": body,
    }
    return get_codec(_CODEC).encode(message)


def decode_flexran(data: bytes) -> tuple:
    """Full decode (Protobuf has no lazy mode); returns (type, body)."""
    tree = get_codec(_CODEC).decode(data)
    return tree["header"]["type"], tree["body"]


def hello(agent_id: int, rat: str, n_ues: int) -> bytes:
    return encode_flexran(MSG_HELLO, {"agent_id": agent_id, "rat": rat, "n_ues": n_ues})


def stats_config(period_ms: float) -> bytes:
    return encode_flexran(MSG_STATS_CONFIG, {"period_ms": period_ms})


def stats_report(agent_id: int, mac: Any, rlc: Any, pdcp: Any, tick: int) -> bytes:
    """One combined MAC+RLC+PDCP report (everything in one message)."""
    return encode_flexran(
        MSG_STATS_REPORT,
        {"agent_id": agent_id, "tick": tick, "mac": mac, "rlc": rlc, "pdcp": pdcp},
    )


def echo_request(seq: int, payload: bytes) -> bytes:
    return encode_flexran(MSG_ECHO_REQUEST, {"seq": seq, "data": payload})


def echo_reply(seq: int, payload: bytes) -> bytes:
    return encode_flexran(MSG_ECHO_REPLY, {"seq": seq, "data": payload})
