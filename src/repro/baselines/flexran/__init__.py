"""FlexRAN baseline: Protobuf protocol, RIB storage, polling apps."""

from repro.baselines.flexran.protocol import (
    MSG_ECHO_REPLY,
    MSG_ECHO_REQUEST,
    MSG_HELLO,
    MSG_STATS_CONFIG,
    MSG_STATS_REPORT,
    decode_flexran,
    encode_flexran,
)
from repro.baselines.flexran.agent import FlexRanAgent
from repro.baselines.flexran.controller import FlexRanController, Rib

__all__ = [
    "MSG_ECHO_REPLY",
    "MSG_ECHO_REQUEST",
    "MSG_HELLO",
    "MSG_STATS_CONFIG",
    "MSG_STATS_REPORT",
    "decode_flexran",
    "encode_flexran",
    "FlexRanAgent",
    "FlexRanController",
    "Rib",
]
