"""Baseline SD-RAN controllers the paper compares against.

* :mod:`repro.baselines.flexran` — FlexRAN (Foukas et al., CoNEXT'16):
  custom Protobuf south-bound protocol without double encoding, a
  fully-materialized RAN information base (RIB), and applications that
  **poll** for updates instead of being event-driven (§2, §5.1-5.3).
* :mod:`repro.baselines.oran` — the O-RAN reference RIC ("Cherry"):
  micro-service architecture with an E2 termination, RMR-style message
  routing, 15 platform components, and xApps — imposing two message
  hops and a double decode of every indication (§5.4).
"""
