"""O-RAN RIC platform component inventory.

The Cherry release deploys the near-RT RIC as 15 containerized platform
components orchestrated by Kubernetes (§2, §5.4).  Image sizes model
Table 2's 2469 MB platform total; baseline RAM models the ~1 GB
``docker stats`` reading of Fig. 9b (components are "partially written
in higher-level languages, such as Go", each carrying a runtime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class PlatformComponent:
    """One platform micro-service (container) of the near-RT RIC."""

    name: str
    role: str
    image_mb: int
    baseline_ram_mb: float


#: The 15 platform components of a default Cherry deployment.
PLATFORM_COMPONENTS: Tuple[PlatformComponent, ...] = (
    PlatformComponent("e2term", "E2AP termination towards E2 nodes", 330, 110.0),
    PlatformComponent("e2mgr", "E2 node lifecycle management", 240, 90.0),
    PlatformComponent("submgr", "subscription merging/management", 180, 75.0),
    PlatformComponent("rtmgr", "RMR routing table manager", 150, 60.0),
    PlatformComponent("appmgr", "xApp deployment/management", 160, 70.0),
    PlatformComponent("dbaas", "Redis-backed shared data layer", 105, 95.0),
    PlatformComponent("a1mediator", "A1 policy mediation", 170, 65.0),
    PlatformComponent("o1mediator", "O1 management mediation", 165, 60.0),
    PlatformComponent("alarmmanager", "alarm collection/propagation", 130, 55.0),
    PlatformComponent("vespamgr", "VES event streaming", 120, 50.0),
    PlatformComponent("jaegeradapter", "distributed tracing", 115, 70.0),
    PlatformComponent("prometheus", "metrics collection", 190, 85.0),
    PlatformComponent("influxdb", "time-series storage", 185, 80.0),
    PlatformComponent("kong", "API gateway/ingress", 140, 45.0),
    PlatformComponent("chartmuseum", "helm chart repository", 89, 14.0),
)


def platform_image_total_mb() -> int:
    """Total image footprint of the platform (Table 2: 2469 MB)."""
    return sum(component.image_mb for component in PLATFORM_COMPONENTS)


def platform_baseline_ram_mb() -> float:
    """RAM the platform holds before any workload exists."""
    return sum(component.baseline_ram_mb for component in PLATFORM_COMPONENTS)


def component_names() -> List[str]:
    return [component.name for component in PLATFORM_COMPONENTS]
