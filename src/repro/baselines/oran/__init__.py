"""O-RAN reference RIC baseline ("Cherry" release model).

Reproduces the architectural cost structure the paper measures in §5.4:

* **two hops** for every message: agent <-> E2 termination <-> xApp,
* **double decode**: E2AP messages are decoded at the E2 termination
  *and* again at the xApp,
* **RMR-style routing** between platform components, with its own
  header encode/decode on every hop,
* **15 platform components**, each a container in the real deployment,
  modelled here with their image sizes (Table 2) and baseline RAM, and
* **database polling**: xApps discover agents by polling the RNIB.
"""

from repro.baselines.oran.platform import PLATFORM_COMPONENTS, PlatformComponent
from repro.baselines.oran.rmr import RmrEndpoint, RmrMessage, RmrRouter
from repro.baselines.oran.e2term import E2Termination
from repro.baselines.oran.xapp import HwXapp, OranXapp, StatsXapp
from repro.baselines.oran.ric import OranRic

__all__ = [
    "PLATFORM_COMPONENTS",
    "PlatformComponent",
    "RmrEndpoint",
    "RmrMessage",
    "RmrRouter",
    "E2Termination",
    "HwXapp",
    "OranXapp",
    "StatsXapp",
    "OranRic",
]
