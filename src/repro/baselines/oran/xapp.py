"""O-RAN xApps: RMR-attached external applications.

Each xApp owns an RMR endpoint and — by architecture — must fully
decode every E2AP message it receives, even though the E2 termination
already decoded it once (the double decode of §5.4).  Agent discovery
goes through polling the RNIB in the shared data layer, "bearing
overhead" (§2).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.oran import rmr
from repro.baselines.oran.rmr import RmrEndpoint, RmrMessage, RmrRouter
from repro.core.codec.base import get_codec, materialize
from repro.core.e2ap.ies import RicActionDefinition, RicActionKind, RicRequestId
from repro.core.e2ap.messages import (
    E2Message,
    RicControlRequest,
    RicIndication,
    RicSubscriptionRequest,
    RicSubscriptionResponse,
    decode_message,
    encode_message,
)
from repro.metrics.cpu import CpuMeter
from repro.sm.base import PeriodicTrigger, decode_payload


class OranXapp:
    """Base xApp: RMR plumbing, RNIB polling, E2AP encode/decode."""

    def __init__(
        self,
        name: str,
        xapp_id: int,
        router: RmrRouter,
        dbaas_store: Dict,
        e2ap_codec: str = "asn",
        sm_codec: str = "asn",
    ) -> None:
        self.name = name
        self.xapp_id = xapp_id
        self.router = router
        self.dbaas_store = dbaas_store
        self.codec = get_codec(e2ap_codec)
        self.sm_codec = sm_codec
        self.cpu = CpuMeter(f"xapp-{name}")
        self.endpoint = RmrEndpoint(f"xapp-{name}", self._on_rmr, cpu=self.cpu)
        router.register(self.endpoint)
        self._instances = itertools.count(1)
        self.indications_received = 0
        self.rnib_polls = 0
        #: set when any subscription response arrives (socket meshes
        #: deliver asynchronously, so callers wait on this).
        self.subscription_confirmed = threading.Event()

    # -- RNIB discovery (polling, §2) ---------------------------------------

    def poll_rnib(self) -> List[str]:
        """Scan the shared data layer for connected E2 nodes."""
        self.rnib_polls += 1
        with self.cpu.measure():
            meids = [
                key.split("/", 1)[1]
                for key in self.dbaas_store
                if key.startswith("rnib/")
            ]
        return sorted(meids)

    def function_id_for(self, meid: str, oid: str) -> Optional[int]:
        entry = self.dbaas_store.get(f"rnib/{meid}")
        if entry is None:
            return None
        for function_id, function_oid in entry["functions"].items():
            if function_oid == oid:
                return function_id
        return None

    # -- E2AP towards the RAN (via RMR + E2T) ---------------------------------

    def subscribe(
        self, meid: str, ran_function_id: int, period_ms: float
    ) -> RicRequestId:
        request = RicRequestId(self.xapp_id, next(self._instances))
        message = RicSubscriptionRequest(
            request=request,
            ran_function_id=ran_function_id,
            event_trigger=PeriodicTrigger(period_ms).to_bytes(self.sm_codec),
            actions=[RicActionDefinition(action_id=1, kind=RicActionKind.REPORT)],
        )
        self._send(rmr.RIC_SUB_REQ, meid, message)
        return request

    def control(self, meid: str, ran_function_id: int, header: bytes, payload: bytes) -> RicRequestId:
        request = RicRequestId(self.xapp_id, next(self._instances))
        message = RicControlRequest(
            request=request,
            ran_function_id=ran_function_id,
            header=header,
            payload=payload,
            ack_requested=False,
        )
        self._send(rmr.RIC_CONTROL_REQ, meid, message)
        return request

    def _send(self, msg_type: int, meid: str, message: E2Message) -> None:
        with self.cpu.measure():
            data = encode_message(message, self.codec)
        self.router.send(self.cpu, RmrMessage(msg_type=msg_type, meid=meid, payload=data))

    # -- RMR receive ------------------------------------------------------------

    def _on_rmr(self, message: RmrMessage) -> None:
        with self.cpu.measure():
            decoded = decode_message(message.payload, self.codec)  # decode #2
        if isinstance(decoded, RicIndication):
            self.indications_received += 1
            self.on_indication(message.meid, decoded)
        elif isinstance(decoded, RicSubscriptionResponse):
            self.subscription_confirmed.set()
            self.on_subscription_response(message.meid, decoded)

    # -- hooks ---------------------------------------------------------------

    def on_indication(self, meid: str, indication: RicIndication) -> None:
        """Override: handle one (already fully decoded) indication."""

    def on_subscription_response(self, meid: str, response: RicSubscriptionResponse) -> None:
        """Override: subscription outcome arrived."""


class HwXapp(OranXapp):
    """Ping xApp for the Fig. 9a RTT comparison."""

    def __init__(self, router: RmrRouter, dbaas_store: Dict, **kwargs) -> None:
        super().__init__("hw", 10, router, dbaas_store, **kwargs)
        self._sent_at: Dict[int, float] = {}
        self.rtts_us: List[float] = []
        self._seq = itertools.count(1)

    def ping(self, meid: str, ran_function_id: int, payload: bytes) -> int:
        from repro.sm.hw import build_ping

        seq = next(self._seq)
        self._sent_at[seq] = time.perf_counter()
        self.control(meid, ran_function_id, b"", build_ping(seq, payload, self.sm_codec))
        return seq

    def on_indication(self, meid: str, indication: RicIndication) -> None:
        from repro.sm.hw import parse_pong

        with self.cpu.measure():
            seq, _data = parse_pong(indication.payload, self.sm_codec)
        started = self._sent_at.pop(seq, None)
        if started is not None:
            self.rtts_us.append((time.perf_counter() - started) * 1e6)


class StatsXapp(OranXapp):
    """Monitoring xApp for the Fig. 9b workload.

    Stores each fully-decoded report and additionally writes it to the
    shared data layer (dbaas) — the extra copy the micro-service split
    imposes so other components can read it.
    """

    def __init__(self, router: RmrRouter, dbaas_store: Dict, **kwargs) -> None:
        super().__init__("stats", 11, router, dbaas_store, **kwargs)
        self.reports: Dict[str, Any] = {}
        self.reports_stored = 0

    def on_indication(self, meid: str, indication: RicIndication) -> None:
        with self.cpu.measure():
            tree = materialize(decode_payload(indication.payload, self.sm_codec))
            self.reports[meid] = tree
            # Copy into the shared data layer (serialized once more).
            self.dbaas_store[f"stats/{meid}/{indication.sequence}"] = tree
        self.reports_stored += 1
