"""RMR-style message routing between RIC components.

The RIC Message Router delivers messages between platform components
and xApps based on a message-type routing table.  Every hop pays a
header encode/decode plus a routing-table lookup — real work charged to
the owning component's CPU meter, reproducing the per-hop cost the
paper attributes to the O-RAN message path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.metrics.cpu import CpuMeter

_HEADER = struct.Struct(">4sIIH32s")  # magic, msg type, payload len, sbuf, meid
_MAGIC = b"RMR1"

# RMR message types used by this model (subset of the real registry).
RIC_SUB_REQ = 12010
RIC_SUB_RESP = 12011
RIC_INDICATION = 12050
RIC_CONTROL_REQ = 12040
RIC_CONTROL_ACK = 12041
RIC_E2_SETUP = 12001
RIC_HEALTH = 100


@dataclass
class RmrMessage:
    """One routed message: type, managed-entity id, opaque payload."""

    msg_type: int
    meid: str
    payload: bytes

    def pack(self) -> bytes:
        meid = self.meid.encode("utf-8")[:32].ljust(32, b"\0")
        return _HEADER.pack(_MAGIC, self.msg_type, len(self.payload), 0, meid) + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "RmrMessage":
        if len(data) < _HEADER.size:
            raise ValueError(f"short RMR frame: {len(data)} B")
        magic, msg_type, length, _sbuf, meid = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise ValueError(f"bad RMR magic {magic!r}")
        payload = data[_HEADER.size:_HEADER.size + length]
        if len(payload) != length:
            raise ValueError("truncated RMR payload")
        return cls(msg_type=msg_type, meid=meid.rstrip(b"\0").decode("utf-8"), payload=payload)


#: Receiver signature: (message) -> None.
RmrHandler = Callable[[RmrMessage], None]


class RmrEndpoint:
    """One component's RMR socket: named receive handler + CPU meter."""

    def __init__(self, name: str, handler: RmrHandler, cpu: Optional[CpuMeter] = None) -> None:
        self.name = name
        self.handler = handler
        self.cpu = cpu or CpuMeter(f"rmr-{name}")
        self.received = 0

    def deliver(self, frame: bytes) -> None:
        with self.cpu.measure():
            message = RmrMessage.unpack(frame)  # per-hop header decode
        self.received += 1
        self.handler(message)


class RmrRouter:
    """Static routing table: message type -> endpoint name.

    Delivery is an in-process call by default; for latency-faithful
    experiments :meth:`attach_socket` carries a component's frames over
    a real localhost socket pair, reproducing the inter-container hop
    the O-RAN deployment imposes (the "two hops for messages" of §5.4).
    """

    def __init__(self) -> None:
        self._endpoints: Dict[str, RmrEndpoint] = {}
        self._routes: Dict[int, str] = {}
        self._pipes: Dict[str, object] = {}  # name -> transport Endpoint
        self.messages_routed = 0

    def register(self, endpoint: RmrEndpoint) -> None:
        if endpoint.name in self._endpoints:
            raise ValueError(f"duplicate RMR endpoint {endpoint.name!r}")
        self._endpoints[endpoint.name] = endpoint

    def attach_socket(self, endpoint_name: str, transport) -> None:
        """Route frames to ``endpoint_name`` over a real socket pair."""
        from repro.core.transport.base import TransportEvents

        endpoint = self._endpoints[endpoint_name]
        listener = transport.listen(
            "127.0.0.1:0",
            TransportEvents(on_message=lambda _ep, frame: endpoint.deliver(frame)),
        )
        pipe = transport.connect(listener.address, TransportEvents())
        self._pipes[endpoint_name] = pipe

    def attach_all_sockets(self, transport) -> None:
        for name in list(self._endpoints):
            if name not in self._pipes:
                self.attach_socket(name, transport)

    def add_route(self, msg_type: int, endpoint_name: str) -> None:
        if endpoint_name not in self._endpoints:
            raise KeyError(f"unknown endpoint {endpoint_name!r}")
        self._routes[msg_type] = endpoint_name

    def send(self, sender_cpu: CpuMeter, message: RmrMessage) -> bool:
        """Route one message; returns False when no route exists."""
        target_name = self._routes.get(message.msg_type)
        if target_name is None:
            return False
        with sender_cpu.measure():
            frame = message.pack()  # per-hop header encode
        self.messages_routed += 1
        pipe = self._pipes.get(target_name)
        if pipe is not None:
            pipe.send(frame)
        else:
            self._endpoints[target_name].deliver(frame)
        return True

    def route_of(self, msg_type: int) -> Optional[str]:
        return self._routes.get(msg_type)
