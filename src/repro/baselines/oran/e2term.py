"""E2 termination component of the O-RAN RIC.

Terminates E2AP (ASN.1-encoded, as mandated) towards the agents and
bridges to the RMR mesh.  The decisive cost property (§5.4): "the
design of O-RAN RIC imposes that indication messages are decoded twice,
once in the 'E2 termination', and the xApp" — this component performs
the first full decode of every message before forwarding the raw E2AP
bytes over RMR, where the xApp decodes them again.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.oran import rmr
from repro.baselines.oran.rmr import RmrEndpoint, RmrMessage, RmrRouter
from repro.core.codec.base import get_codec
from repro.core.e2ap.messages import (
    E2SetupRequest,
    E2SetupResponse,
    decode_message,
    encode_message,
)
from repro.core.e2ap.procedures import MessageClass, ProcedureCode
from repro.core.transport.base import Endpoint, Listener, Transport, TransportEvents
from repro.metrics.cpu import CpuMeter


class E2Termination:
    """Agent-facing terminator: full decode, then RMR forward."""

    def __init__(self, router: RmrRouter, dbaas_store: Dict, e2ap_codec: str = "asn") -> None:
        self.codec = get_codec(e2ap_codec)
        self.router = router
        self.cpu = CpuMeter("e2term")
        self.dbaas_store = dbaas_store
        self._agents: Dict[str, Endpoint] = {}  # meid -> endpoint
        self._listener: Optional[Listener] = None
        self.messages_from_agents = 0
        self.endpoint = RmrEndpoint("e2term", self._from_rmr, cpu=self.cpu)
        router.register(self.endpoint)

    def listen(self, transport: Transport, address: str) -> Listener:
        self._listener = transport.listen(
            address, TransportEvents(on_message=self._from_agent)
        )
        return self._listener

    # -- agent -> RIC direction -------------------------------------------

    def _from_agent(self, endpoint: Endpoint, data: bytes) -> None:
        self.messages_from_agents += 1
        with self.cpu.measure():
            message = decode_message(data, self.codec)  # decode #1 (full)
        if isinstance(message, E2SetupRequest):
            meid = message.node_id.label
            self._agents[meid] = endpoint
            # Register the node in the RNIB (dbaas) for xApps to poll.
            self.dbaas_store[f"rnib/{meid}"] = {
                "plmn": message.node_id.plmn,
                "nb_id": message.node_id.nb_id,
                "functions": {
                    item.ran_function_id: item.oid for item in message.ran_functions
                },
            }
            with self.cpu.measure():
                response = encode_message(
                    E2SetupResponse(
                        ric_id=99,
                        accepted_functions=[
                            item.ran_function_id for item in message.ran_functions
                        ],
                    ),
                    self.codec,
                )
            endpoint.send(response)
            return
        meid = self._meid_of(endpoint)
        msg_type = self._rmr_type_of(message.procedure, message.msg_class)
        # Forward the *raw* E2AP bytes: the xApp must decode them again.
        self.router.send(self.cpu, RmrMessage(msg_type=msg_type, meid=meid, payload=data))

    def _meid_of(self, endpoint: Endpoint) -> str:
        for meid, known in self._agents.items():
            if known is endpoint:
                return meid
        return "?"

    @staticmethod
    def _rmr_type_of(procedure: ProcedureCode, msg_class: MessageClass) -> int:
        if procedure == ProcedureCode.RIC_INDICATION:
            return rmr.RIC_INDICATION
        if procedure == ProcedureCode.RIC_SUBSCRIPTION:
            return rmr.RIC_SUB_RESP
        if procedure == ProcedureCode.RIC_CONTROL:
            return rmr.RIC_CONTROL_ACK
        return rmr.RIC_HEALTH

    # -- RIC -> agent direction ---------------------------------------------

    def _from_rmr(self, message: RmrMessage) -> None:
        """xApp-originated E2AP bytes: validate and send to the agent."""
        endpoint = self._agents.get(message.meid)
        if endpoint is None or endpoint.closed:
            return
        with self.cpu.measure():
            decode_message(message.payload, self.codec)  # E2T validates (full decode)
        endpoint.send(message.payload)

    @property
    def connected_meids(self) -> list:
        return sorted(self._agents)
