"""Assembled O-RAN near-RT RIC.

Bundles the E2 termination, the RMR router, the subscription manager
hop, the shared data layer, and the 15 platform components into one
deployable object with aggregate CPU and memory accounting (the
quantities ``docker stats`` reports in Fig. 9b).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.oran import rmr
from repro.baselines.oran.e2term import E2Termination
from repro.baselines.oran.platform import (
    PLATFORM_COMPONENTS,
    platform_baseline_ram_mb,
    platform_image_total_mb,
)
from repro.baselines.oran.rmr import RmrEndpoint, RmrMessage, RmrRouter
from repro.baselines.oran.xapp import OranXapp
from repro.core.transport.base import Transport
from repro.metrics.cpu import CpuMeter
from repro.metrics.memory import MemoryMeter


class _SubscriptionManager:
    """The submgr platform component: one more hop on the sub path.

    xApp subscription requests pass through here (bookkeeping + route
    to the E2 termination), mirroring the O-RAN subscription flow.
    """

    def __init__(self, router: RmrRouter) -> None:
        self.cpu = CpuMeter("oran-submgr")
        self.router = router
        self.subscriptions: Dict[str, dict] = {}
        self.endpoint = RmrEndpoint("submgr", self._on_rmr, cpu=self.cpu)
        router.register(self.endpoint)

    def _on_rmr(self, message: RmrMessage) -> None:
        with self.cpu.measure():
            key = f"{message.meid}:{len(self.subscriptions)}"
            self.subscriptions[key] = {"meid": message.meid, "bytes": len(message.payload)}
        # Forward towards the RAN through the E2 termination.
        self.router.send(
            self.cpu,
            RmrMessage(msg_type=_SUBMGR_TO_E2TERM, meid=message.meid, payload=message.payload),
        )


#: Internal route: submgr-forwarded subscription towards e2term.
_SUBMGR_TO_E2TERM = 12019


class OranRic:
    """The full near-RT RIC deployment model."""

    def __init__(self, e2ap_codec: str = "asn") -> None:
        self.router = RmrRouter()
        self.dbaas_store: Dict[str, object] = {}
        self.e2term = E2Termination(self.router, self.dbaas_store, e2ap_codec=e2ap_codec)
        self.submgr = _SubscriptionManager(self.router)
        self.xapps: List[OranXapp] = []
        self.memory = MemoryMeter(
            "oran-ric",
            baseline_bytes=int(platform_baseline_ram_mb() * 1024 * 1024),
        )
        self.memory.track("dbaas", lambda: self.dbaas_store)
        self.memory.track("submgr", lambda: self.submgr.subscriptions)
        # Subscription path: xApp -> submgr -> e2term (two RMR hops).
        self.router.add_route(rmr.RIC_SUB_REQ, "submgr")
        self.router.add_route(_SUBMGR_TO_E2TERM, "e2term")
        self.router.add_route(rmr.RIC_CONTROL_REQ, "e2term")

    def listen(self, transport: Transport, address: str) -> None:
        self.e2term.listen(transport, address)

    def deploy_xapp(self, xapp: OranXapp) -> None:
        """Attach an xApp and point RAN-originated routes at it.

        The default route table sends indications and responses to the
        most recently deployed xApp (single-tenant experiments).
        """
        self.xapps.append(xapp)
        self.memory.track(f"xapp-{xapp.name}", lambda x=xapp: getattr(x, "reports", {}))
        self.router.add_route(rmr.RIC_INDICATION, xapp.endpoint.name)
        self.router.add_route(rmr.RIC_SUB_RESP, xapp.endpoint.name)
        self.router.add_route(rmr.RIC_CONTROL_ACK, xapp.endpoint.name)

    # -- accounting ------------------------------------------------------------

    def total_cpu_busy_s(self) -> float:
        """CPU summed over platform components and xApps (Fig. 9b)."""
        meters = [self.e2term.cpu, self.submgr.cpu] + [xapp.cpu for xapp in self.xapps]
        return sum(meter.busy_s for meter in meters)

    def xapp_cpu_busy_s(self) -> float:
        return sum(xapp.cpu.busy_s for xapp in self.xapps)

    def platform_cpu_busy_s(self) -> float:
        return self.e2term.cpu.busy_s + self.submgr.cpu.busy_s

    def memory_mb(self) -> float:
        return self.memory.measure_mb()

    @staticmethod
    def image_sizes_mb() -> Dict[str, int]:
        """Docker image model for Table 2."""
        return {component.name: component.image_mb for component in PLATFORM_COMPONENTS}

    @staticmethod
    def platform_image_total_mb() -> int:
        return platform_image_total_mb()
