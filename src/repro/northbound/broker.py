"""Redis-style publish/subscribe message broker.

The traffic controller of Table 3 uses "Redis as a message broker used
by an iApp to forward messages to the xApp".  This broker reproduces
the channel-based pub/sub pattern in process: publishers push JSON-able
payloads to named channels; subscribers receive them synchronously (the
default, deterministic for simulations) or drain them from a mailbox.
"""

from __future__ import annotations

import fnmatch
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

Handler = Callable[[str, Any], None]


@dataclass
class BrokerSubscription:
    """Handle returned by subscribe; also a drainable mailbox."""

    sub_id: int
    pattern: str
    handler: Optional[Handler] = None
    mailbox: Deque[Tuple[str, Any]] = field(default_factory=deque)

    def drain(self) -> List[Tuple[str, Any]]:
        """Empty the mailbox; returns [(channel, payload), ...]."""
        items = list(self.mailbox)
        self.mailbox.clear()
        return items


class Broker:
    """Channel-based pub/sub with glob channel patterns."""

    def __init__(self) -> None:
        self._subs: Dict[int, BrokerSubscription] = {}
        self._ids = itertools.count(1)
        self.published = 0
        self.delivered = 0

    def subscribe(self, pattern: str, handler: Optional[Handler] = None) -> BrokerSubscription:
        """Subscribe to channels matching ``pattern`` (glob syntax).

        With a ``handler`` messages are delivered synchronously on
        publish; without one they queue in the subscription's mailbox.
        """
        sub = BrokerSubscription(sub_id=next(self._ids), pattern=pattern, handler=handler)
        self._subs[sub.sub_id] = sub
        return sub

    def unsubscribe(self, sub: BrokerSubscription) -> None:
        self._subs.pop(sub.sub_id, None)

    def publish(self, channel: str, payload: Any) -> int:
        """Deliver ``payload`` to every matching subscriber."""
        self.published += 1
        receivers = 0
        for sub in list(self._subs.values()):
            if not fnmatch.fnmatchcase(channel, sub.pattern):
                continue
            receivers += 1
            self.delivered += 1
            if sub.handler is not None:
                sub.handler(channel, payload)
            else:
                sub.mailbox.append((channel, payload))
        return receivers

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)
