"""Northbound observability routes.

Exposes the metrics registry (counters, gauges, latency histograms)
and the E2AP procedure tracer over the existing REST server, so the
same "curl xApp" workflow of Table 4 can inspect where a deployment's
latency goes without attaching a debugger:

* ``GET  <prefix>``               — full registry snapshot
* ``GET  <prefix>/histograms``    — latency histograms only
* ``GET  <prefix>/overload``      — overload state: drop counters,
  queue depth/watermark gauges, admission rejections, per-tenant
  rate-limit state (DESIGN.md §13)
* ``GET  <prefix>/trace``         — tracer snapshot (spans + stages)
* ``GET  <prefix>/trace/stages``  — per-stage histogram summaries
* ``POST <prefix>/trace/enable``  — turn tracing on
* ``POST <prefix>/trace/disable`` — turn tracing off
* ``POST <prefix>/trace/reset``   — drop spans + trace histograms
* ``POST <prefix>/reset``         — reset the whole registry
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.metrics import counters
from repro.metrics import trace as trace_mod
from repro.northbound.rest import RestError, RestServer


def overload_snapshot() -> Dict[str, object]:
    """Registry-level view of the overload discipline.

    Everything the metric registry alone can answer: shed counters by
    class/connection/tenant, queue pressure gauges, admission
    rejections.  Server-internal state (token levels, slow-start) is
    merged in by the route when a provider is attached.
    """
    counter_snapshot = counters.counter_values()
    gauge_snapshot = counters.gauge_values()
    return {
        "drops": {
            name: value
            for name, value in counter_snapshot.items()
            if name.startswith("overload.") and value
        },
        "admission_rejects": {
            name: value
            for name, value in counter_snapshot.items()
            if name.startswith("server.admission.") and value
        },
        "queues": {
            name: value
            for name, value in gauge_snapshot.items()
            if name.startswith("queue.")
        },
        "tenants": {
            name: value
            for name, value in gauge_snapshot.items()
            if name.startswith("overload.tenant.")
        },
    }


def attach_metrics_routes(
    server: RestServer,
    prefix: str = "/metrics",
    overload_state: Optional[Callable[[], Dict[str, object]]] = None,
) -> None:
    """Register the observability routes on ``server``.

    Route handlers run on the REST server's request threads; the
    registries are process-global and the reads are snapshots, so no
    coordination with the E2 hot path is needed.
    """
    prefix = prefix.rstrip("/")

    def get_metrics(subpath: str, body):
        if not subpath:
            return counters.snapshot()
        if subpath == "histograms":
            return counters.histogram_values()
        if subpath == "overload":
            snapshot = overload_snapshot()
            if overload_state is not None:
                snapshot["server"] = overload_state()
            return snapshot
        if subpath == "trace":
            return trace_mod.TRACER.snapshot()
        if subpath == "trace/stages":
            return trace_mod.TRACER.stage_breakdown()
        raise RestError(404, f"unknown metrics path: {subpath!r}")

    def post_metrics(subpath: str, body):
        if subpath == "trace/enable":
            trace_mod.enable()
            return {"enabled": True}
        if subpath == "trace/disable":
            trace_mod.disable()
            return {"enabled": False}
        if subpath == "trace/reset":
            trace_mod.reset()
            return {"reset": "trace"}
        if subpath == "reset":
            trace_mod.TRACER.clear()
            counters.reset_all()
            return {"reset": "all"}
        raise RestError(404, f"unknown metrics action: {subpath!r}")

    server.route("GET", prefix, get_metrics)
    server.route("POST", prefix, post_metrics)
