"""Northbound observability routes.

Exposes the metrics registry (counters, gauges, latency histograms)
and the E2AP procedure tracer over the existing REST server, so the
same "curl xApp" workflow of Table 4 can inspect where a deployment's
latency goes without attaching a debugger:

* ``GET  <prefix>``               — full registry snapshot
* ``GET  <prefix>/histograms``    — latency histograms only
* ``GET  <prefix>/trace``         — tracer snapshot (spans + stages)
* ``GET  <prefix>/trace/stages``  — per-stage histogram summaries
* ``POST <prefix>/trace/enable``  — turn tracing on
* ``POST <prefix>/trace/disable`` — turn tracing off
* ``POST <prefix>/trace/reset``   — drop spans + trace histograms
* ``POST <prefix>/reset``         — reset the whole registry
"""

from __future__ import annotations

from repro.metrics import counters
from repro.metrics import trace as trace_mod
from repro.northbound.rest import RestError, RestServer


def attach_metrics_routes(server: RestServer, prefix: str = "/metrics") -> None:
    """Register the observability routes on ``server``.

    Route handlers run on the REST server's request threads; the
    registries are process-global and the reads are snapshots, so no
    coordination with the E2 hot path is needed.
    """
    prefix = prefix.rstrip("/")

    def get_metrics(subpath: str, body):
        if not subpath:
            return counters.snapshot()
        if subpath == "histograms":
            return counters.histogram_values()
        if subpath == "trace":
            return trace_mod.TRACER.snapshot()
        if subpath == "trace/stages":
            return trace_mod.TRACER.stage_breakdown()
        raise RestError(404, f"unknown metrics path: {subpath!r}")

    def post_metrics(subpath: str, body):
        if subpath == "trace/enable":
            trace_mod.enable()
            return {"enabled": True}
        if subpath == "trace/disable":
            trace_mod.disable()
            return {"enabled": False}
        if subpath == "trace/reset":
            trace_mod.reset()
            return {"reset": "trace"}
        if subpath == "reset":
            trace_mod.TRACER.clear()
            counters.reset_all()
            return {"reset": "all"}
        raise RestError(404, f"unknown metrics action: {subpath!r}")

    server.route("GET", prefix, get_metrics)
    server.route("POST", prefix, post_metrics)
