"""Minimal JSON REST server and client.

The slicing controller of Table 4 exposes its configuration "using an
HTTP REST north-bound interface" driven by a command-line xApp
("curl").  The server wraps stdlib ``http.server``; routes are
registered as ``(method, path_prefix) -> handler`` where the handler
receives the sub-path and the parsed JSON body and returns a JSON-able
object (or raises :class:`RestError` for an error status).
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

#: Handler signature: (subpath, body) -> response object.
RouteHandler = Callable[[str, Any], Any]


class RestError(Exception):
    """Raise inside a handler to return an HTTP error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class RestServer:
    """Threaded JSON-over-HTTP server with prefix routing."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._routes: Dict[Tuple[str, str], RouteHandler] = {}
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # silence request logging
                pass

            def _dispatch(self, method: str) -> None:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b""
                body = json.loads(raw) if raw else None
                try:
                    result = server._handle(method, self.path, body)
                    payload = json.dumps(result).encode("utf-8")
                    status = 200
                except RestError as exc:
                    payload = json.dumps({"error": str(exc)}).encode("utf-8")
                    status = exc.status
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self):
                self._dispatch("GET")

            def do_POST(self):
                self._dispatch("POST")

            def do_DELETE(self):
                self._dispatch("DELETE")

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"{host}:{port}"

    def route(self, method: str, prefix: str, handler: RouteHandler) -> None:
        """Register ``handler`` for requests matching ``prefix``."""
        self._routes[(method.upper(), prefix)] = handler

    def _handle(self, method: str, path: str, body: Any) -> Any:
        matches = [
            (prefix, handler)
            for (m, prefix), handler in self._routes.items()
            if m == method and path.startswith(prefix)
        ]
        if not matches:
            raise RestError(404, f"no route for {method} {path}")
        prefix, handler = max(matches, key=lambda item: len(item[0]))
        return handler(path[len(prefix):].lstrip("/"), body)

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="rest-server", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()


class RestClient:
    """curl-substitute: blocking JSON requests to a :class:`RestServer`."""

    def __init__(self, host: str, port: int, timeout_s: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    def request(self, method: str, path: str, body: Any = None) -> Any:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            payload = json.dumps(body) if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method.upper(), path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            result = json.loads(raw) if raw else None
            if response.status >= 400:
                raise RestError(response.status, str(result))
            return result
        finally:
            conn.close()

    def get(self, path: str) -> Any:
        return self.request("GET", path)

    def post(self, path: str, body: Any = None) -> Any:
        return self.request("POST", path, body)

    def delete(self, path: str) -> Any:
        return self.request("DELETE", path)
