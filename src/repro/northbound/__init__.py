"""Northbound communication interfaces (§4.2.1).

A controller specialization "typically exposes a northbound
communication interface using a custom protocol, such as a simple REST
interface (e.g., FlexRAN), the RMR library (e.g., O-RAN RIC), a message
broker (e.g. Redis), or E2AP itself".  This package provides the first
two of those options for the specializations of §6:

* :mod:`repro.northbound.rest` — a small JSON-over-HTTP server
  (stdlib ``http.server``) plus a curl-like client,
* :mod:`repro.northbound.broker` — a Redis-style publish/subscribe
  message broker,
* :mod:`repro.northbound.metrics_api` — observability routes exposing
  the metrics registry and the E2AP procedure tracer (§9 of DESIGN.md).

(The E2AP northbound is the agent library itself — see
:mod:`repro.controllers.virtualization`; the RMR-style mesh lives with
the O-RAN baseline in :mod:`repro.baselines.oran.rmr`.)
"""

from repro.northbound.broker import Broker, BrokerSubscription
from repro.northbound.metrics_api import attach_metrics_routes
from repro.northbound.rest import RestClient, RestServer

__all__ = [
    "Broker",
    "BrokerSubscription",
    "RestClient",
    "RestServer",
    "attach_metrics_routes",
]
