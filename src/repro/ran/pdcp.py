"""PDCP sublayer: per-bearer counters and header handling.

Kept deliberately thin — ciphering and reordering do not affect any
measured quantity — but real in the data path so the PDCP stats SM has
true counters to export and the CU side of a split base station owns
actual state.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.traffic.flows import Packet

#: Bytes PDCP prepends per SDU (18-bit SN format rounded up).
PDCP_HEADER_BYTES = 3


class PdcpEntity:
    """Transmit-side PDCP entity of one bearer.

    ``downstream`` receives the packet after accounting (the RLC
    entity's ``enqueue`` in a monolithic node, the F1 interface towards
    the DU in a CU/DU split).
    """

    def __init__(
        self,
        rnti: int,
        bearer_id: int,
        downstream: Callable[[Packet, float], bool],
    ) -> None:
        self.rnti = rnti
        self.bearer_id = bearer_id
        self._downstream = downstream
        self.tx_pkts = 0
        self.tx_bytes = 0
        self.rx_pkts = 0
        self.rx_bytes = 0
        self.sn = 0

    def submit(self, packet: Packet, now: float) -> bool:
        """Process one SDU downlink; returns downstream acceptance."""
        self.sn += 1
        self.tx_pkts += 1
        self.tx_bytes += packet.size
        return self._downstream(packet, now)

    def uplink_delivered(self, size: int) -> None:
        """Account one uplink SDU (counters only in this model)."""
        self.rx_pkts += 1
        self.rx_bytes += size
