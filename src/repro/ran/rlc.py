"""RLC sublayer with real buffers.

The RLC "is provided with large buffers to absorb the brusque changes
that the radio channel may suffer" (§6.1.1) — those large buffers are
where bufferbloat materializes when a loss-based congestion controller
(TCP Cubic) shares the bottleneck.  The entity models an
unacknowledged-mode transmit queue: byte-accurate FIFO with head-of-
line segmentation (MAC may drain partial packets per TTI), a capacity
cap with tail drop, and the statistics the RLC SM reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

from repro.traffic.flows import Packet


@dataclass(frozen=True)
class RlcConfig:
    """Per-bearer RLC parameters.

    The 3 MB default holds roughly half a second of a 58 Mbit/s NR
    carrier — large enough for Cubic to inflate hundreds of
    milliseconds of sojourn, as in Fig. 11a.
    """

    capacity_bytes: int = 3_000_000
    pdu_header_bytes: int = 2


class RlcEntity:
    """Transmit-side RLC entity of one data radio bearer."""

    def __init__(self, rnti: int, bearer_id: int, config: Optional[RlcConfig] = None) -> None:
        self.rnti = rnti
        self.bearer_id = bearer_id
        self.config = config or RlcConfig()
        self._queue: Deque[Packet] = deque()
        self._head_sent_bytes = 0  # progress into the head packet
        self.buffer_bytes = 0
        #: invoked with each fully transmitted packet (receiver side of
        #: the radio link; traffic generators hook RTT accounting here).
        self.on_delivered: Optional[Callable[[Packet], None]] = None
        # counters for the RLC stats SM
        self.rx_pdus = 0       # SDUs received from PDCP
        self.rx_bytes = 0
        self.tx_pdus = 0       # PDUs delivered towards MAC/PHY
        self.tx_bytes = 0
        self.dropped = 0
        self.last_sojourn_s = 0.0

    # -- upstream (PDCP) -----------------------------------------------

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Accept an SDU; tail-drops when the buffer is full."""
        if self.buffer_bytes + packet.size > self.config.capacity_bytes:
            self.dropped += 1
            return False
        packet.enqueued_rlc = now
        self._queue.append(packet)
        self.buffer_bytes += packet.size
        self.rx_pdus += 1
        self.rx_bytes += packet.size
        return True

    # -- downstream (MAC) ------------------------------------------------

    def pull(self, max_bytes: int, now: float) -> Tuple[int, List[Packet]]:
        """Drain up to ``max_bytes``; returns (bytes_taken, delivered).

        Packets count as delivered once their last byte is served;
        partially served head packets persist across TTIs (RLC
        segmentation).  Each full packet costs one PDU header.
        """
        if max_bytes <= 0:
            return 0, []
        taken = 0
        delivered: List[Packet] = []
        header = self.config.pdu_header_bytes
        while self._queue and taken < max_bytes:
            head = self._queue[0]
            remaining = head.size - self._head_sent_bytes + header
            budget = max_bytes - taken
            if remaining <= budget:
                taken += remaining
                self.buffer_bytes -= head.size
                self._queue.popleft()
                self._head_sent_bytes = 0
                head.delivered_at = now
                if head.enqueued_rlc is not None:
                    self.last_sojourn_s = now - head.enqueued_rlc
                delivered.append(head)
                self.tx_pdus += 1
                self.tx_bytes += head.size
                if self.on_delivered is not None:
                    self.on_delivered(head)
            else:
                self._head_sent_bytes += budget
                taken += budget
                break
        return taken, delivered

    def drain(self) -> List[Packet]:
        """Remove every queued packet without transmit semantics.

        Used for handover data forwarding: no delivery callback fires,
        tx counters stay untouched, and enqueue timestamps are cleared
        so the target cell restamps them on re-injection.
        """
        packets = list(self._queue)
        self._queue.clear()
        self._head_sent_bytes = 0
        self.buffer_bytes = 0
        for packet in packets:
            packet.enqueued_rlc = None
        return packets

    # -- introspection ----------------------------------------------------

    @property
    def backlog_bytes(self) -> int:
        return self.buffer_bytes

    @property
    def backlog_pkts(self) -> int:
        return len(self._queue)

    def head_sojourn_s(self, now: float) -> float:
        """Age of the oldest queued packet (0 when empty)."""
        if not self._queue:
            return 0.0
        head_enqueued = self._queue[0].enqueued_rlc
        return 0.0 if head_enqueued is None else now - head_enqueued

    def has_data(self) -> bool:
        return bool(self._queue)

    def __repr__(self) -> str:
        return (
            f"RlcEntity(rnti={self.rnti}, bearer={self.bearer_id}, "
            f"backlog={self.buffer_bytes}B/{len(self._queue)}pkts)"
        )
