"""L2 simulator: the base station without PHY cost (§5.1, Fig. 6b).

OAI's "L2 simulator" is "an emulation mode without the physical layer"
used to scale the UE count beyond what radio hardware serves.  Here it
is a :class:`~repro.ran.base_station.BaseStation` with the modelled PHY
CPU charge disabled and a helper to mass-attach UEs with synthetic
full-buffer traffic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.simclock import SimClock
from repro.metrics.cpu import CpuMeter
from repro.ran.base_station import BaseStation, BaseStationConfig
from repro.ran.phy import PhyConfig
from repro.traffic.flows import FiveTuple, Packet


class L2Simulator(BaseStation):
    """Base station in emulation mode: no PHY processing cost."""

    def __init__(
        self,
        config: Optional[BaseStationConfig] = None,
        clock: Optional[SimClock] = None,
        cpu_meter: Optional[CpuMeter] = None,
    ) -> None:
        base = config or BaseStationConfig(
            phy=PhyConfig(rat="lte", n_prbs=25, cores=8, cpu_load_fraction=0.0)
        )
        super().__init__(
            replace(base, model_phy_cpu=False), clock or SimClock(), cpu_meter
        )

    def attach_ues(self, count: int, cqi: int = 12, fixed_mcs: Optional[int] = 28) -> None:
        """Attach ``count`` UEs with rnti 1..count."""
        for rnti in range(1, count + 1):
            self.attach_ue(rnti, cqi=cqi, fixed_mcs=fixed_mcs)

    def keep_buffers_full(self, bytes_per_ue: int = 20_000) -> None:
        """Top up every UE's RLC buffer each TTI (full-buffer traffic).

        Keeps the MAC busy so the agent's statistics carry realistic
        non-zero counters, without modelling individual flows.
        """

        def top_up() -> None:
            now = self.clock.now
            for rnti in list(self.mac.ues):
                entity = self.mac.rlc_of(rnti, 1)
                if entity.backlog_bytes < bytes_per_ue:
                    flow = FiveTuple("10.0.0.1", f"10.0.1.{rnti}", 5001, 5001, "udp")
                    packet = Packet(flow=flow, size=1400, created_at=now)
                    entity.enqueue(packet, now)

        self.clock.call_every(self.config.phy.tti_s, top_up)
