"""Inter-cell mobility: UE context transfer between base stations.

The paper's introduction lists "user associations and handovers" among
what xApps control through FlexRIC; Fig. 14b has the virtualization
layer translating "control commands, such as handover for mobility
load balancing".  This module provides the RAN-side substrate: a
:class:`MobilityManager` that registers cells by nb_id and performs a
lossless handover — the source cell's RLC and TC backlog is forwarded
to the target (PDCP data forwarding), the UE detaches from the source
(RRC detach event) and attaches at the target (RRC attach event), so
controllers observe the move through the ordinary RRC SM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.traffic.flows import Packet


@dataclass
class UeHandoverContext:
    """Everything transferred across the X2/Xn interface for one UE."""

    rnti: int
    plmn: str
    snssai: int
    cqi: int
    fixed_mcs: Optional[int]
    bearers: Tuple[int, ...]
    #: per-bearer packets forwarded from the source's queues, in order.
    forwarded: Dict[int, List[Packet]] = field(default_factory=dict)

    @property
    def forwarded_packets(self) -> int:
        return sum(len(packets) for packets in self.forwarded.values())


class HandoverError(Exception):
    """Raised when a handover cannot be executed."""


class MobilityManager:
    """Registry of cells plus the handover procedure between them."""

    def __init__(self) -> None:
        self._cells: Dict[int, "BaseStation"] = {}
        self.handovers_done = 0

    def register(self, bs) -> None:
        """Add a cell; also points the cell's mobility hook here."""
        nb_id = bs.config.nb_id
        if nb_id in self._cells:
            raise ValueError(f"duplicate nb_id {nb_id}")
        self._cells[nb_id] = bs
        bs.mobility = self

    def cell(self, nb_id: int):
        return self._cells.get(nb_id)

    def cells(self) -> List[int]:
        return sorted(self._cells)

    def locate(self, rnti: int) -> Optional[int]:
        """nb_id of the cell currently serving ``rnti``, or None."""
        for nb_id, bs in self._cells.items():
            if rnti in bs.mac.ues:
                return nb_id
        return None

    def handover(self, rnti: int, source_nb: int, target_nb: int) -> UeHandoverContext:
        """Move ``rnti`` from ``source_nb`` to ``target_nb``.

        Lossless: queued downlink data is forwarded and re-injected at
        the target in order.  Raises :class:`HandoverError` on unknown
        cells, unknown UE, or an occupied RNTI at the target.
        """
        source = self._cells.get(source_nb)
        target = self._cells.get(target_nb)
        if source is None or target is None:
            raise HandoverError(f"unknown cell in handover {source_nb}->{target_nb}")
        if source_nb == target_nb:
            raise HandoverError("source and target cells are identical")
        if rnti not in source.mac.ues:
            raise HandoverError(f"UE {rnti} is not served by cell {source_nb}")
        if rnti in target.mac.ues:
            raise HandoverError(f"RNTI {rnti} already in use at cell {target_nb}")

        context = source.extract_ue(rnti)
        ue = target.attach_ue(
            rnti=context.rnti,
            plmn=context.plmn,
            snssai=context.snssai,
            cqi=context.cqi,
            fixed_mcs=context.fixed_mcs,
            bearers=context.bearers,
        )
        now = target.clock.now
        for bearer_id, packets in context.forwarded.items():
            entity = target.mac.rlc_of(rnti, bearer_id)
            for packet in packets:
                entity.enqueue(packet, now)
        self.handovers_done += 1
        return context
