"""Compatibility shim: the discrete-event engine lives in
:mod:`repro.core.simclock` (it is shared by non-RAN components such as
traffic generators and the TC dataplane)."""

from repro.core.simclock import Event, PeriodicTask, SimClock

__all__ = ["Event", "PeriodicTask", "SimClock"]
