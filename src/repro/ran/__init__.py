"""Simulated radio access network substrate.

The paper's evaluation runs against OpenAirInterface 4G/5G base
stations.  This package is the synthetic equivalent: a discrete-event
model of a base station user plane with the sublayers the FlexRIC
service models touch (SDAP/PDCP/RLC/MAC and a PHY abstraction), plus
UEs, channel quality processes, MAC schedulers (round robin,
proportional fair, and the NVS slice scheduler of Kokku et al.), and
monolithic / CU-DU-split compositions.
"""

from repro.ran.simclock import SimClock, Event
from repro.ran.phy import PhyConfig, ChannelModel, transport_block_bits
from repro.ran.ue import UeContext
from repro.ran.mac import MacLayer, RoundRobinScheduler, ProportionalFairScheduler
from repro.ran.rlc import RlcEntity, RlcConfig
from repro.ran.pdcp import PdcpEntity
from repro.ran.sdap import SdapEntity
from repro.ran.nvs import NvsSliceConfig, NvsScheduler, SliceKind
from repro.ran.base_station import BaseStation, BaseStationConfig, CuNode, DuNode, split_base_station
from repro.ran.l2sim import L2Simulator

__all__ = [
    "SimClock",
    "Event",
    "PhyConfig",
    "ChannelModel",
    "transport_block_bits",
    "UeContext",
    "MacLayer",
    "RoundRobinScheduler",
    "ProportionalFairScheduler",
    "RlcEntity",
    "RlcConfig",
    "PdcpEntity",
    "SdapEntity",
    "NvsSliceConfig",
    "NvsScheduler",
    "SliceKind",
    "BaseStation",
    "BaseStationConfig",
    "CuNode",
    "DuNode",
    "split_base_station",
    "L2Simulator",
]
