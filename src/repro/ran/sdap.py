"""SDAP sublayer: flow-to-bearer mapping and the TC hook point.

Per Fig. 10 the traffic-control SM sits between SDAP and PDCP in the
downlink path.  The entity maps QoS flows onto data radio bearers and
hands each packet to the bearer's ingress — either the PDCP entity
directly (transparent) or a TC pipeline installed by the TC SM.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.traffic.flows import FiveTuple, Packet

#: Ingress signature: (packet, now) -> accepted.
BearerIngress = Callable[[Packet, float], bool]


class SdapEntity:
    """Downlink SDAP entity of one UE."""

    def __init__(self, rnti: int, default_bearer: int = 1) -> None:
        self.rnti = rnti
        self.default_bearer = default_bearer
        self._bearer_ingress: Dict[int, BearerIngress] = {}
        self._flow_to_bearer: Dict[FiveTuple, int] = {}
        self.pkts_in = 0
        self.bytes_in = 0

    def attach_bearer(self, bearer_id: int, ingress: BearerIngress) -> None:
        self._bearer_ingress[bearer_id] = ingress

    def replace_ingress(self, bearer_id: int, ingress: BearerIngress) -> BearerIngress:
        """Swap a bearer's ingress (TC SM installation); returns the
        previous ingress so a pipeline can chain to it."""
        previous = self._bearer_ingress[bearer_id]
        self._bearer_ingress[bearer_id] = ingress
        return previous

    def map_flow(self, flow: FiveTuple, bearer_id: int) -> None:
        """Pin a flow to a bearer (QFI->DRB mapping)."""
        if bearer_id not in self._bearer_ingress:
            raise KeyError(f"unknown bearer {bearer_id} on UE {self.rnti}")
        self._flow_to_bearer[flow] = bearer_id

    def deliver(self, packet: Packet, now: float) -> bool:
        """Entry point from the core network for one downlink packet."""
        self.pkts_in += 1
        self.bytes_in += packet.size
        bearer_id = self._flow_to_bearer.get(packet.flow, self.default_bearer)
        ingress = self._bearer_ingress.get(bearer_id)
        if ingress is None:
            raise KeyError(f"bearer {bearer_id} has no ingress on UE {self.rnti}")
        return ingress(packet, now)

    @property
    def bearers(self) -> list:
        return sorted(self._bearer_ingress)
