"""PHY abstraction: link adaptation tables and transport block sizing.

The reproduction does not model waveforms; what the upper layers (and
therefore the FlexRIC experiments) need from the PHY is:

* how many bytes fit into a TTI for a UE at a given MCS over a given
  number of physical resource blocks (PRBs) — :func:`transport_block_bits`,
* a per-UE channel quality (CQI) process and CQI->MCS mapping —
  :class:`ChannelModel`,
* a CPU cost model for the user-plane baseline of Fig. 6a (the paper's
  8.66 % NR / 6.55 % LTE machine loads come from real signal
  processing; here they are charged as modelled costs so the *relative*
  agent overhead is meaningful).

The TBS approximation (PRBs x 12 subcarriers x 14 symbols x bits/symbol
x code rate x 0.85 overhead factor) lands a 106-PRB NR carrier at
MCS 20 near 58 Mbit/s — matching the ~60 Mbit/s cell throughput of the
paper's Fig. 13 setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Subcarriers per PRB and symbols per TTI (normal cyclic prefix).
_SUBCARRIERS = 12
_SYMBOLS = 14
#: Fraction of resource elements left after control/reference overhead.
_OVERHEAD_FACTOR = 0.85

#: MCS index -> (modulation order Qm, target code rate).  A condensed
#: 29-entry table following the shape of 3GPP TS 38.214 table 5.1.3.1-1.
_MCS_TABLE: Tuple[Tuple[int, float], ...] = (
    (2, 0.12), (2, 0.15), (2, 0.19), (2, 0.25), (2, 0.30),  # 0-4 QPSK
    (2, 0.37), (2, 0.44), (2, 0.51), (2, 0.59), (2, 0.66),  # 5-9
    (4, 0.33), (4, 0.37), (4, 0.42), (4, 0.48), (4, 0.54),  # 10-14 16QAM
    (4, 0.60), (4, 0.64), (6, 0.43), (6, 0.46), (6, 0.50),  # 15-19
    (6, 0.55), (6, 0.60), (6, 0.65), (6, 0.70), (6, 0.75),  # 20-24 64QAM
    (6, 0.80), (6, 0.85), (6, 0.89), (6, 0.93),             # 25-28
)

#: CQI (1..15) -> MCS mapping (conservative link adaptation).
_CQI_TO_MCS: Tuple[int, ...] = (0, 0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28)


def mcs_parameters(mcs: int) -> Tuple[int, float]:
    """(modulation order, code rate) for an MCS index (0..28)."""
    if not 0 <= mcs < len(_MCS_TABLE):
        raise ValueError(f"MCS out of range: {mcs}")
    return _MCS_TABLE[mcs]


def cqi_to_mcs(cqi: int) -> int:
    """Map a CQI report (1..15) to an MCS index."""
    if not 1 <= cqi <= 15:
        raise ValueError(f"CQI out of range: {cqi}")
    return _CQI_TO_MCS[cqi]


def transport_block_bits(mcs: int, n_prbs: int) -> int:
    """Bits transportable in one TTI over ``n_prbs`` PRBs at ``mcs``."""
    if n_prbs < 0:
        raise ValueError(f"negative PRB count: {n_prbs}")
    qm, rate = mcs_parameters(mcs)
    resource_elements = n_prbs * _SUBCARRIERS * _SYMBOLS * _OVERHEAD_FACTOR
    return int(resource_elements * qm * rate)


def transport_block_bytes(mcs: int, n_prbs: int) -> int:
    return transport_block_bits(mcs, n_prbs) // 8


@dataclass(frozen=True)
class PhyConfig:
    """Carrier and host parameters of one cell.

    ``cpu_load_fraction`` is the fraction of the whole machine the
    user-plane signal processing consumes when active (Fig. 6a baseline:
    0.0655 for the LTE cell on 8 cores, 0.0866 for NR on 16).
    """

    rat: str = "nr"                 # "lte" or "nr"
    n_prbs: int = 106
    tti_s: float = 0.001
    cores: int = 16
    cpu_load_fraction: float = 0.0866
    band: str = "n78"

    def __post_init__(self) -> None:
        if self.rat not in ("lte", "nr"):
            raise ValueError(f"unknown RAT {self.rat!r}")
        if self.n_prbs <= 0:
            raise ValueError(f"non-positive PRB count: {self.n_prbs}")
        if self.tti_s <= 0.0:
            raise ValueError(f"non-positive TTI: {self.tti_s}")

    @property
    def bandwidth_mhz(self) -> float:
        """Approximate carrier bandwidth from the PRB count."""
        return self.n_prbs * 0.18 if self.rat == "lte" else self.n_prbs * 0.18 + 1.0

    def phy_cpu_cost_per_tti(self) -> float:
        """Modelled CPU-seconds one TTI of user-plane processing costs."""
        return self.cpu_load_fraction * self.cores * self.tti_s


#: Pre-canned cell configurations matching the paper's testbeds.
LTE_CELL_5MHZ = PhyConfig(rat="lte", n_prbs=25, cores=8, cpu_load_fraction=0.0655, band="b7")
LTE_CELL_10MHZ = PhyConfig(rat="lte", n_prbs=50, cores=8, cpu_load_fraction=0.0655, band="b7")
NR_CELL_20MHZ = PhyConfig(rat="nr", n_prbs=106, cores=16, cpu_load_fraction=0.0866, band="n78")


class ChannelModel:
    """Deterministic per-UE channel-quality process.

    A fixed base CQI per UE plus an optional slow sinusoid-free
    variation driven by a linear congruential generator, so runs are
    reproducible without ``random``.
    """

    _LCG_A = 6364136223846793005
    _LCG_C = 1442695040888963407
    _MASK = (1 << 64) - 1

    def __init__(self, base_cqi: int = 12, variation: int = 0, seed: int = 1) -> None:
        if not 1 <= base_cqi <= 15:
            raise ValueError(f"CQI out of range: {base_cqi}")
        if variation < 0 or base_cqi - variation < 1 or base_cqi + variation > 15:
            raise ValueError(f"variation {variation} out of range for CQI {base_cqi}")
        self.base_cqi = base_cqi
        self.variation = variation
        self._state = seed & self._MASK

    def _next(self) -> int:
        self._state = (self._state * self._LCG_A + self._LCG_C) & self._MASK
        return self._state >> 33

    def cqi_at(self, rnti: int, now: float) -> int:
        """CQI of ``rnti`` at time ``now`` (stationary distribution)."""
        if self.variation == 0:
            return self.base_cqi
        wobble = self._next() % (2 * self.variation + 1) - self.variation
        return max(1, min(15, self.base_cqi + wobble))
