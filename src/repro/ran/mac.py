"""MAC layer: UE schedulers, slice scheduling, and the SC SM backend.

Per Fig. 12 the MAC scheduling phase is two-tier: "first the slice
scheduler distributes resources among slices, and for each selected
slice, the corresponding UE scheduler distributes resources among the
UEs."  The :class:`MacLayer` implements that split and exposes the
:class:`~repro.sm.slice_ctrl.SliceControlApi` so the SC SM can drive it
RAT-independently.

Slice algorithms (selected via the SC SM ``set_algo`` command):

* ``none``   — no slicing; all UEs share one proportional-fair pool,
* ``static`` — fixed slot partition, **no sharing** (idle slots are
  wasted; the upper plot of Fig. 13b),
* ``nvs``    — the NVS scheduler: isolation plus work-conserving
  sharing (lower plot of Fig. 13b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ran.nvs import NvsScheduler, NvsSliceConfig, SliceKind
from repro.ran.phy import PhyConfig, cqi_to_mcs, transport_block_bytes
from repro.ran.rlc import RlcEntity
from repro.ran.ue import UeContext
from repro.sm.slice_ctrl import (
    ALGO_NONE,
    ALGO_NVS,
    ALGO_STATIC,
    KIND_CAPACITY,
    SliceConfig,
)


class UeScheduler:
    """Distributes one TTI's PRBs among a slice's backlogged UEs."""

    name = "base"

    def allocate(self, ues: List[UeContext], n_prbs: int) -> Dict[int, int]:
        """Return {rnti: allocated PRBs}; must not exceed ``n_prbs``."""
        raise NotImplementedError


class RoundRobinScheduler(UeScheduler):
    """Strict rotation: the whole TTI goes to one UE at a time."""

    name = "rr"

    def __init__(self) -> None:
        self._next = 0

    def allocate(self, ues: List[UeContext], n_prbs: int) -> Dict[int, int]:
        if not ues:
            return {}
        ordered = sorted(ues, key=lambda ue: ue.rnti)
        chosen = ordered[self._next % len(ordered)]
        self._next += 1
        return {chosen.rnti: n_prbs}


class ProportionalFairScheduler(UeScheduler):
    """PF: PRBs split proportionally to achievable/average throughput.

    With equal channel conditions this "equally distributes resources
    between UEs" (§6.1.2); under unequal channels UEs with momentarily
    better conditions get proportionally more.
    """

    name = "pf"

    def __init__(self, ewma: float = 0.05) -> None:
        self.ewma = ewma
        self._avg_rate: Dict[int, float] = {}

    def allocate(self, ues: List[UeContext], n_prbs: int) -> Dict[int, int]:
        if not ues:
            return {}
        weights: Dict[int, float] = {}
        for ue in ues:
            mcs = ue.fixed_mcs if ue.fixed_mcs is not None else cqi_to_mcs(ue.cqi)
            achievable = float(transport_block_bytes(mcs, n_prbs))
            average = self._avg_rate.get(ue.rnti, 0.0)
            weights[ue.rnti] = achievable / max(average, 1.0)
        total = sum(weights.values())
        allocation: Dict[int, int] = {}
        assigned = 0
        ordered = sorted(ues, key=lambda ue: ue.rnti)
        for index, ue in enumerate(ordered):
            if index == len(ordered) - 1:
                prbs = n_prbs - assigned  # remainder to the last UE
            else:
                prbs = int(n_prbs * weights[ue.rnti] / total)
            allocation[ue.rnti] = prbs
            assigned += prbs
        # Update averages with the served amounts.
        for ue in ordered:
            mcs = ue.fixed_mcs if ue.fixed_mcs is not None else cqi_to_mcs(ue.cqi)
            served = float(transport_block_bytes(mcs, allocation[ue.rnti]))
            previous = self._avg_rate.get(ue.rnti, 0.0)
            self._avg_rate[ue.rnti] = (1.0 - self.ewma) * previous + self.ewma * served
        return allocation


def _make_ue_scheduler(name: str) -> UeScheduler:
    if name == "rr":
        return RoundRobinScheduler()
    if name == "pf":
        return ProportionalFairScheduler()
    raise ValueError(f"unknown UE scheduler {name!r}")


@dataclass
class _Slice:
    config: NvsSliceConfig
    scheduler: UeScheduler
    members: set = field(default_factory=set)
    bytes_served: int = 0
    slots_served: int = 0


class MacLayer:
    """Two-tier MAC scheduler; backend for the SC SM and MAC stats SM."""

    def __init__(self, phy: PhyConfig) -> None:
        self.phy = phy
        self.ues: Dict[int, UeContext] = {}
        self.rlc: Dict[Tuple[int, int], RlcEntity] = {}
        self.algo = ALGO_NONE
        self.nvs = NvsScheduler()
        self._slices: Dict[int, _Slice] = {}
        self._default_scheduler: UeScheduler = ProportionalFairScheduler()
        self._static_cursor = 0
        self.ttis_run = 0
        self.total_bytes = 0

    # -- topology ---------------------------------------------------------

    def add_ue(self, ue: UeContext) -> None:
        if ue.rnti in self.ues:
            raise ValueError(f"duplicate RNTI {ue.rnti}")
        self.ues[ue.rnti] = ue

    def remove_ue(self, rnti: int) -> None:
        self.ues.pop(rnti, None)
        for key in [key for key in self.rlc if key[0] == rnti]:
            del self.rlc[key]
        for slice_state in self._slices.values():
            slice_state.members.discard(rnti)

    def attach_rlc(self, entity: RlcEntity) -> None:
        self.rlc[(entity.rnti, entity.bearer_id)] = entity

    def rlc_of(self, rnti: int, bearer_id: int) -> RlcEntity:
        return self.rlc[(rnti, bearer_id)]

    def bearers_of(self, rnti: int) -> List[RlcEntity]:
        return [entity for (ue, _b), entity in sorted(self.rlc.items()) if ue == rnti]

    # -- SliceControlApi ---------------------------------------------------

    def set_slice_algorithm(self, algo: str) -> None:
        if algo not in (ALGO_NONE, ALGO_STATIC, ALGO_NVS):
            raise ValueError(f"unknown slice algorithm {algo!r}")
        self.algo = algo

    def add_slice(self, config: SliceConfig) -> None:
        """Admit/reconfigure a slice (SC SM ``add_slice``)."""
        nvs_config = NvsSliceConfig(
            slice_id=config.slice_id,
            kind=SliceKind.CAPACITY if config.kind == KIND_CAPACITY else SliceKind.RATE,
            cap=config.cap,
            rate_mbps=config.rate_mbps,
            ref_mbps=config.ref_mbps,
            label=config.label,
            ue_scheduler=config.ue_scheduler,
        )
        self.nvs.add_slice(nvs_config)  # raises on admission failure
        existing = self._slices.get(config.slice_id)
        if existing is not None:
            existing.config = nvs_config
            if existing.scheduler.name != config.ue_scheduler:
                existing.scheduler = _make_ue_scheduler(config.ue_scheduler)
        else:
            self._slices[config.slice_id] = _Slice(
                config=nvs_config, scheduler=_make_ue_scheduler(config.ue_scheduler)
            )

    def delete_slice(self, slice_id: int) -> None:
        if slice_id not in self._slices:
            raise ValueError(f"unknown slice {slice_id}")
        self.nvs.remove_slice(slice_id)
        removed = self._slices.pop(slice_id)
        for rnti in removed.members:
            self.ues[rnti].slice_id = 0

    def associate_ue(self, rnti: int, slice_id: int) -> None:
        if rnti not in self.ues:
            raise ValueError(f"unknown RNTI {rnti}")
        if slice_id not in self._slices:
            raise ValueError(f"unknown slice {slice_id}")
        for slice_state in self._slices.values():
            slice_state.members.discard(rnti)
        self._slices[slice_id].members.add(rnti)
        self.ues[rnti].slice_id = slice_id

    def slice_snapshot(self) -> dict:
        return {
            "algo": self.algo,
            "slices": [
                {
                    **entry,
                    "members": sorted(self._slices[entry["slice_id"]].members),
                    "bytes_served": self._slices[entry["slice_id"]].bytes_served,
                }
                for entry in self.nvs.snapshot()
            ],
        }

    # -- scheduling ---------------------------------------------------------

    def run_tti(self, now: float) -> int:
        """Run one scheduling slot; returns bytes transported downlink."""
        self.ttis_run += 1
        if self.algo == ALGO_NONE or not self._slices:
            served = self._serve_ues(
                self._backlogged_ues(self.ues.keys()), self._default_scheduler, now
            )
            self.total_bytes += served
            return served

        if self.algo == ALGO_NVS:
            backlogged = [
                slice_id
                for slice_id, slice_state in self._slices.items()
                if self._backlogged_ues(slice_state.members)
            ]
            chosen = self.nvs.pick(backlogged)
            served = 0
            if chosen is not None:
                slice_state = self._slices[chosen]
                served = self._serve_ues(
                    self._backlogged_ues(slice_state.members), slice_state.scheduler, now
                )
                slice_state.bytes_served += served
                slice_state.slots_served += 1
            served_mbps = served * 8 / self.phy.tti_s / 1e6
            self.nvs.account(chosen, served_mbps)
            self.total_bytes += served
            return served

        # ALGO_STATIC: deterministic weighted slot pattern, no sharing.
        chosen_id = self._static_pick()
        served = 0
        if chosen_id is not None:
            slice_state = self._slices[chosen_id]
            ues = self._backlogged_ues(slice_state.members)
            if ues:  # an idle slice wastes its slot
                served = self._serve_ues(ues, slice_state.scheduler, now)
                slice_state.bytes_served += served
            slice_state.slots_served += 1
        self.total_bytes += served
        return served

    def _static_pick(self) -> Optional[int]:
        """Weighted round-robin over slots by configured share."""
        if not self._slices:
            return None
        ordered = sorted(self._slices)
        # Spread shares over a 100-slot pattern.
        pattern: List[int] = []
        for slice_id in ordered:
            count = int(round(self._slices[slice_id].config.share * 100))
            pattern.extend([slice_id] * max(count, 1))
        if not pattern:
            return None
        chosen = pattern[self._static_cursor % len(pattern)]
        self._static_cursor += 1
        return chosen

    def _backlogged_ues(self, rntis) -> List[UeContext]:
        active = []
        for rnti in sorted(rntis):
            ue = self.ues.get(rnti)
            if ue is None:
                continue
            if any(entity.has_data() for entity in self.bearers_of(rnti)):
                active.append(ue)
        return active

    def _serve_ues(self, ues: List[UeContext], scheduler: UeScheduler, now: float) -> int:
        if not ues:
            return 0
        allocation = scheduler.allocate(ues, self.phy.n_prbs)
        total_served = 0
        for ue in ues:
            prbs = allocation.get(ue.rnti, 0)
            if prbs <= 0:
                continue
            mcs = ue.fixed_mcs if ue.fixed_mcs is not None else cqi_to_mcs(ue.cqi)
            budget = transport_block_bytes(mcs, prbs)
            served = 0
            for entity in self.bearers_of(ue.rnti):
                if served >= budget:
                    break
                taken, _delivered = entity.pull(budget - served, now)
                served += taken
            if served > 0:
                ue.prbs_dl += prbs
                ue.bytes_dl += served
                ue.total_bytes_dl += served
                total_served += served
        return total_served

    # -- stats SM providers ---------------------------------------------------

    def mac_stats_tree(self, visible: Optional[set], now_ms: float) -> dict:
        """MAC stats SM payload (per-UE period counters, reset on read)."""
        ues = []
        for rnti in sorted(self.ues):
            if visible is not None and rnti not in visible:
                continue
            ue = self.ues[rnti]
            counters = ue.harvest_period_counters()
            mcs = ue.fixed_mcs if ue.fixed_mcs is not None else cqi_to_mcs(ue.cqi)
            ues.append(
                {
                    "rnti": rnti,
                    "cqi": ue.cqi,
                    "mcs_dl": mcs,
                    "mcs_ul": mcs,
                    "prbs_dl": counters["prbs_dl"],
                    "prbs_ul": counters["prbs_ul"],
                    "bytes_dl": counters["bytes_dl"],
                    "bytes_ul": counters["bytes_ul"],
                    "slice_id": ue.slice_id,
                }
            )
        return {"ues": ues, "tstamp_ms": now_ms}

    def rlc_stats_tree(self, visible: Optional[set], now: float) -> dict:
        """RLC stats SM payload."""
        bearers = []
        for (rnti, bearer_id), entity in sorted(self.rlc.items()):
            if visible is not None and rnti not in visible:
                continue
            bearers.append(
                {
                    "rnti": rnti,
                    "bearer_id": bearer_id,
                    "buffer_bytes": entity.buffer_bytes,
                    "buffer_pkts": entity.backlog_pkts,
                    "sojourn_ms": entity.head_sojourn_s(now) * 1000.0,
                    "tx_pdus": entity.tx_pdus,
                    "tx_bytes": entity.tx_bytes,
                    "rx_pdus": entity.rx_pdus,
                    "rx_bytes": entity.rx_bytes,
                    "dropped": entity.dropped,
                }
            )
        return {"bearers": bearers, "tstamp_ms": now * 1000.0}
