"""UE context held by a base station."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class UeContext:
    """State of one attached UE.

    ``fixed_mcs`` pins the modulation-and-coding scheme as the paper's
    experiments do ("the modulation-and-coding scheme is fixed to 20
    for all UEs", §6.1.2); when None, link adaptation maps CQI to MCS.
    """

    rnti: int
    plmn: str = "00101"
    snssai: int = 1
    slice_id: int = 0
    fixed_mcs: int | None = None
    cqi: int = 12
    bearers: List[int] = field(default_factory=lambda: [1])

    # Rolling per-period MAC accounting, harvested by the stats SM.
    prbs_dl: int = 0
    prbs_ul: int = 0
    bytes_dl: int = 0
    bytes_ul: int = 0
    # Lifetime totals, for throughput series (Fig. 13/15).
    total_bytes_dl: int = 0

    def harvest_period_counters(self) -> Dict[str, int]:
        """Return and reset the per-reporting-period counters."""
        out = {
            "prbs_dl": self.prbs_dl,
            "prbs_ul": self.prbs_ul,
            "bytes_dl": self.bytes_dl,
            "bytes_ul": self.bytes_ul,
        }
        self.prbs_dl = 0
        self.prbs_ul = 0
        self.bytes_dl = 0
        self.bytes_ul = 0
        return out
