"""Base station user plane and its FlexRIC integration.

Composes the sublayer stack of Fig. 3 — SDAP -> (TC) -> PDCP -> RLC ->
MAC -> PHY — around a discrete-event clock, and provides:

* UE attach/detach with RRC event callbacks (PLMN / S-NSSAI),
* a per-TTI loop that drains TC pipelines, runs the MAC scheduler, and
  charges modelled PHY CPU cost (the Fig. 6a baseline),
* statistics providers for the MAC/RLC/PDCP SMs and the live API
  objects the SC and TC SMs drive,
* :func:`attach_agent` — one-call wiring of a FlexRIC agent with the
  standard RAN-function bundle,
* CU/DU disaggregation views (:class:`CuNode` / :class:`DuNode`) that
  expose the same logical base station as two E2 nodes with the
  layer-appropriate function subsets (§4.1.1: "not all RAN layers are
  present in every node ... FlexRIC natively supports such
  disaggregation through the selection of appropriate RAN functions").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.agent.agent import Agent, AgentConfig
from repro.core.e2ap.ies import GlobalE2NodeId, NodeKind
from repro.core.simclock import PeriodicTask, SimClock
from repro.core.transport.base import Transport
from repro.metrics.cpu import CpuMeter
from repro.ran.mac import MacLayer
from repro.ran.pdcp import PdcpEntity
from repro.ran.phy import ChannelModel, PhyConfig, NR_CELL_20MHZ
from repro.ran.rlc import RlcConfig, RlcEntity
from repro.ran.sdap import SdapEntity
from repro.ran.ue import UeContext
from repro.sm.mac_stats import MacStatsFunction
from repro.sm.pdcp_stats import PdcpStatsFunction
from repro.sm.rlc_stats import RlcStatsFunction
from repro.sm.rrc_conf import RrcConfFunction
from repro.sm.slice_ctrl import SliceCtrlFunction
from repro.sm.traffic_ctrl import TrafficCtrlFunction
from repro.tc.pipeline import TcPipeline
from repro.traffic.flows import Packet

#: RRC event listener: (event, rnti, plmn, snssai).
RrcListener = Callable[[str, int, str, int], None]


@dataclass
class BaseStationConfig:
    """Static base-station parameters."""

    plmn: str = "00101"
    nb_id: int = 1
    phy: PhyConfig = field(default_factory=lambda: NR_CELL_20MHZ)
    rlc: RlcConfig = field(default_factory=RlcConfig)
    kind: NodeKind = NodeKind.GNB
    #: charge the modelled PHY/user-plane CPU cost per TTI (disabled by
    #: the L2 simulator, §5.1).
    model_phy_cpu: bool = True
    #: optional channel-quality process: when set, each UE's CQI is
    #: refreshed from it every ``channel_period_s`` (UEs with a fixed
    #: MCS — as in the paper's experiments — are unaffected).
    channel: Optional["ChannelModel"] = None
    channel_period_s: float = 0.01

    @property
    def node_id(self) -> GlobalE2NodeId:
        return GlobalE2NodeId(plmn=self.plmn, nb_id=self.nb_id, kind=self.kind)


class BaseStation:
    """One cell's user plane on a simulation clock."""

    def __init__(
        self,
        config: BaseStationConfig,
        clock: SimClock,
        cpu_meter: Optional[CpuMeter] = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.cpu = cpu_meter or CpuMeter(f"bs-{config.nb_id}", cores=config.phy.cores)
        self.mac = MacLayer(config.phy)
        self.sdap: Dict[int, SdapEntity] = {}
        self.pdcp: Dict[Tuple[int, int], PdcpEntity] = {}
        self.tc: Dict[Tuple[int, int], TcPipeline] = {}
        self._rrc_listeners: List[RrcListener] = []
        self._rate_state: Dict[Tuple[int, int], Tuple[int, float]] = {}
        self._tti_task: Optional[PeriodicTask] = None
        #: set by a MobilityManager on register; enables handovers.
        self.mobility = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Begin the TTI loop on the clock."""
        if self._tti_task is not None:
            raise RuntimeError("base station already started")
        self._tti_task = self.clock.call_every(self.config.phy.tti_s, self._tti)
        if self.config.channel is not None:
            self.clock.call_every(self.config.channel_period_s, self._update_channel)

    def _update_channel(self) -> None:
        channel = self.config.channel
        for rnti, ue in self.mac.ues.items():
            ue.cqi = channel.cqi_at(rnti, self.clock.now)

    def stop(self) -> None:
        if self._tti_task is not None:
            self._tti_task.stop()
            self._tti_task = None

    def _tti(self) -> None:
        now = self.clock.now
        if self.config.model_phy_cpu:
            self.cpu.charge(self.config.phy.phy_cpu_cost_per_tti())
        for pipeline in self.tc.values():
            pipeline.drain(now)
        self.mac.run_tti(now)
        self._update_rate_estimates()

    def _update_rate_estimates(self) -> None:
        tti = self.config.phy.tti_s
        for key, entity in self.mac.rlc.items():
            last_bytes, ewma = self._rate_state.get(key, (entity.tx_bytes, 0.0))
            delta = entity.tx_bytes - last_bytes
            instant_bps = delta * 8.0 / tti
            # Only adapt while the bearer is active, so an idle pause
            # does not erase the capacity estimate the pacer relies on.
            if delta > 0 or entity.has_data():
                ewma = 0.9 * ewma + 0.1 * instant_bps
            self._rate_state[key] = (entity.tx_bytes, ewma)

    def rate_estimate_bps(self, rnti: int, bearer_id: int) -> float:
        return self._rate_state.get((rnti, bearer_id), (0, 0.0))[1]

    # -- RRC / UE management ----------------------------------------------

    def on_rrc_event(self, listener: RrcListener) -> None:
        self._rrc_listeners.append(listener)

    def attach_ue(
        self,
        rnti: int,
        plmn: Optional[str] = None,
        snssai: int = 1,
        cqi: int = 12,
        fixed_mcs: Optional[int] = None,
        bearers: Tuple[int, ...] = (1,),
    ) -> UeContext:
        """Admit a UE and build its full downlink chain per bearer."""
        ue = UeContext(
            rnti=rnti,
            plmn=plmn or self.config.plmn,
            snssai=snssai,
            cqi=cqi,
            fixed_mcs=fixed_mcs,
            bearers=list(bearers),
        )
        self.mac.add_ue(ue)
        sdap = SdapEntity(rnti=rnti, default_bearer=bearers[0])
        self.sdap[rnti] = sdap
        for bearer_id in bearers:
            rlc = RlcEntity(rnti=rnti, bearer_id=bearer_id, config=self.config.rlc)
            self.mac.attach_rlc(rlc)
            pdcp = PdcpEntity(rnti=rnti, bearer_id=bearer_id, downstream=rlc.enqueue)
            self.pdcp[(rnti, bearer_id)] = pdcp
            pipeline = TcPipeline(
                downstream=pdcp.submit,
                rlc_backlog=lambda entity=rlc: entity.backlog_bytes,
                rate_estimate_bps=lambda key=(rnti, bearer_id): self.rate_estimate_bps(*key),
            )
            self.tc[(rnti, bearer_id)] = pipeline
            sdap.attach_bearer(bearer_id, pipeline.ingress)
        for listener in self._rrc_listeners:
            listener("attach", rnti, ue.plmn, snssai)
        return ue

    def detach_ue(self, rnti: int) -> None:
        ue = self.mac.ues.get(rnti)
        if ue is None:
            raise KeyError(f"unknown RNTI {rnti}")
        self.mac.remove_ue(rnti)
        self.sdap.pop(rnti, None)
        for key in [key for key in self.pdcp if key[0] == rnti]:
            del self.pdcp[key]
        for key in [key for key in self.tc if key[0] == rnti]:
            del self.tc[key]
        for listener in self._rrc_listeners:
            listener("detach", rnti, ue.plmn, ue.snssai)

    # -- mobility --------------------------------------------------------

    def extract_ue(self, rnti: int):
        """Remove ``rnti`` and return its handover context.

        Queued downlink data (TC queues first, then RLC, preserving
        order) is collected for forwarding to the target cell.
        """
        from repro.ran.mobility import UeHandoverContext

        ue = self.mac.ues.get(rnti)
        if ue is None:
            raise KeyError(f"unknown RNTI {rnti}")
        forwarded: Dict[int, List[Packet]] = {}
        for bearer_id in ue.bearers:
            # Arrival order: the RLC backlog is older (it already passed
            # the TC pipeline), so drain it first, then the TC queues.
            entity = self.mac.rlc_of(rnti, bearer_id)
            packets: List[Packet] = entity.drain()
            pipeline = self.tc.get((rnti, bearer_id))
            if pipeline is not None:
                for _qid, queue in sorted(pipeline.queues.items()):
                    while queue:
                        packets.append(queue.pop(self.clock.now))
            forwarded[bearer_id] = packets
        context = UeHandoverContext(
            rnti=rnti,
            plmn=ue.plmn,
            snssai=ue.snssai,
            cqi=ue.cqi,
            fixed_mcs=ue.fixed_mcs,
            bearers=tuple(ue.bearers),
            forwarded=forwarded,
        )
        self.detach_ue(rnti)
        return context

    def request_handover(self, rnti: int, target_nb: int) -> None:
        """RRC-side entry point used by the RRC SM's handover control."""
        if self.mobility is None:
            raise ValueError("cell is not registered with a MobilityManager")
        self.mobility.handover(rnti, self.config.nb_id, target_nb)

    # -- traffic entry ------------------------------------------------------

    def deliver_downlink(self, rnti: int, packet: Packet) -> bool:
        """Inject one downlink IP packet for ``rnti`` (core-network side)."""
        sdap = self.sdap.get(rnti)
        if sdap is None:
            raise KeyError(f"unknown RNTI {rnti}")
        return sdap.deliver(packet, self.clock.now)

    def rlc_of(self, rnti: int, bearer_id: int = 1) -> RlcEntity:
        return self.mac.rlc_of(rnti, bearer_id)

    # -- SM providers --------------------------------------------------------

    def mac_stats_provider(self, visible) -> dict:
        return self.mac.mac_stats_tree(visible, self.clock.now * 1000.0)

    def rlc_stats_provider(self, visible) -> dict:
        return self.mac.rlc_stats_tree(visible, self.clock.now)

    def pdcp_stats_provider(self, visible) -> dict:
        bearers = []
        for (rnti, bearer_id), entity in sorted(self.pdcp.items()):
            if visible is not None and rnti not in visible:
                continue
            bearers.append(
                {
                    "rnti": rnti,
                    "bearer_id": bearer_id,
                    "tx_pkts": entity.tx_pkts,
                    "tx_bytes": entity.tx_bytes,
                    "rx_pkts": entity.rx_pkts,
                    "rx_bytes": entity.rx_bytes,
                }
            )
        return {"bearers": bearers, "tstamp_ms": self.clock.now * 1000.0}


# ---------------------------------------------------------------------------
# Agent integration
# ---------------------------------------------------------------------------

#: Standard function bundles per node kind (Fig. 3 vs disaggregation).
_MONOLITHIC_FUNCTIONS = ("mac", "rlc", "pdcp", "rrc", "slice", "tc")
_DU_FUNCTIONS = ("mac", "rlc", "slice")
_CU_FUNCTIONS = ("pdcp", "rrc", "tc")


def build_functions(
    bs: BaseStation,
    which: Tuple[str, ...],
    sm_codec: str = "fb",
    use_clock: bool = True,
) -> list:
    """Instantiate the requested standard RAN functions wired to ``bs``."""
    clock = bs.clock if use_clock else None
    functions = []
    for name in which:
        if name == "mac":
            functions.append(
                MacStatsFunction(provider=bs.mac_stats_provider, sm_codec=sm_codec, clock=clock)
            )
        elif name == "rlc":
            functions.append(
                RlcStatsFunction(provider=bs.rlc_stats_provider, sm_codec=sm_codec, clock=clock)
            )
        elif name == "pdcp":
            functions.append(
                PdcpStatsFunction(provider=bs.pdcp_stats_provider, sm_codec=sm_codec, clock=clock)
            )
        elif name == "rrc":
            rrc = RrcConfFunction(sm_codec=sm_codec)
            rrc.mobility = bs.request_handover
            bs.on_rrc_event(
                lambda event, rnti, plmn, snssai, fn=rrc: (
                    fn.notify_attach(rnti, plmn, snssai, bs.clock.now * 1000.0)
                    if event == "attach"
                    else fn.notify_detach(rnti, plmn, snssai, bs.clock.now * 1000.0)
                )
            )
            functions.append(rrc)
        elif name == "slice":
            functions.append(SliceCtrlFunction(api=bs.mac, sm_codec=sm_codec, clock=clock))
        elif name == "tc":
            functions.append(
                TrafficCtrlFunction(pipelines=lambda: bs.tc, sm_codec=sm_codec, clock=clock)
            )
        else:
            raise ValueError(f"unknown standard function {name!r}")
    return functions


def attach_agent(
    bs: BaseStation,
    transport: Transport,
    node_id: Optional[GlobalE2NodeId] = None,
    which: Tuple[str, ...] = _MONOLITHIC_FUNCTIONS,
    e2ap_codec: str = "fb",
    sm_codec: str = "fb",
    cpu_meter: Optional[CpuMeter] = None,
) -> Agent:
    """Create an agent for ``bs`` with the standard function bundle.

    UE attach/detach events keep the agent's UE-to-controller map in
    sync; additional-controller association stays manual (§4.1.2).
    """
    agent = Agent(
        AgentConfig(node_id=node_id or bs.config.node_id, e2ap_codec=e2ap_codec),
        transport=transport,
        cpu_meter=cpu_meter,
    )
    for function in build_functions(bs, which, sm_codec=sm_codec):
        agent.register_function(function)
        function.visibility = agent.ue_map.visible_ues

    def track_ue(event: str, rnti: int, plmn: str, snssai: int) -> None:
        if event == "attach":
            agent.ue_map.ue_attached(rnti)
        else:
            agent.ue_map.ue_detached(rnti)

    bs.on_rrc_event(track_ue)
    for rnti in bs.mac.ues:
        agent.ue_map.ue_attached(rnti)
    return agent


# ---------------------------------------------------------------------------
# Disaggregation views
# ---------------------------------------------------------------------------


@dataclass
class CuNode:
    """CU view of a split base station (PDCP/SDAP/RRC side)."""

    bs: BaseStation

    @property
    def node_id(self) -> GlobalE2NodeId:
        return GlobalE2NodeId(
            plmn=self.bs.config.plmn, nb_id=self.bs.config.nb_id, kind=NodeKind.CU
        )

    def attach_agent(self, transport: Transport, **kwargs) -> Agent:
        return attach_agent(
            self.bs, transport, node_id=self.node_id, which=_CU_FUNCTIONS, **kwargs
        )


@dataclass
class DuNode:
    """DU view of a split base station (MAC/RLC/PHY side)."""

    bs: BaseStation

    @property
    def node_id(self) -> GlobalE2NodeId:
        return GlobalE2NodeId(
            plmn=self.bs.config.plmn, nb_id=self.bs.config.nb_id, kind=NodeKind.DU
        )

    def attach_agent(self, transport: Transport, **kwargs) -> Agent:
        return attach_agent(
            self.bs, transport, node_id=self.node_id, which=_DU_FUNCTIONS, **kwargs
        )


def split_base_station(bs: BaseStation) -> Tuple[CuNode, DuNode]:
    """Expose one base station as separate CU and DU E2 nodes.

    The user plane stays shared (the F1 interface is a function call in
    this model); what splits is the E2 exposure: each node advertises
    only the RAN functions of its layers, and the server's RANDB merges
    the two agents back into one RAN entity (§4.2.2).
    """
    return CuNode(bs), DuNode(bs)
