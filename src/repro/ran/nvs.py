"""NVS: a substrate for virtualizing wireless resources (Kokku et al.).

The slice scheduler the paper employs for both the slicing controller
(§6.1.2) and the recursive virtualization layer (§6.2, Appendix B).
NVS defines

* **capacity slices** with a resource share ``c_s``, and
* **rate slices** with a reserved rate ``r_rsv`` over a reference rate
  ``r_ref`` (share ``r_rsv / r_ref``),

admits slices while ``sum(c_s) + sum(r_rsv/r_ref) <= 1``, and at each
scheduling slot picks the slice with the largest ratio of *entitled*
share to *received* share (exponentially weighted).  Backlog-aware
selection yields NVS's hallmark: strict isolation when everyone is
loaded, work-conserving sharing when someone is idle (Fig. 13b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class SliceKind(Enum):
    CAPACITY = "capacity"
    RATE = "rate"


@dataclass
class NvsSliceConfig:
    """RAN-side NVS slice parameters (mirrors the SC SM schema)."""

    slice_id: int
    kind: SliceKind = SliceKind.CAPACITY
    cap: float = 0.0            # capacity slices: share of resources
    rate_mbps: float = 0.0      # rate slices: reserved rate
    ref_mbps: float = 0.0       # rate slices: reference rate
    label: str = ""
    ue_scheduler: str = "pf"

    @property
    def share(self) -> float:
        """Resource fraction this slice consumes for admission."""
        if self.kind is SliceKind.CAPACITY:
            return self.cap
        if self.ref_mbps <= 0.0:
            raise ValueError(f"rate slice {self.slice_id} needs ref_mbps > 0")
        return self.rate_mbps / self.ref_mbps

    def validate(self) -> None:
        if self.kind is SliceKind.CAPACITY:
            if not 0.0 < self.cap <= 1.0:
                raise ValueError(f"capacity share out of (0,1]: {self.cap}")
        else:
            if self.rate_mbps <= 0.0:
                raise ValueError(f"non-positive reserved rate: {self.rate_mbps}")
            if self.ref_mbps < self.rate_mbps:
                raise ValueError(
                    f"reference rate {self.ref_mbps} below reserved {self.rate_mbps}"
                )


@dataclass
class _SliceState:
    config: NvsSliceConfig
    exp_share: float = 0.0      # EWMA of received slot fraction
    exp_rate_mbps: float = 0.0  # EWMA of achieved rate (rate slices)
    slots_served: int = 0


class NvsScheduler:
    """Slot-by-slot NVS slice selection with admission control.

    ``beta`` is the EWMA smoothing factor; the small epsilon floor in
    the weight computation implements NVS's bootstrap (a slice that has
    never been served has infinite priority).
    """

    _EPSILON = 1e-9

    def __init__(self, beta: float = 0.01) -> None:
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta out of (0,1]: {beta}")
        self.beta = beta
        self._slices: Dict[int, _SliceState] = {}

    # -- admission -----------------------------------------------------

    def total_share(self, excluding: Optional[int] = None) -> float:
        return sum(
            state.config.share
            for slice_id, state in self._slices.items()
            if slice_id != excluding
        )

    def add_slice(self, config: NvsSliceConfig) -> None:
        """Admit a slice; raises ``ValueError`` if shares would exceed 1.

        Re-adding an existing slice id reconfigures it, subject to the
        same admission check.
        """
        config.validate()
        if self.total_share(excluding=config.slice_id) + config.share > 1.0 + 1e-9:
            raise ValueError(
                f"admission refused for slice {config.slice_id}: total share "
                f"{self.total_share(excluding=config.slice_id) + config.share:.3f} > 1"
            )
        existing = self._slices.get(config.slice_id)
        if existing is not None:
            existing.config = config
        else:
            self._slices[config.slice_id] = _SliceState(config=config)

    def remove_slice(self, slice_id: int) -> None:
        if slice_id not in self._slices:
            raise KeyError(f"unknown slice {slice_id}")
        del self._slices[slice_id]

    def slice_ids(self) -> List[int]:
        return sorted(self._slices)

    def config_of(self, slice_id: int) -> NvsSliceConfig:
        return self._slices[slice_id].config

    def __contains__(self, slice_id: int) -> bool:
        return slice_id in self._slices

    def __len__(self) -> int:
        return len(self._slices)

    # -- scheduling ------------------------------------------------------

    def pick(self, backlogged: List[int]) -> Optional[int]:
        """Choose the slice to serve this slot.

        ``backlogged`` lists slice ids that currently have traffic; the
        EWMAs of *all* slices decay every slot, so an idle slice's
        entitlement recovers once it becomes active again.
        """
        best_id: Optional[int] = None
        best_weight = -1.0
        eligible = set(backlogged)
        for slice_id, state in self._slices.items():
            if slice_id not in eligible:
                continue
            config = state.config
            if config.kind is SliceKind.CAPACITY:
                weight = config.cap / max(state.exp_share, self._EPSILON)
            else:
                weight = config.rate_mbps / max(state.exp_rate_mbps, self._EPSILON)
            if weight > best_weight:
                best_weight = weight
                best_id = slice_id
        return best_id

    def account(self, served_id: Optional[int], served_mbps: float = 0.0) -> None:
        """Update EWMAs after a slot; ``served_id`` may be None (idle)."""
        for slice_id, state in self._slices.items():
            served = 1.0 if slice_id == served_id else 0.0
            state.exp_share = (1.0 - self.beta) * state.exp_share + self.beta * served
            rate = served_mbps if slice_id == served_id else 0.0
            state.exp_rate_mbps = (
                (1.0 - self.beta) * state.exp_rate_mbps + self.beta * rate
            )
            if slice_id == served_id:
                state.slots_served += 1

    def snapshot(self) -> List[dict]:
        """Current config and scheduling state per slice."""
        return [
            {
                "slice_id": slice_id,
                "kind": state.config.kind.value,
                "share": state.config.share,
                "label": state.config.label,
                "exp_share": state.exp_share,
                "exp_rate_mbps": state.exp_rate_mbps,
                "slots_served": state.slots_served,
            }
            for slice_id, state in sorted(self._slices.items())
        ]
