"""E2AP intermediate representation (§4.3).

The E2 Application Protocol carries management procedures between an E2
node (agent) and the RIC (server), and encapsulates service-model
payloads.  FlexRIC models every procedure "without loss of information
and independent of any particular encoding/decoding algorithms"; this
package is that model:

* :mod:`repro.core.e2ap.procedures` — procedure codes, message classes
  and cause values,
* :mod:`repro.core.e2ap.ies` — reusable information elements,
* :mod:`repro.core.e2ap.messages` — one dataclass per E2AP message and
  the codec-agnostic ``encode_message`` / ``decode_message`` entry
  points (including the zero-copy ``peek_*`` helpers used on the
  indication hot path).
"""

from repro.core.e2ap.procedures import (
    Cause,
    CauseKind,
    Criticality,
    MessageClass,
    ProcedureCode,
)
from repro.core.e2ap.ies import (
    GlobalE2NodeId,
    NodeKind,
    RanFunctionItem,
    RicActionDefinition,
    RicActionKind,
    RicRequestId,
)
from repro.core.e2ap.messages import (
    E2Message,
    E2SetupRequest,
    E2SetupResponse,
    E2SetupFailure,
    ResetRequest,
    ResetResponse,
    ErrorIndication,
    RicServiceQuery,
    RicServiceUpdate,
    RicServiceUpdateAcknowledge,
    RicServiceUpdateFailure,
    E2NodeConfigurationUpdate,
    E2NodeConfigurationUpdateAcknowledge,
    E2NodeConfigurationUpdateFailure,
    E2ConnectionUpdate,
    E2ConnectionUpdateAcknowledge,
    E2ConnectionUpdateFailure,
    RicSubscriptionRequest,
    RicSubscriptionResponse,
    RicSubscriptionFailure,
    RicSubscriptionDeleteRequest,
    RicSubscriptionDeleteResponse,
    RicSubscriptionDeleteFailure,
    RicIndication,
    RicIndicationKind,
    RicControlRequest,
    RicControlAcknowledge,
    RicControlFailure,
    decode_message,
    encode_message,
    message_types,
    peek_indication_keys,
    peek_procedure,
)

__all__ = [
    "Cause",
    "CauseKind",
    "Criticality",
    "MessageClass",
    "ProcedureCode",
    "GlobalE2NodeId",
    "NodeKind",
    "RanFunctionItem",
    "RicActionDefinition",
    "RicActionKind",
    "RicRequestId",
    "E2Message",
    "E2SetupRequest",
    "E2SetupResponse",
    "E2SetupFailure",
    "ResetRequest",
    "ResetResponse",
    "ErrorIndication",
    "RicServiceQuery",
    "RicServiceUpdate",
    "RicServiceUpdateAcknowledge",
    "RicServiceUpdateFailure",
    "E2NodeConfigurationUpdate",
    "E2NodeConfigurationUpdateAcknowledge",
    "E2NodeConfigurationUpdateFailure",
    "E2ConnectionUpdate",
    "E2ConnectionUpdateAcknowledge",
    "E2ConnectionUpdateFailure",
    "RicSubscriptionRequest",
    "RicSubscriptionResponse",
    "RicSubscriptionFailure",
    "RicSubscriptionDeleteRequest",
    "RicSubscriptionDeleteResponse",
    "RicSubscriptionDeleteFailure",
    "RicIndication",
    "RicIndicationKind",
    "RicControlRequest",
    "RicControlAcknowledge",
    "RicControlFailure",
    "decode_message",
    "encode_message",
    "message_types",
    "peek_indication_keys",
    "peek_procedure",
]
