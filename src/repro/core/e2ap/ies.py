"""E2AP information elements shared across messages.

Each IE lowers to the generic value tree via ``to_value`` and rebuilds
via ``from_value``; short single-letter keys keep the PER-style wire
size close to a schema-driven encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Mapping


class NodeKind(IntEnum):
    """What kind of E2 node an agent fronts (disaggregation, §4.1.1)."""

    ENB = 0     # monolithic 4G
    GNB = 1     # monolithic 5G
    CU = 2      # centralized unit
    DU = 3      # distributed unit
    CU_CP = 4   # CU control plane
    CU_UP = 5   # CU user plane


@dataclass(frozen=True)
class GlobalE2NodeId:
    """Identity of an E2 node.

    ``plmn`` is the public land mobile network the node serves (e.g.
    ``"00101"``); ``nb_id`` identifies the base station; for
    disaggregated deployments ``nb_id`` is shared between the CU and DU
    parts of one logical base station, which is what lets the server's
    RAN management merge them into one RAN entity (§4.2.2).
    """

    plmn: str
    nb_id: int
    kind: NodeKind = NodeKind.GNB

    def to_value(self) -> dict:
        return {"p": self.plmn, "n": self.nb_id, "k": int(self.kind)}

    @classmethod
    def from_value(cls, value: Mapping) -> "GlobalE2NodeId":
        return cls(plmn=value["p"], nb_id=value["n"], kind=NodeKind(value["k"]))

    @property
    def label(self) -> str:
        return f"{self.plmn}/{self.nb_id}/{self.kind.name}"


@dataclass(frozen=True)
class RanFunctionItem:
    """Descriptor of one RAN function exposed by an E2 node.

    ``definition`` carries the service-model self-description (already
    SM-encoded bytes — the double-encoding structure of E2), ``oid`` the
    service-model object identifier used by controllers to recognize
    functions they understand.
    """

    ran_function_id: int
    definition: bytes
    revision: int = 1
    oid: str = ""

    def to_value(self) -> dict:
        return {
            "i": self.ran_function_id,
            "d": self.definition,
            "r": self.revision,
            "o": self.oid,
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "RanFunctionItem":
        return cls(
            ran_function_id=value["i"],
            definition=value["d"],
            revision=value["r"],
            oid=value["o"],
        )


@dataclass(frozen=True)
class RicRequestId:
    """Identifies a subscription/control transaction.

    ``requestor_id`` names the requesting application within the
    controller; ``instance_id`` disambiguates parallel requests from
    the same requestor.
    """

    requestor_id: int
    instance_id: int

    def to_value(self) -> dict:
        return {"r": self.requestor_id, "i": self.instance_id}

    @classmethod
    def from_value(cls, value: Mapping) -> "RicRequestId":
        return cls(requestor_id=value["r"], instance_id=value["i"])

    def as_tuple(self) -> tuple:
        return (self.requestor_id, self.instance_id)


class RicActionKind(IntEnum):
    """The four E2SM service kinds (Appendix A.3)."""

    REPORT = 0
    INSERT = 1
    CONTROL = 2
    POLICY = 3


@dataclass(frozen=True)
class RicActionDefinition:
    """One action requested within a subscription.

    ``definition`` is SM-encoded bytes describing what to report or
    which policy to install; ``subsequent`` indicates whether the RAN
    should continue after an insert (wait/continue semantics).
    """

    action_id: int
    kind: RicActionKind
    definition: bytes = b""
    subsequent: bool = True

    def to_value(self) -> dict:
        return {
            "a": self.action_id,
            "k": int(self.kind),
            "d": self.definition,
            "s": self.subsequent,
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "RicActionDefinition":
        return cls(
            action_id=value["a"],
            kind=RicActionKind(value["k"]),
            definition=value["d"],
            subsequent=value["s"],
        )


@dataclass(frozen=True)
class RicActionAdmitted:
    """Outcome entry for an admitted action."""

    action_id: int

    def to_value(self) -> dict:
        return {"a": self.action_id}

    @classmethod
    def from_value(cls, value: Mapping) -> "RicActionAdmitted":
        return cls(action_id=value["a"])


@dataclass(frozen=True)
class RicActionNotAdmitted:
    """Outcome entry for a rejected action, with the rejection cause."""

    action_id: int
    cause_kind: int
    cause_value: int

    def to_value(self) -> dict:
        return {"a": self.action_id, "k": self.cause_kind, "v": self.cause_value}

    @classmethod
    def from_value(cls, value: Mapping) -> "RicActionNotAdmitted":
        return cls(action_id=value["a"], cause_kind=value["k"], cause_value=value["v"])


@dataclass(frozen=True)
class TnlInformation:
    """Transport-network-layer endpoint for E2 connection updates."""

    address: str
    port: int

    def to_value(self) -> dict:
        return {"a": self.address, "p": self.port}

    @classmethod
    def from_value(cls, value: Mapping) -> "TnlInformation":
        return cls(address=value["a"], port=value["p"])


def functions_to_value(items: List[RanFunctionItem]) -> list:
    return [item.to_value() for item in items]


def functions_from_value(value) -> List[RanFunctionItem]:
    return [RanFunctionItem.from_value(item) for item in value]
