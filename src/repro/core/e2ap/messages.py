"""E2AP message intermediate representation.

One frozen dataclass per E2AP message, each lowering to the generic
value tree consumed by the codecs.  The paper implements "the most
common 20 out of 26 E2AP messages" (§4.3); this module covers the full
set of setup, reset, error-indication, service-update, configuration-
update, connection-update, subscription, indication and control
procedures — 25 concrete messages.

Message framing on the wire is ``{"p": procedure, "c": class, "v":
payload}``, so the receiver can dispatch on two small integers before
touching the payload (with the FlatBuffers-style codec that dispatch is
a zero-copy read — see :func:`peek_procedure`).

Service-model payloads appear as ``bytes`` fields, already encoded by
the SM codec: E2's *double encoding* (§5.2).  The inner codec is chosen
independently of the outer one, reproducing the four combinations
benchmarked in Fig. 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

from repro.core.codec import base
from repro.core.codec.base import Codec, CodecError
from repro.metrics import counters
from repro.metrics.trace import TRACER as _TRACER
from repro.core.e2ap.ies import (
    GlobalE2NodeId,
    RanFunctionItem,
    RicActionAdmitted,
    RicActionDefinition,
    RicActionNotAdmitted,
    TnlInformation,
    functions_from_value,
    functions_to_value,
)
from repro.core.e2ap.procedures import Cause, MessageClass, ProcedureCode

_MESSAGE_TYPES: Dict[Tuple[int, int], Type["E2Message"]] = {}


def register_message(cls: Type["E2Message"]) -> Type["E2Message"]:
    """Class decorator adding ``cls`` to the dispatch registry."""
    key = (int(cls.procedure), int(cls.msg_class))
    if key in _MESSAGE_TYPES:
        raise ValueError(f"duplicate E2AP message registration: {key}")
    _MESSAGE_TYPES[key] = cls
    return cls


def message_types() -> Dict[Tuple[int, int], Type["E2Message"]]:
    """A copy of the (procedure, class) -> dataclass registry."""
    return dict(_MESSAGE_TYPES)


class E2Message:
    """Base for all E2AP messages.

    Subclasses define ``procedure``/``msg_class`` class attributes and
    implement ``to_value``/``from_value``.  ``encode_cacheable``
    marks messages whose full encodings repeat verbatim (setup,
    subscription and control traffic); :class:`RicIndication` opts out
    because its monotonic sequence number makes a full-message cache
    hit impossible while hashing its payload would tax the hot path.
    """

    procedure: ProcedureCode
    msg_class: MessageClass
    encode_cacheable = True

    def to_value(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_value(cls, value: Mapping) -> "E2Message":
        raise NotImplementedError


# -- encode cache ----------------------------------------------------

#: LRU of full message encodings: (codec name, frozen message key) →
#: wire bytes.  Control loops and subscription management re-send
#: byte-identical messages constantly (every ping of Fig. 7 repeats
#: the same control request); returning the cached immutable ``bytes``
#: is safe because nothing downstream mutates wire buffers.
_ENCODE_CACHE: Dict[Tuple, bytes] = {}
_ENCODE_CACHE_MAX = 512
_encode_cache_version = -1  # codec registry version the cache is valid for

_cache_hits = counters.get_counter("e2ap.encode_cache.hits")
_cache_misses = counters.get_counter("e2ap.encode_cache.misses")
#: every E2AP message serialization request (cache hits included) —
#: the denominator-free basis of the fan-out encode-reuse gate:
#: delivered indications per encode call (DESIGN.md §15).
_encode_calls = counters.get_counter("e2ap.encode.messages")

#: Message types whose instances are not hashable (list fields);
#: their cache key is built by :func:`_freeze` instead.
_UNHASHABLE_TYPES: Dict[type, bool] = {}


def _freeze(value: Any) -> Any:
    """Recursively turn a message field into a hashable key part.

    Dict order is preserved: it determines wire order, so two messages
    whose dicts differ only in insertion order must not share a key.
    """
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return ("{}",) + tuple(
            (key, _freeze(item)) for key, item in value.items()
        )
    if hasattr(value, "__dataclass_fields__"):
        return (type(value).__name__,) + tuple(
            _freeze(getattr(value, name)) for name in value.__dataclass_fields__
        )
    return value


def _message_key(msg: E2Message) -> Tuple:
    cls = type(msg)
    if not _UNHASHABLE_TYPES.get(cls, False):
        try:
            hash(msg)
            return (cls, msg)
        except TypeError:
            _UNHASHABLE_TYPES[cls] = True
    return (cls,) + tuple(
        _freeze(getattr(msg, name)) for name in msg.__dataclass_fields__  # type: ignore[attr-defined]
    )


def encode_cache_stats() -> Tuple[int, int]:
    """(hits, misses) of the message encode cache."""
    return _cache_hits.value, _cache_misses.value


def clear_encode_cache() -> None:
    """Drop all cached encodings (tests, codec swaps)."""
    _ENCODE_CACHE.clear()


def encode_message(msg: E2Message, codec: Codec) -> bytes:
    """Serialize an E2AP message with the given outer codec.

    Cacheable messages (see :class:`E2Message`) are served from an LRU
    keyed on the codec name and the frozen message; the cache is
    invalidated wholesale when the codec registry changes, so swapping
    an implementation under the same name can never serve stale bytes.

    With tracing enabled an ``encode`` span is recorded, correlated on
    the message's RIC request id (when it has one) so the span
    stitches to the matching transport/decode/dispatch spans; the
    correlation is also noted for the transport send that follows.
    """
    tracer = _TRACER
    if tracer.enabled:
        start = time.perf_counter()
        wire = _encode_message(msg, codec)
        request = getattr(msg, "request", None)
        corr = request.as_tuple() if request is not None else None
        tracer.note_corr(corr)
        tracer.record("encode", start, corr, procedure=msg.procedure.name.lower())
        return wire
    return _encode_message(msg, codec)


def _encode_message(msg: E2Message, codec: Codec) -> bytes:
    global _encode_cache_version
    _encode_calls.incr()
    if msg.encode_cacheable:
        version = base.registry_version()
        if version != _encode_cache_version:
            _ENCODE_CACHE.clear()
            _encode_cache_version = version
        cache = _ENCODE_CACHE
        key = (codec.name,) + _message_key(msg)
        wire = cache.pop(key, None)
        if wire is not None:
            cache[key] = wire  # move to most-recent position
            _cache_hits.incr()
            return wire
        _cache_misses.incr()
        tree = {"p": int(msg.procedure), "c": int(msg.msg_class), "v": msg.to_value()}
        wire = _encode_tree(msg, codec, tree)
        if len(cache) >= _ENCODE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[key] = wire
        return wire
    tree = {"p": int(msg.procedure), "c": int(msg.msg_class), "v": msg.to_value()}
    return _encode_tree(msg, codec, tree)


def _encode_tree(msg: E2Message, codec: Codec, tree: dict) -> bytes:
    try:
        return codec.encode(tree)
    except CodecError as exc:
        raise exc.with_context(message_type=type(msg).__name__)


def decode_message(data: bytes, codec: Codec) -> E2Message:
    """Deserialize into the concrete message dataclass.

    With tracing enabled a ``decode`` span is recorded, correlated the
    same way as :func:`encode_message`.
    """
    tracer = _TRACER
    if tracer.enabled:
        start = time.perf_counter()
        msg = _decode_message(data, codec)
        request = getattr(msg, "request", None)
        tracer.record(
            "decode",
            start,
            request.as_tuple() if request is not None else None,
            procedure=msg.procedure.name.lower(),
        )
        return msg
    return _decode_message(data, codec)


def _decode_message(data: bytes, codec: Codec) -> E2Message:
    try:
        tree = codec.decode(data)
    except CodecError as exc:
        raise exc.with_context(message_type="E2AP envelope")
    try:
        key = (tree["p"], tree["c"])
    except (KeyError, TypeError) as exc:
        raise CodecError(
            f"E2AP envelope missing dispatch header: {exc}",
            message_type="E2AP envelope",
            field="p/c",
        ) from exc
    try:
        cls = _MESSAGE_TYPES[key]
    except KeyError:
        raise CodecError(
            f"unknown E2AP message key {key}",
            message_type="E2AP envelope",
            field="p/c",
        ) from None
    try:
        return cls.from_value(tree["v"])
    except CodecError as exc:
        raise exc.with_context(message_type=cls.__name__)
    except KeyError as exc:
        raise CodecError(
            f"missing field in {cls.__name__} body: {exc}",
            message_type=cls.__name__,
            field=str(exc.args[0]) if exc.args else None,
        ) from exc


def peek_procedure(data: bytes, codec: Codec) -> Tuple[ProcedureCode, MessageClass]:
    """Read only the dispatch header.

    With the lazy FlatBuffers-style codec this touches two scalar
    fields of the root table and never walks the payload — the access
    pattern that gives the server its 4x CPU advantage on the
    indication path (§5.3).
    """
    tree = codec.decode(data)
    return ProcedureCode(tree["p"]), MessageClass(tree["c"])


def peek_indication_keys(data: bytes, codec: Codec) -> Tuple[int, int, int]:
    """Read (requestor_id, instance_id, ran_function_id) of an
    indication without materializing its payload.

    Raises :class:`CodecError` if the message is not an indication.
    """
    tree = codec.decode(data)
    if tree["p"] != int(ProcedureCode.RIC_INDICATION):
        raise CodecError("not a RIC indication")
    body = tree["v"]
    request = body["q"]
    return request["r"], request["i"], body["f"]


# ---------------------------------------------------------------------------
# Global procedures
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class E2SetupRequest(E2Message):
    """Agent -> RIC: announce the node and its RAN functions."""

    procedure = ProcedureCode.E2_SETUP
    msg_class = MessageClass.INITIATING

    node_id: GlobalE2NodeId
    ran_functions: List[RanFunctionItem] = field(default_factory=list)

    def to_value(self) -> dict:
        return {"n": self.node_id.to_value(), "f": functions_to_value(self.ran_functions)}

    @classmethod
    def from_value(cls, value: Mapping) -> "E2SetupRequest":
        return cls(
            node_id=GlobalE2NodeId.from_value(value["n"]),
            ran_functions=functions_from_value(value["f"]),
        )


@register_message
@dataclass(frozen=True)
class E2SetupResponse(E2Message):
    """RIC -> agent: setup accepted; lists accepted/rejected functions."""

    procedure = ProcedureCode.E2_SETUP
    msg_class = MessageClass.SUCCESSFUL

    ric_id: int
    accepted_functions: List[int] = field(default_factory=list)
    rejected_functions: List[int] = field(default_factory=list)

    def to_value(self) -> dict:
        return {
            "r": self.ric_id,
            "a": list(self.accepted_functions),
            "j": list(self.rejected_functions),
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "E2SetupResponse":
        return cls(
            ric_id=value["r"],
            accepted_functions=list(value["a"]),
            rejected_functions=list(value["j"]),
        )


@register_message
@dataclass(frozen=True)
class E2SetupFailure(E2Message):
    """RIC -> agent: setup refused."""

    procedure = ProcedureCode.E2_SETUP
    msg_class = MessageClass.UNSUCCESSFUL

    cause: Cause
    time_to_wait_s: float = 0.0

    def to_value(self) -> dict:
        return {"c": self.cause.to_value(), "t": self.time_to_wait_s}

    @classmethod
    def from_value(cls, value: Mapping) -> "E2SetupFailure":
        return cls(cause=Cause.from_value(value["c"]), time_to_wait_s=value["t"])


@register_message
@dataclass(frozen=True)
class ResetRequest(E2Message):
    """Either side: drop all transaction state."""

    procedure = ProcedureCode.RESET
    msg_class = MessageClass.INITIATING

    cause: Cause

    def to_value(self) -> dict:
        return {"c": self.cause.to_value()}

    @classmethod
    def from_value(cls, value: Mapping) -> "ResetRequest":
        return cls(cause=Cause.from_value(value["c"]))


@register_message
@dataclass(frozen=True)
class ResetResponse(E2Message):
    """Acknowledge a reset."""

    procedure = ProcedureCode.RESET
    msg_class = MessageClass.SUCCESSFUL

    def to_value(self) -> dict:
        return {}

    @classmethod
    def from_value(cls, value: Mapping) -> "ResetResponse":
        return cls()


@register_message
@dataclass(frozen=True)
class ErrorIndication(E2Message):
    """Either side: report a protocol-level problem."""

    procedure = ProcedureCode.ERROR_INDICATION
    msg_class = MessageClass.INITIATING

    cause: Cause
    ran_function_id: Optional[int] = None

    def to_value(self) -> dict:
        return {"c": self.cause.to_value(), "f": self.ran_function_id}

    @classmethod
    def from_value(cls, value: Mapping) -> "ErrorIndication":
        return cls(cause=Cause.from_value(value["c"]), ran_function_id=value["f"])


@register_message
@dataclass(frozen=True)
class RicServiceQuery(E2Message):
    """RIC -> agent: ask for the current RAN function inventory.

    The E2 node answers with a RIC service update listing every
    function it hosts (used by a controller to resynchronize after a
    restart without tearing the connection down).
    """

    procedure = ProcedureCode.RIC_SERVICE_QUERY
    msg_class = MessageClass.INITIATING

    #: function ids the RIC already knows (the agent may diff against
    #: these; an empty list requests the full inventory).
    known_functions: List[int] = field(default_factory=list)

    def to_value(self) -> dict:
        return {"k": list(self.known_functions)}

    @classmethod
    def from_value(cls, value: Mapping) -> "RicServiceQuery":
        return cls(known_functions=list(value["k"]))


@register_message
@dataclass(frozen=True)
class RicServiceUpdate(E2Message):
    """Agent -> RIC: RAN functions added/modified/removed at runtime."""

    procedure = ProcedureCode.RIC_SERVICE_UPDATE
    msg_class = MessageClass.INITIATING

    added: List[RanFunctionItem] = field(default_factory=list)
    modified: List[RanFunctionItem] = field(default_factory=list)
    removed: List[int] = field(default_factory=list)

    def to_value(self) -> dict:
        return {
            "a": functions_to_value(self.added),
            "m": functions_to_value(self.modified),
            "r": list(self.removed),
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "RicServiceUpdate":
        return cls(
            added=functions_from_value(value["a"]),
            modified=functions_from_value(value["m"]),
            removed=list(value["r"]),
        )


@register_message
@dataclass(frozen=True)
class RicServiceUpdateAcknowledge(E2Message):
    procedure = ProcedureCode.RIC_SERVICE_UPDATE
    msg_class = MessageClass.SUCCESSFUL

    accepted: List[int] = field(default_factory=list)
    rejected: List[int] = field(default_factory=list)

    def to_value(self) -> dict:
        return {"a": list(self.accepted), "r": list(self.rejected)}

    @classmethod
    def from_value(cls, value: Mapping) -> "RicServiceUpdateAcknowledge":
        return cls(accepted=list(value["a"]), rejected=list(value["r"]))


@register_message
@dataclass(frozen=True)
class RicServiceUpdateFailure(E2Message):
    procedure = ProcedureCode.RIC_SERVICE_UPDATE
    msg_class = MessageClass.UNSUCCESSFUL

    cause: Cause

    def to_value(self) -> dict:
        return {"c": self.cause.to_value()}

    @classmethod
    def from_value(cls, value: Mapping) -> "RicServiceUpdateFailure":
        return cls(cause=Cause.from_value(value["c"]))


@register_message
@dataclass(frozen=True)
class E2NodeConfigurationUpdate(E2Message):
    """Agent -> RIC: node-level configuration changed."""

    procedure = ProcedureCode.E2_NODE_CONFIGURATION_UPDATE
    msg_class = MessageClass.INITIATING

    node_id: GlobalE2NodeId
    config: Dict[str, str] = field(default_factory=dict)

    def to_value(self) -> dict:
        return {"n": self.node_id.to_value(), "c": dict(self.config)}

    @classmethod
    def from_value(cls, value: Mapping) -> "E2NodeConfigurationUpdate":
        raw = value["c"]
        config = {key: raw[key] for key in raw.keys()} if hasattr(raw, "keys") else dict(raw)
        return cls(node_id=GlobalE2NodeId.from_value(value["n"]), config=config)


@register_message
@dataclass(frozen=True)
class E2NodeConfigurationUpdateAcknowledge(E2Message):
    procedure = ProcedureCode.E2_NODE_CONFIGURATION_UPDATE
    msg_class = MessageClass.SUCCESSFUL

    def to_value(self) -> dict:
        return {}

    @classmethod
    def from_value(cls, value: Mapping) -> "E2NodeConfigurationUpdateAcknowledge":
        return cls()


@register_message
@dataclass(frozen=True)
class E2NodeConfigurationUpdateFailure(E2Message):
    procedure = ProcedureCode.E2_NODE_CONFIGURATION_UPDATE
    msg_class = MessageClass.UNSUCCESSFUL

    cause: Cause

    def to_value(self) -> dict:
        return {"c": self.cause.to_value()}

    @classmethod
    def from_value(cls, value: Mapping) -> "E2NodeConfigurationUpdateFailure":
        return cls(cause=Cause.from_value(value["c"]))


@register_message
@dataclass(frozen=True)
class E2ConnectionUpdate(E2Message):
    """RIC -> agent: endpoints the agent should (dis)connect to.

    Used by the multi-controller machinery (§4.1.2) to attach an agent
    to an additional controller at runtime.
    """

    procedure = ProcedureCode.E2_CONNECTION_UPDATE
    msg_class = MessageClass.INITIATING

    add: List[TnlInformation] = field(default_factory=list)
    remove: List[TnlInformation] = field(default_factory=list)

    def to_value(self) -> dict:
        return {
            "a": [item.to_value() for item in self.add],
            "r": [item.to_value() for item in self.remove],
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "E2ConnectionUpdate":
        return cls(
            add=[TnlInformation.from_value(item) for item in value["a"]],
            remove=[TnlInformation.from_value(item) for item in value["r"]],
        )


@register_message
@dataclass(frozen=True)
class E2ConnectionUpdateAcknowledge(E2Message):
    procedure = ProcedureCode.E2_CONNECTION_UPDATE
    msg_class = MessageClass.SUCCESSFUL

    connected: List[TnlInformation] = field(default_factory=list)

    def to_value(self) -> dict:
        return {"c": [item.to_value() for item in self.connected]}

    @classmethod
    def from_value(cls, value: Mapping) -> "E2ConnectionUpdateAcknowledge":
        return cls(connected=[TnlInformation.from_value(item) for item in value["c"]])


@register_message
@dataclass(frozen=True)
class E2ConnectionUpdateFailure(E2Message):
    procedure = ProcedureCode.E2_CONNECTION_UPDATE
    msg_class = MessageClass.UNSUCCESSFUL

    cause: Cause

    def to_value(self) -> dict:
        return {"c": self.cause.to_value()}

    @classmethod
    def from_value(cls, value: Mapping) -> "E2ConnectionUpdateFailure":
        return cls(cause=Cause.from_value(value["c"]))


# ---------------------------------------------------------------------------
# Functional procedures (subscription / indication / control)
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class RicSubscriptionRequest(E2Message):
    """RIC -> agent: subscribe to a RAN function's event trigger."""

    procedure = ProcedureCode.RIC_SUBSCRIPTION
    msg_class = MessageClass.INITIATING

    request: "RicRequestIdValue"
    ran_function_id: int
    event_trigger: bytes = b""
    actions: List[RicActionDefinition] = field(default_factory=list)

    def to_value(self) -> dict:
        return {
            "q": self.request.to_value(),
            "f": self.ran_function_id,
            "t": self.event_trigger,
            "a": [item.to_value() for item in self.actions],
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "RicSubscriptionRequest":
        from repro.core.e2ap.ies import RicRequestId

        return cls(
            request=RicRequestId.from_value(value["q"]),
            ran_function_id=value["f"],
            event_trigger=value["t"],
            actions=[RicActionDefinition.from_value(item) for item in value["a"]],
        )


@register_message
@dataclass(frozen=True)
class RicSubscriptionResponse(E2Message):
    procedure = ProcedureCode.RIC_SUBSCRIPTION
    msg_class = MessageClass.SUCCESSFUL

    request: "RicRequestIdValue"
    ran_function_id: int
    admitted: List[RicActionAdmitted] = field(default_factory=list)
    not_admitted: List[RicActionNotAdmitted] = field(default_factory=list)

    def to_value(self) -> dict:
        return {
            "q": self.request.to_value(),
            "f": self.ran_function_id,
            "a": [item.to_value() for item in self.admitted],
            "n": [item.to_value() for item in self.not_admitted],
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "RicSubscriptionResponse":
        from repro.core.e2ap.ies import RicRequestId

        return cls(
            request=RicRequestId.from_value(value["q"]),
            ran_function_id=value["f"],
            admitted=[RicActionAdmitted.from_value(item) for item in value["a"]],
            not_admitted=[RicActionNotAdmitted.from_value(item) for item in value["n"]],
        )


@register_message
@dataclass(frozen=True)
class RicSubscriptionFailure(E2Message):
    procedure = ProcedureCode.RIC_SUBSCRIPTION
    msg_class = MessageClass.UNSUCCESSFUL

    request: "RicRequestIdValue"
    ran_function_id: int
    cause: Cause

    def to_value(self) -> dict:
        return {
            "q": self.request.to_value(),
            "f": self.ran_function_id,
            "c": self.cause.to_value(),
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "RicSubscriptionFailure":
        from repro.core.e2ap.ies import RicRequestId

        return cls(
            request=RicRequestId.from_value(value["q"]),
            ran_function_id=value["f"],
            cause=Cause.from_value(value["c"]),
        )


@register_message
@dataclass(frozen=True)
class RicSubscriptionDeleteRequest(E2Message):
    procedure = ProcedureCode.RIC_SUBSCRIPTION_DELETE
    msg_class = MessageClass.INITIATING

    request: "RicRequestIdValue"
    ran_function_id: int

    def to_value(self) -> dict:
        return {"q": self.request.to_value(), "f": self.ran_function_id}

    @classmethod
    def from_value(cls, value: Mapping) -> "RicSubscriptionDeleteRequest":
        from repro.core.e2ap.ies import RicRequestId

        return cls(request=RicRequestId.from_value(value["q"]), ran_function_id=value["f"])


@register_message
@dataclass(frozen=True)
class RicSubscriptionDeleteResponse(E2Message):
    procedure = ProcedureCode.RIC_SUBSCRIPTION_DELETE
    msg_class = MessageClass.SUCCESSFUL

    request: "RicRequestIdValue"
    ran_function_id: int

    def to_value(self) -> dict:
        return {"q": self.request.to_value(), "f": self.ran_function_id}

    @classmethod
    def from_value(cls, value: Mapping) -> "RicSubscriptionDeleteResponse":
        from repro.core.e2ap.ies import RicRequestId

        return cls(request=RicRequestId.from_value(value["q"]), ran_function_id=value["f"])


@register_message
@dataclass(frozen=True)
class RicSubscriptionDeleteFailure(E2Message):
    procedure = ProcedureCode.RIC_SUBSCRIPTION_DELETE
    msg_class = MessageClass.UNSUCCESSFUL

    request: "RicRequestIdValue"
    ran_function_id: int
    cause: Cause

    def to_value(self) -> dict:
        return {
            "q": self.request.to_value(),
            "f": self.ran_function_id,
            "c": self.cause.to_value(),
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "RicSubscriptionDeleteFailure":
        from repro.core.e2ap.ies import RicRequestId

        return cls(
            request=RicRequestId.from_value(value["q"]),
            ran_function_id=value["f"],
            cause=Cause.from_value(value["c"]),
        )


class RicIndicationKind(IntEnum):
    """Report vs insert indications (Appendix A.3)."""

    REPORT = 0
    INSERT = 1


@register_message
@dataclass(frozen=True)
class RicIndication(E2Message):
    """Agent -> RIC: SM payload produced by a subscribed action.

    ``payload`` (indication message) and ``header`` are SM-encoded
    bytes; the server dispatches on ``request``/``ran_function_id``
    without opening them (:func:`peek_indication_keys`).
    """

    procedure = ProcedureCode.RIC_INDICATION
    msg_class = MessageClass.INITIATING
    # The sequence number is monotonic, so a full-message cache could
    # never hit; skip the lookup (and the payload hash it would cost).
    encode_cacheable = False

    request: "RicRequestIdValue"
    ran_function_id: int
    action_id: int
    sequence: int
    kind: RicIndicationKind = RicIndicationKind.REPORT
    header: bytes = b""
    payload: bytes = b""

    def to_value(self) -> dict:
        return {
            "q": self.request.to_value(),
            "f": self.ran_function_id,
            "a": self.action_id,
            "s": self.sequence,
            "k": int(self.kind),
            "h": self.header,
            "m": self.payload,
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "RicIndication":
        from repro.core.e2ap.ies import RicRequestId

        return cls(
            request=RicRequestId.from_value(value["q"]),
            ran_function_id=value["f"],
            action_id=value["a"],
            sequence=value["s"],
            kind=RicIndicationKind(value["k"]),
            header=value["h"],
            payload=value["m"],
        )


@register_message
@dataclass(frozen=True)
class RicControlRequest(E2Message):
    """RIC -> agent: execute an SM-defined control action."""

    procedure = ProcedureCode.RIC_CONTROL
    msg_class = MessageClass.INITIATING

    request: "RicRequestIdValue"
    ran_function_id: int
    header: bytes = b""
    payload: bytes = b""
    ack_requested: bool = True

    def to_value(self) -> dict:
        return {
            "q": self.request.to_value(),
            "f": self.ran_function_id,
            "h": self.header,
            "m": self.payload,
            "k": self.ack_requested,
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "RicControlRequest":
        from repro.core.e2ap.ies import RicRequestId

        return cls(
            request=RicRequestId.from_value(value["q"]),
            ran_function_id=value["f"],
            header=value["h"],
            payload=value["m"],
            ack_requested=value["k"],
        )


@register_message
@dataclass(frozen=True)
class RicControlAcknowledge(E2Message):
    procedure = ProcedureCode.RIC_CONTROL
    msg_class = MessageClass.SUCCESSFUL

    request: "RicRequestIdValue"
    ran_function_id: int
    outcome: bytes = b""

    def to_value(self) -> dict:
        return {"q": self.request.to_value(), "f": self.ran_function_id, "o": self.outcome}

    @classmethod
    def from_value(cls, value: Mapping) -> "RicControlAcknowledge":
        from repro.core.e2ap.ies import RicRequestId

        return cls(
            request=RicRequestId.from_value(value["q"]),
            ran_function_id=value["f"],
            outcome=value["o"],
        )


@register_message
@dataclass(frozen=True)
class RicControlFailure(E2Message):
    procedure = ProcedureCode.RIC_CONTROL
    msg_class = MessageClass.UNSUCCESSFUL

    request: "RicRequestIdValue"
    ran_function_id: int
    cause: Cause

    def to_value(self) -> dict:
        return {
            "q": self.request.to_value(),
            "f": self.ran_function_id,
            "c": self.cause.to_value(),
        }

    @classmethod
    def from_value(cls, value: Mapping) -> "RicControlFailure":
        from repro.core.e2ap.ies import RicRequestId

        return cls(
            request=RicRequestId.from_value(value["q"]),
            ran_function_id=value["f"],
            cause=Cause.from_value(value["c"]),
        )


# Forward-reference alias used in annotations above; kept at module end
# so the dataclass definitions stay readable.
from repro.core.e2ap.ies import RicRequestId as RicRequestIdValue  # noqa: E402
