"""E2AP procedure codes, message classes and causes.

Codes follow O-RAN.WG3.E2AP-v01.01 numbering where the specification
assigns one; the split into *initiating*, *successful outcome* and
*unsuccessful outcome* message classes mirrors the ASN.1 ``E2AP-PDU``
choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class ProcedureCode(IntEnum):
    """E2AP elementary procedures (subset numbering from the spec)."""

    E2_SETUP = 1
    ERROR_INDICATION = 2
    RESET = 3
    RIC_CONTROL = 4
    RIC_INDICATION = 5
    RIC_SERVICE_QUERY = 6
    RIC_SERVICE_UPDATE = 7
    RIC_SUBSCRIPTION = 8
    RIC_SUBSCRIPTION_DELETE = 9
    E2_NODE_CONFIGURATION_UPDATE = 10
    E2_CONNECTION_UPDATE = 11


class MessageClass(IntEnum):
    """Position of a message within its elementary procedure."""

    INITIATING = 0
    SUCCESSFUL = 1
    UNSUCCESSFUL = 2


class Criticality(IntEnum):
    """IE criticality as defined by E2AP."""

    REJECT = 0
    IGNORE = 1
    NOTIFY = 2


class CauseKind(IntEnum):
    """Top-level cause categories of the E2AP ``Cause`` choice."""

    RIC_REQUEST = 0
    RIC_SERVICE = 1
    TRANSPORT = 2
    PROTOCOL = 3
    MISC = 4


@dataclass(frozen=True)
class Cause:
    """A (category, value) cause pair plus optional free-text detail."""

    kind: CauseKind
    value: int
    detail: str = ""

    # Well-known cause values used across the SDK.
    RAN_FUNCTION_ID_INVALID = 1
    ACTION_NOT_SUPPORTED = 2
    EXCESSIVE_ACTIONS = 3
    DUPLICATE_ACTION = 4
    FUNCTION_RESOURCE_LIMIT = 5
    REQUEST_ID_UNKNOWN = 6
    CONTROL_MESSAGE_INVALID = 7
    ADMISSION_REFUSED = 8
    UNSPECIFIED = 99

    def to_value(self) -> dict:
        return {"k": int(self.kind), "v": self.value, "d": self.detail}

    @classmethod
    def from_value(cls, value) -> "Cause":
        return cls(kind=CauseKind(value["k"]), value=value["v"], detail=value["d"])

    @classmethod
    def ric_request(cls, value: int, detail: str = "") -> "Cause":
        return cls(CauseKind.RIC_REQUEST, value, detail)

    @classmethod
    def ric_service(cls, value: int, detail: str = "") -> "Cause":
        return cls(CauseKind.RIC_SERVICE, value, detail)

    @classmethod
    def protocol(cls, value: int, detail: str = "") -> "Cause":
        return cls(CauseKind.PROTOCOL, value, detail)
