"""Discrete-event simulation core.

All RAN-side experiments (agent overhead, slicing throughput,
bufferbloat) run on a deterministic event loop: a priority queue of
timestamped events plus a virtual clock in seconds.  TTI-driven layers
(MAC) schedule themselves periodically; traffic generators schedule
packet arrivals; the FlexRIC agent schedules indication emission.

Determinism rules:

* Ties are broken by insertion order (a monotonically increasing
  sequence number), so repeated runs are bit-identical.
* The clock only moves forward; scheduling into the past raises.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, seq)."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when due."""
        self.cancelled = True


class SimClock:
    """Virtual clock with an event queue.

    Example:
        >>> clock = SimClock()
        >>> fired = []
        >>> _ = clock.call_at(1.0, lambda: fired.append(clock.now))
        >>> clock.run_until(2.0)
        >>> fired
        [1.0]
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._queue: List[Event] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def call_at(self, when: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule into the past: {when} < {self._now}")
        event = Event(time=when, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return event

    def call_after(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0.0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, action)

    def call_every(
        self,
        period: float,
        action: Callable[[], None],
        start: Optional[float] = None,
    ) -> "PeriodicTask":
        """Schedule ``action`` every ``period`` seconds.

        Returns a :class:`PeriodicTask` handle whose :meth:`stop` halts
        the recurrence.
        """
        if period <= 0.0:
            raise ValueError(f"non-positive period: {period}")
        task = PeriodicTask(self, period, action)
        task.start(self._now if start is None else start)
        return task

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Run all events with ``time <= deadline``, then set now=deadline."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > deadline:
                break
            heapq.heappop(self._queue)
            self._now = head.time
            head.action()
        if deadline > self._now:
            self._now = deadline

    def run(self) -> None:
        """Drain the queue completely."""
        while self.step():
            pass

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)


class PeriodicTask:
    """Recurring event helper returned by :meth:`SimClock.call_every`."""

    def __init__(self, clock: SimClock, period: float, action: Callable[[], None]) -> None:
        self._clock = clock
        self._period = period
        self._action = action
        self._event: Optional[Event] = None
        self._stopped = False

    def start(self, first: float) -> None:
        if first < self._clock.now:
            raise ValueError("periodic task cannot start in the past")
        self._event = self._clock.call_at(first, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._action()
        if not self._stopped:
            self._event = self._clock.call_after(self._period, self._fire)

    def stop(self) -> None:
        """Stop the recurrence; a pending occurrence is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
