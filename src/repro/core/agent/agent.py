"""The FlexRIC agent (§4.1.1).

Wires a base station's RAN functions to one or more controllers:

* performs the E2 setup procedure on connect, advertising the node
  identity and registered RAN functions,
* decodes incoming E2AP messages through the configured outer codec
  and dispatches them to RAN functions via the generic API,
* implements :class:`IndicationSink` so RAN functions emit indications
  without touching encoding or transport,
* manages additional controllers (E2 connection update) and the
  UE-to-controller association.

CPU spent in the agent (encode/decode/dispatch) is charged to an
optional :class:`~repro.metrics.cpu.CpuMeter`, which is how Fig. 6
separates agent overhead from base-station load.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.codec.base import Codec, get_codec
from repro.core.e2ap.ies import GlobalE2NodeId, RanFunctionItem, RicRequestId
from repro.core.e2ap.messages import (
    E2ConnectionUpdate,
    E2ConnectionUpdateAcknowledge,
    E2Message,
    E2SetupFailure,
    E2SetupRequest,
    E2SetupResponse,
    ErrorIndication,
    ResetRequest,
    ResetResponse,
    RicControlAcknowledge,
    RicControlFailure,
    RicControlRequest,
    RicIndication,
    RicSubscriptionDeleteFailure,
    RicSubscriptionDeleteRequest,
    RicSubscriptionDeleteResponse,
    RicSubscriptionRequest,
    RicSubscriptionResponse,
    RicServiceQuery,
    RicServiceUpdate,
    decode_message,
    encode_message,
)
from repro.core.e2ap.procedures import Cause
from repro.core.agent.multi_controller import ControllerRegistry, UeControllerMap
from repro.core.agent.ran_function import IndicationSink, RanFunction, SubscriptionHandle
from repro.core.transport.base import Endpoint, Transport, TransportEvents
from repro.metrics.cpu import CpuMeter


@dataclass
class AgentConfig:
    """Static agent configuration.

    ``e2ap_codec`` picks the outer encoding (``"asn"`` or ``"fb"``,
    §4.3); setup timeout applies to socket transports only.
    """

    node_id: GlobalE2NodeId
    e2ap_codec: str = "fb"
    setup_timeout_s: float = 5.0


class Agent(IndicationSink):
    """E2 agent: the base-station side of the FlexRIC SDK."""

    def __init__(
        self,
        config: AgentConfig,
        transport: Transport,
        cpu_meter: Optional[CpuMeter] = None,
    ) -> None:
        self.config = config
        self.transport = transport
        self.codec: Codec = get_codec(config.e2ap_codec)
        self.cpu = cpu_meter or CpuMeter(f"agent-{config.node_id.label}")
        self.controllers = ControllerRegistry()
        self.ue_map = UeControllerMap()
        self._functions: Dict[int, RanFunction] = {}
        self._endpoints: Dict[int, Endpoint] = {}
        self._setup_done: Dict[int, threading.Event] = {}
        self._setup_ok: Dict[int, bool] = {}
        #: called when a controller asks this agent to attach elsewhere.
        self.on_connection_update: Optional[Callable[[E2ConnectionUpdate], None]] = None

    # -- RAN function registration ------------------------------------

    def register_function(self, function: RanFunction) -> None:
        """Add a RAN function; its id must be unique within the node."""
        if function.ran_function_id in self._functions:
            raise ValueError(f"duplicate RAN function id {function.ran_function_id}")
        function.bind(self)
        self._functions[function.ran_function_id] = function

    def functions(self) -> List[RanFunction]:
        return list(self._functions.values())

    def get_function(self, ran_function_id: int) -> Optional[RanFunction]:
        return self._functions.get(ran_function_id)

    # -- controller connections ---------------------------------------

    def connect(self, address: str) -> int:
        """Attach to a controller and run E2 setup.

        Returns the controller *origin* index.  Raises
        ``ConnectionError`` if setup is refused or times out.
        """
        origin = self.connect_async(address)
        done = self._setup_done[origin]
        if not done.wait(self.config.setup_timeout_s):
            raise ConnectionError(f"E2 setup timed out towards {address}")
        if not self._setup_ok[origin]:
            raise ConnectionError(f"E2 setup refused by {address}")
        return origin

    def connect_async(self, address: str) -> int:
        """Start attaching to a controller without waiting for setup.

        Used where blocking would deadlock the dispatch context — e.g.
        handling an E2 connection update *inside* a message callback
        (§4.1.2): the setup exchange completes once the current
        dispatch returns.
        """
        link = self.controllers.add(address)
        origin = link.origin
        self._setup_done[origin] = threading.Event()
        self._setup_ok[origin] = False

        events = TransportEvents(
            on_connected=lambda endpoint: self._send_setup(origin, endpoint),
            on_message=lambda endpoint, data: self._handle(origin, endpoint, data),
            on_disconnected=lambda endpoint: self._disconnected(origin),
        )
        endpoint = self.transport.connect(address, events)
        self._endpoints[origin] = endpoint
        return origin

    def disconnect(self, origin: int) -> None:
        endpoint = self._endpoints.pop(origin, None)
        if endpoint is not None and not endpoint.closed:
            endpoint.close()
        self.controllers.remove(origin)

    def _disconnected(self, origin: int) -> None:
        self._endpoints.pop(origin, None)
        self.controllers.remove(origin)

    def _send_setup(self, origin: int, endpoint: Endpoint) -> None:
        items = [
            RanFunctionItem(
                ran_function_id=function.ran_function_id,
                definition=function.definition_bytes(),
                revision=function.revision,
                oid=function.oid,
            )
            for function in self._functions.values()
        ]
        request = E2SetupRequest(node_id=self.config.node_id, ran_functions=items)
        endpoint.send(encode_message(request, self.codec))

    def announce_config(self, origin: int, config: Dict[str, str]) -> None:
        """Report a node-level configuration change (E2 node config
        update procedure); the server stores it in the RANDB."""
        from repro.core.e2ap.messages import E2NodeConfigurationUpdate

        self._send(
            origin,
            E2NodeConfigurationUpdate(node_id=self.config.node_id, config=dict(config)),
        )

    def announce_error(self, origin: int, cause: Cause, ran_function_id: Optional[int] = None) -> None:
        """Raise an E2AP error indication towards a controller."""
        self._send(origin, ErrorIndication(cause=cause, ran_function_id=ran_function_id))

    def announce_function_update(self, origin: int, added: List[RanFunction]) -> None:
        """Send a RIC service update for functions added at runtime."""
        update = RicServiceUpdate(
            added=[
                RanFunctionItem(
                    ran_function_id=function.ran_function_id,
                    definition=function.definition_bytes(),
                    revision=function.revision,
                    oid=function.oid,
                )
                for function in added
            ]
        )
        self._send(origin, update)

    # -- IndicationSink -------------------------------------------------

    def send_indication(self, origin: int, indication: RicIndication) -> None:
        self._send(origin, indication)

    def send_indications(self, origin: int, indications: Sequence[RicIndication]) -> None:
        if not indications:
            return
        endpoint = self._endpoints.get(origin)
        if endpoint is None or endpoint.closed:
            raise ConnectionError(f"no live connection for origin {origin}")
        with self.cpu.measure():
            batch = [encode_message(message, self.codec) for message in indications]
        endpoint.send_many(batch)

    def _send(self, origin: int, message: E2Message) -> None:
        endpoint = self._endpoints.get(origin)
        if endpoint is None or endpoint.closed:
            raise ConnectionError(f"no live connection for origin {origin}")
        with self.cpu.measure():
            data = encode_message(message, self.codec)
        endpoint.send(data)

    # -- message handling ----------------------------------------------

    def _handle(self, origin: int, endpoint: Endpoint, data: bytes) -> None:
        with self.cpu.measure():
            message = decode_message(data, self.codec)
            reply = self._dispatch(origin, message)
            if reply is not None:
                endpoint.send(encode_message(reply, self.codec))

    def _dispatch(self, origin: int, message: E2Message) -> Optional[E2Message]:
        if isinstance(message, E2SetupResponse):
            self._setup_ok[origin] = True
            self._setup_done[origin].set()
            return None
        if isinstance(message, E2SetupFailure):
            self._setup_ok[origin] = False
            self._setup_done[origin].set()
            return None
        if isinstance(message, RicSubscriptionRequest):
            return self._handle_subscription(origin, message)
        if isinstance(message, RicSubscriptionDeleteRequest):
            return self._handle_subscription_delete(origin, message)
        if isinstance(message, RicControlRequest):
            return self._handle_control(origin, message)
        if isinstance(message, E2ConnectionUpdate):
            return self._handle_connection_update(message)
        if isinstance(message, RicServiceQuery):
            return self._handle_service_query(message)
        if isinstance(message, ResetRequest):
            self._reset()
            return ResetResponse()
        return ErrorIndication(
            cause=Cause.protocol(Cause.UNSPECIFIED, f"unhandled {type(message).__name__}")
        )

    def _handle_subscription(
        self, origin: int, message: RicSubscriptionRequest
    ) -> E2Message:
        function = self._functions.get(message.ran_function_id)
        handle = SubscriptionHandle(
            origin=origin,
            request=message.request,
            ran_function_id=message.ran_function_id,
        )
        if function is None:
            return RicSubscriptionFailureFactory(message, "no such RAN function")
        admitted, not_admitted = function.on_subscription(
            handle, message.event_trigger, message.actions
        )
        return RicSubscriptionResponse(
            request=message.request,
            ran_function_id=message.ran_function_id,
            admitted=admitted,
            not_admitted=not_admitted,
        )

    def _handle_subscription_delete(
        self, origin: int, message: RicSubscriptionDeleteRequest
    ) -> E2Message:
        function = self._functions.get(message.ran_function_id)
        handle = SubscriptionHandle(
            origin=origin,
            request=message.request,
            ran_function_id=message.ran_function_id,
        )
        if function is None or not function.on_subscription_delete(handle):
            return RicSubscriptionDeleteFailure(
                request=message.request,
                ran_function_id=message.ran_function_id,
                cause=Cause.ric_request(Cause.REQUEST_ID_UNKNOWN),
            )
        return RicSubscriptionDeleteResponse(
            request=message.request, ran_function_id=message.ran_function_id
        )

    def _handle_control(self, origin: int, message: RicControlRequest) -> Optional[E2Message]:
        function = self._functions.get(message.ran_function_id)
        if function is None:
            return RicControlFailure(
                request=message.request,
                ran_function_id=message.ran_function_id,
                cause=Cause.ric_request(Cause.RAN_FUNCTION_ID_INVALID),
            )
        outcome = function.on_control(origin, message.header, message.payload)
        if not message.ack_requested and outcome.success:
            return None
        if outcome.success:
            return RicControlAcknowledge(
                request=message.request,
                ran_function_id=message.ran_function_id,
                outcome=outcome.outcome,
            )
        return RicControlFailure(
            request=message.request,
            ran_function_id=message.ran_function_id,
            cause=outcome.cause or Cause.ric_request(Cause.UNSPECIFIED),
        )

    def _handle_service_query(self, message) -> E2Message:
        """Answer a RIC service query with the function inventory.

        Functions the RIC already knows are omitted; everything else is
        (re)announced as added."""
        known = set(message.known_functions)
        added = [
            RanFunctionItem(
                ran_function_id=function.ran_function_id,
                definition=function.definition_bytes(),
                revision=function.revision,
                oid=function.oid,
            )
            for function in self._functions.values()
            if function.ran_function_id not in known
        ]
        return RicServiceUpdate(added=added)

    def _handle_connection_update(self, message: E2ConnectionUpdate) -> E2Message:
        connected = []
        for tnl in message.add:
            # Non-blocking: we are inside a message callback; waiting for
            # the new setup here would deadlock single-threaded dispatch.
            self.connect_async(
                tnl.address if not tnl.port else f"{tnl.address}:{tnl.port}"
            )
            connected.append(tnl)
        if self.on_connection_update is not None:
            self.on_connection_update(message)
        return E2ConnectionUpdateAcknowledge(connected=connected)

    def _reset(self) -> None:
        for function in self._functions.values():
            for key in list(function.subscriptions):
                function.on_subscription_delete(function.subscriptions[key])


def RicSubscriptionFailureFactory(message: RicSubscriptionRequest, detail: str):
    """Build a subscription failure mirroring ``message``'s ids."""
    from repro.core.e2ap.messages import RicSubscriptionFailure

    return RicSubscriptionFailure(
        request=message.request,
        ran_function_id=message.ran_function_id,
        cause=Cause.ric_request(Cause.RAN_FUNCTION_ID_INVALID, detail),
    )
