"""The FlexRIC agent (§4.1.1).

Wires a base station's RAN functions to one or more controllers:

* performs the E2 setup procedure on connect, advertising the node
  identity and registered RAN functions,
* decodes incoming E2AP messages through the configured outer codec
  and dispatches them to RAN functions via the generic API,
* implements :class:`IndicationSink` so RAN functions emit indications
  without touching encoding or transport,
* manages additional controllers (E2 connection update) and the
  UE-to-controller association.

CPU spent in the agent (encode/decode/dispatch) is charged to an
optional :class:`~repro.metrics.cpu.CpuMeter`, which is how Fig. 6
separates agent overhead from base-station load.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.codec.base import Codec, CodecError, get_codec
from repro.core.e2ap.ies import GlobalE2NodeId, RanFunctionItem, RicRequestId
from repro.core.e2ap.messages import (
    E2ConnectionUpdate,
    E2ConnectionUpdateAcknowledge,
    E2Message,
    E2SetupFailure,
    E2SetupRequest,
    E2SetupResponse,
    ErrorIndication,
    ResetRequest,
    ResetResponse,
    RicControlAcknowledge,
    RicControlFailure,
    RicControlRequest,
    RicIndication,
    RicSubscriptionDeleteFailure,
    RicSubscriptionDeleteRequest,
    RicSubscriptionDeleteResponse,
    RicSubscriptionRequest,
    RicSubscriptionResponse,
    RicServiceQuery,
    RicServiceUpdate,
    decode_message,
    encode_message,
)
from repro.core.e2ap.procedures import Cause
from repro.core.agent.multi_controller import ControllerRegistry, LinkState, UeControllerMap
from repro.core.agent.ran_function import IndicationSink, RanFunction, SubscriptionHandle
from repro.core.agent.reconnect import ReconnectPolicy, Scheduler, timer_scheduler
from repro.core.e2ap.ies import RicActionDefinition
from repro.core.transport.base import (
    ConnectTimeout,
    DisconnectReason,
    Endpoint,
    Transport,
    TransportEvents,
)
from repro.metrics.counters import discard_gauge, get_counter, get_gauge
from repro.metrics.cpu import CpuMeter
from repro.metrics.trace import TRACER as _TRACER


@dataclass
class _JournalEntry:
    """One live subscription, as admitted by a RAN function.

    The journal is what survives a link death: on reconnect the agent
    re-admits each entry locally so RAN functions resume emitting
    without waiting for the server's resync (and without any iApp
    involvement) — the two mechanisms are idempotent against each
    other because re-subscription replaces, never duplicates.
    """

    origin: int
    ran_function_id: int
    request: RicRequestId
    event_trigger: bytes
    actions: List[RicActionDefinition]


@dataclass
class AgentConfig:
    """Static agent configuration.

    ``e2ap_codec`` picks the outer encoding (``"asn"`` or ``"fb"``,
    §4.3); setup timeout applies to socket transports only.
    """

    node_id: GlobalE2NodeId
    e2ap_codec: str = "fb"
    setup_timeout_s: float = 5.0


class Agent(IndicationSink):
    """E2 agent: the base-station side of the FlexRIC SDK."""

    def __init__(
        self,
        config: AgentConfig,
        transport: Transport,
        cpu_meter: Optional[CpuMeter] = None,
    ) -> None:
        self.config = config
        self.transport = transport
        self.codec: Codec = get_codec(config.e2ap_codec)
        self.cpu = cpu_meter or CpuMeter(f"agent-{config.node_id.label}")
        self.controllers = ControllerRegistry()
        self.ue_map = UeControllerMap()
        self._functions: Dict[int, RanFunction] = {}
        self._endpoints: Dict[int, Endpoint] = {}
        self._setup_done: Dict[int, threading.Event] = {}
        self._setup_ok: Dict[int, bool] = {}
        #: called when a controller asks this agent to attach elsewhere.
        self.on_connection_update: Optional[Callable[[E2ConnectionUpdate], None]] = None
        # -- lifecycle resilience (opt-in via enable_reconnect) -------
        self._reconnect_policy: Optional[ReconnectPolicy] = None
        self._scheduler: Scheduler = timer_scheduler
        self._on_give_up: Optional[Callable[[int], None]] = None
        self._reconnect_rng = random.Random(0)
        #: journal of live subscriptions, keyed by handle key.
        self._journal: Dict[Tuple, _JournalEntry] = {}
        #: total successful reconnects across all links.
        self.reconnects = 0
        #: indications discarded while a link was down (reconnect mode).
        self.indications_dropped = 0

    # -- RAN function registration ------------------------------------

    def register_function(self, function: RanFunction) -> None:
        """Add a RAN function; its id must be unique within the node."""
        if function.ran_function_id in self._functions:
            raise ValueError(f"duplicate RAN function id {function.ran_function_id}")
        function.bind(self)
        self._functions[function.ran_function_id] = function

    def functions(self) -> List[RanFunction]:
        return list(self._functions.values())

    def get_function(self, ran_function_id: int) -> Optional[RanFunction]:
        return self._functions.get(ran_function_id)

    # -- controller connections ---------------------------------------

    def enable_reconnect(
        self,
        policy: Optional[ReconnectPolicy] = None,
        scheduler: Optional[Scheduler] = None,
        on_give_up: Optional[Callable[[int], None]] = None,
    ) -> ReconnectPolicy:
        """Opt links into the self-healing lifecycle.

        With a policy installed, a network-side disconnect no longer
        tears a link down: the agent walks the backoff ladder, re-runs
        E2 setup on success, and replays the subscription journal so
        RAN functions resume emitting.  ``scheduler`` injects the
        timing source (defaults to daemon timers; tests pass a
        :class:`~repro.core.agent.reconnect.ManualScheduler`);
        ``on_give_up`` fires with the origin once a link is declared
        DEAD.
        """
        self._reconnect_policy = policy or ReconnectPolicy()
        if scheduler is not None:
            self._scheduler = scheduler
        self._on_give_up = on_give_up
        self._reconnect_rng = random.Random(self._reconnect_policy.seed)
        return self._reconnect_policy

    def connect(self, address: str) -> int:
        """Attach to a controller and run E2 setup.

        Returns the controller *origin* index.  Raises
        ``ConnectionError`` if setup is refused or times out — in
        which case the partial link state (setup events, registry
        entry, endpoint) is rolled back so a retried ``connect`` to
        the same address starts clean.
        """
        origin = self.connect_async(address)
        done = self._setup_done[origin]
        if not done.wait(self.config.setup_timeout_s):
            self._abort_link(origin)
            raise ConnectionError(f"E2 setup timed out towards {address}")
        if not self._setup_ok[origin]:
            self._abort_link(origin)
            raise ConnectionError(f"E2 setup refused by {address}")
        return origin

    def connect_async(self, address: str) -> int:
        """Start attaching to a controller without waiting for setup.

        Used where blocking would deadlock the dispatch context — e.g.
        handling an E2 connection update *inside* a message callback
        (§4.1.2): the setup exchange completes once the current
        dispatch returns.
        """
        link = self.controllers.add(address)
        origin = link.origin
        self._setup_done[origin] = threading.Event()
        self._setup_ok[origin] = False
        self._set_link_state(origin, LinkState.CONNECTING)
        try:
            endpoint = self.transport.connect(address, self._link_events(origin))
        except (ConnectionError, OSError):
            self._abort_link(origin)
            raise
        # The endpoint may already be registered: over a synchronous
        # transport the whole setup exchange ran inside ``connect``.
        self._endpoints.setdefault(origin, endpoint)
        return origin

    def _link_events(self, origin: int) -> TransportEvents:
        return TransportEvents(
            on_connected=lambda endpoint: self._send_setup(origin, endpoint),
            on_message=lambda endpoint, data: self._handle(origin, endpoint, data),
            on_disconnected=lambda endpoint, reason=None: self._disconnected(origin, reason),
        )

    def _abort_link(self, origin: int) -> None:
        """Roll back a half-open link (setup timeout or refusal)."""
        self._setup_done.pop(origin, None)
        self._setup_ok.pop(origin, None)
        endpoint = self._endpoints.pop(origin, None)
        if endpoint is not None and not endpoint.closed:
            endpoint.close()
        self.controllers.remove(origin)
        self._set_state_gauge(origin, LinkState.DEAD)

    def disconnect(self, origin: int) -> None:
        endpoint = self._endpoints.pop(origin, None)
        if endpoint is not None and not endpoint.closed:
            endpoint.close()
        self.controllers.remove(origin)
        self._set_state_gauge(origin, LinkState.DEAD)

    def _disconnected(self, origin: int, reason: Optional[DisconnectReason] = None) -> None:
        self._endpoints.pop(origin, None)
        link = self.controllers.get(origin)
        if link is None:
            return  # torn down locally already
        local = reason is not None and reason.code == DisconnectReason.LOCAL
        if self._reconnect_policy is None or local:
            self.controllers.remove(origin)
            self._set_state_gauge(origin, LinkState.DEAD)
            return
        # Network-side death with a policy installed: degrade and walk
        # the backoff ladder instead of giving the link up.
        link.connected = False
        link.reconnect_attempts = 0
        self._set_link_state(origin, LinkState.DEGRADED)
        self._schedule_reconnect(origin, attempt=1)

    # -- reconnect state machine --------------------------------------

    def _schedule_reconnect(self, origin: int, attempt: int) -> None:
        policy = self._reconnect_policy
        link = self.controllers.get(origin)
        if policy is None or link is None or link.state == LinkState.DEAD:
            return
        if policy.exhausted(attempt):
            self.controllers.remove(origin)
            self._set_state_gauge(origin, LinkState.DEAD)
            get_counter("agent.reconnect.giveup").incr()
            if self._on_give_up is not None:
                self._on_give_up(origin)
            return
        delay = policy.delay_for(attempt, self._reconnect_rng)
        self._scheduler(delay, lambda: self._try_reconnect(origin, attempt))

    def _try_reconnect(self, origin: int, attempt: int) -> None:
        link = self.controllers.get(origin)
        if link is None or link.state in (LinkState.DEAD, LinkState.READY):
            return
        link.reconnect_attempts = attempt
        self._set_link_state(origin, LinkState.RECONNECTING)
        get_counter("agent.reconnect.attempt").incr()
        # Drop any half-open endpoint from a previous attempt.
        stale = self._endpoints.pop(origin, None)
        if stale is not None and not stale.closed:
            stale.close()
        self._setup_done[origin] = threading.Event()
        self._setup_ok[origin] = False
        try:
            endpoint = self.transport.connect(link.address, self._link_events(origin))
        except (ConnectionError, OSError) as exc:
            # A bounded connect timeout (TCP transport) is counted
            # separately: it means the peer is reachable-but-silent
            # rather than refusing, which reads differently in a
            # post-mortem of a reconnect storm.
            if isinstance(exc, ConnectTimeout):
                get_counter("agent.reconnect.connect_timeout").incr()
            self._schedule_reconnect(origin, attempt + 1)
            return
        self._endpoints.setdefault(origin, endpoint)
        if link.state != LinkState.READY:
            self._set_link_state(origin, LinkState.CONNECTING)
            # Setup answer pending: give it one timeout, then retry the
            # whole attempt (covers the request or response being lost).
            self._scheduler(
                self.config.setup_timeout_s,
                lambda: self._check_setup(origin, attempt, endpoint),
            )

    def _check_setup(self, origin: int, attempt: int, endpoint: Endpoint) -> None:
        link = self.controllers.get(origin)
        if link is None or link.state in (LinkState.DEAD, LinkState.READY):
            return
        if self._endpoints.get(origin) is not endpoint:
            return  # a newer attempt took over
        self._endpoints.pop(origin, None)
        if not endpoint.closed:
            endpoint.close()
        self._set_link_state(origin, LinkState.DEGRADED)
        self._schedule_reconnect(origin, attempt + 1)

    def _link_ready(self, origin: int) -> None:
        """Setup accepted; mark READY and resume live subscriptions."""
        link = self.controllers.get(origin)
        was_reconnect = link is not None and not link.connected
        if link is not None:
            link.connected = True
            if was_reconnect:
                link.reconnects += 1
                link.reconnect_attempts = 0
        self._set_link_state(origin, LinkState.READY)
        if was_reconnect:
            self.reconnects += 1
            get_counter("agent.reconnect.success").incr()
            self._replay_journal(origin)

    def _replay_journal(self, origin: int) -> None:
        """Re-admit every journaled subscription of ``origin``.

        Runs straight against the RAN functions (no wire round-trip),
        so indications resume even before the server's resync request
        arrives; both paths re-admit the same handle key, which RAN
        functions treat as replacement, keeping replay idempotent.
        """
        for entry in list(self._journal.values()):
            if entry.origin != origin:
                continue
            function = self._functions.get(entry.ran_function_id)
            if function is None:
                continue
            handle = SubscriptionHandle(
                origin=origin,
                request=entry.request,
                ran_function_id=entry.ran_function_id,
            )
            function.on_subscription(handle, entry.event_trigger, list(entry.actions))
            get_counter("agent.journal.replayed").incr()

    def _set_link_state(self, origin: int, state: LinkState) -> None:
        link = self.controllers.get(origin)
        if link is not None:
            link.state = state
        self._set_state_gauge(origin, state)

    def _set_state_gauge(self, origin: int, state: LinkState) -> None:
        name = f"agent.{self.config.node_id.label}.link.{origin}.state"
        if state == LinkState.DEAD:
            # A dead link's gauge would otherwise sit at 5 forever in
            # every later snapshot; drop it so exports show live links.
            discard_gauge(name)
            return
        get_gauge(name).set(int(state))

    def _send_setup(self, origin: int, endpoint: Endpoint) -> None:
        items = [
            RanFunctionItem(
                ran_function_id=function.ran_function_id,
                definition=function.definition_bytes(),
                revision=function.revision,
                oid=function.oid,
            )
            for function in self._functions.values()
        ]
        request = E2SetupRequest(node_id=self.config.node_id, ran_functions=items)
        endpoint.send(encode_message(request, self.codec))

    def announce_config(self, origin: int, config: Dict[str, str]) -> None:
        """Report a node-level configuration change (E2 node config
        update procedure); the server stores it in the RANDB."""
        from repro.core.e2ap.messages import E2NodeConfigurationUpdate

        self._send(
            origin,
            E2NodeConfigurationUpdate(node_id=self.config.node_id, config=dict(config)),
        )

    def announce_error(self, origin: int, cause: Cause, ran_function_id: Optional[int] = None) -> None:
        """Raise an E2AP error indication towards a controller."""
        self._send(origin, ErrorIndication(cause=cause, ran_function_id=ran_function_id))

    def announce_function_update(self, origin: int, added: List[RanFunction]) -> None:
        """Send a RIC service update for functions added at runtime."""
        update = RicServiceUpdate(
            added=[
                RanFunctionItem(
                    ran_function_id=function.ran_function_id,
                    definition=function.definition_bytes(),
                    revision=function.revision,
                    oid=function.oid,
                )
                for function in added
            ]
        )
        self._send(origin, update)

    # -- IndicationSink -------------------------------------------------

    def send_indication(self, origin: int, indication: RicIndication) -> None:
        endpoint = self._indication_endpoint(origin, pending=1)
        if endpoint is None:
            return
        with self.cpu.measure():
            data = encode_message(indication, self.codec)
        try:
            endpoint.send(data)
        except (ConnectionError, OSError):
            self._count_dropped(1)

    def send_indications(self, origin: int, indications: Sequence[RicIndication]) -> None:
        if not indications:
            return
        endpoint = self._indication_endpoint(origin, pending=len(indications))
        if endpoint is None:
            return
        with self.cpu.measure():
            batch = [encode_message(message, self.codec) for message in indications]
        try:
            endpoint.send_many(batch)
        except (ConnectionError, OSError):
            self._count_dropped(len(batch))

    def _indication_endpoint(self, origin: int, pending: int) -> Optional[Endpoint]:
        """Endpoint for the indication plane, honouring link state.

        Indications are periodic and tolerant to loss; while a link is
        degraded/reconnecting they are *discarded* (and counted)
        rather than raised on — the RAN function keeps producing and
        the stream resumes seamlessly once the link is READY.  Without
        a reconnect policy the legacy contract holds: dead link raises.
        """
        endpoint = self._endpoints.get(origin)
        link = self.controllers.get(origin)
        usable = (
            endpoint is not None
            and not endpoint.closed
            and (link is None or link.state == LinkState.READY)
        )
        if usable:
            return endpoint
        if self._reconnect_policy is not None:
            self._count_dropped(pending)
            return None
        raise ConnectionError(f"no live connection for origin {origin}")

    def _count_dropped(self, count: int) -> None:
        self.indications_dropped += count
        get_counter("agent.indications.dropped").incr(count)

    def _send(self, origin: int, message: E2Message) -> None:
        endpoint = self._endpoints.get(origin)
        if endpoint is None or endpoint.closed:
            raise ConnectionError(f"no live connection for origin {origin}")
        with self.cpu.measure():
            data = encode_message(message, self.codec)
        endpoint.send(data)

    # -- message handling ----------------------------------------------

    def _handle(self, origin: int, endpoint: Endpoint, data: bytes) -> None:
        # Re-register the delivering endpoint: over a synchronous
        # transport the setup reply arrives before ``transport.connect``
        # returns, i.e. before connect_async stored the endpoint.
        current = self._endpoints.get(origin)
        if current is None or current.closed or current is endpoint:
            self._endpoints[origin] = endpoint
        tracer = _TRACER
        if tracer.enabled:
            tracer.node = self.config.node_id.label
        with self.cpu.measure():
            try:
                message = decode_message(data, self.codec)
            except CodecError as exc:
                # A corrupted frame must never take the link's dispatch
                # context down; count it and tell the controller.
                get_counter("agent.rx.decode_error").incr()
                get_counter("decode.contained").incr()
                self._safe_reply(
                    endpoint,
                    ErrorIndication(
                        cause=Cause.protocol(Cause.UNSPECIFIED, f"undecodable: {exc}")
                    ),
                )
                return
            trace_start = time.perf_counter() if tracer.enabled else 0.0
            reply = self._dispatch(origin, message)
            if trace_start:
                request = getattr(message, "request", None)
                tracer.record(
                    "dispatch",
                    trace_start,
                    request.as_tuple() if request is not None else None,
                    procedure=message.procedure.name.lower(),
                )
            if reply is not None:
                self._safe_reply(endpoint, reply)

    def _safe_reply(self, endpoint: Endpoint, reply: E2Message) -> None:
        try:
            endpoint.send(encode_message(reply, self.codec))
        except (ConnectionError, OSError):
            # Link died under the reply; the disconnect path handles it.
            get_counter("agent.tx.reply_failed").incr()

    def _dispatch(self, origin: int, message: E2Message) -> Optional[E2Message]:
        if isinstance(message, E2SetupResponse):
            self._setup_ok[origin] = True
            done = self._setup_done.get(origin)
            if done is not None:
                done.set()
            self._link_ready(origin)
            return None
        if isinstance(message, E2SetupFailure):
            self._setup_ok[origin] = False
            done = self._setup_done.get(origin)
            if done is not None:
                done.set()
            return None
        if isinstance(message, RicSubscriptionRequest):
            return self._handle_subscription(origin, message)
        if isinstance(message, RicSubscriptionDeleteRequest):
            return self._handle_subscription_delete(origin, message)
        if isinstance(message, RicControlRequest):
            return self._handle_control(origin, message)
        if isinstance(message, E2ConnectionUpdate):
            return self._handle_connection_update(message)
        if isinstance(message, RicServiceQuery):
            return self._handle_service_query(message)
        if isinstance(message, ResetRequest):
            self._reset()
            return ResetResponse()
        from repro.core.e2ap.messages import (
            E2NodeConfigurationUpdateAcknowledge,
            RicServiceUpdateAcknowledge,
        )

        if isinstance(
            message, (RicServiceUpdateAcknowledge, E2NodeConfigurationUpdateAcknowledge)
        ):
            # Pure acknowledgements (e.g. of keepalive-triggered service
            # updates) end the transaction; answering them with an error
            # would ping-pong forever.
            return None
        return ErrorIndication(
            cause=Cause.protocol(Cause.UNSPECIFIED, f"unhandled {type(message).__name__}")
        )

    def _handle_subscription(
        self, origin: int, message: RicSubscriptionRequest
    ) -> E2Message:
        function = self._functions.get(message.ran_function_id)
        handle = SubscriptionHandle(
            origin=origin,
            request=message.request,
            ran_function_id=message.ran_function_id,
        )
        if function is None:
            return RicSubscriptionFailureFactory(message, "no such RAN function")
        admitted, not_admitted = function.on_subscription(
            handle, message.event_trigger, message.actions
        )
        if admitted:
            self._journal[handle.key()] = _JournalEntry(
                origin=origin,
                ran_function_id=message.ran_function_id,
                request=message.request,
                event_trigger=bytes(message.event_trigger),
                actions=list(message.actions),
            )
        return RicSubscriptionResponse(
            request=message.request,
            ran_function_id=message.ran_function_id,
            admitted=admitted,
            not_admitted=not_admitted,
        )

    def _handle_subscription_delete(
        self, origin: int, message: RicSubscriptionDeleteRequest
    ) -> E2Message:
        function = self._functions.get(message.ran_function_id)
        handle = SubscriptionHandle(
            origin=origin,
            request=message.request,
            ran_function_id=message.ran_function_id,
        )
        if function is None or not function.on_subscription_delete(handle):
            return RicSubscriptionDeleteFailure(
                request=message.request,
                ran_function_id=message.ran_function_id,
                cause=Cause.ric_request(Cause.REQUEST_ID_UNKNOWN),
            )
        self._journal.pop(handle.key(), None)
        return RicSubscriptionDeleteResponse(
            request=message.request, ran_function_id=message.ran_function_id
        )

    def _handle_control(self, origin: int, message: RicControlRequest) -> Optional[E2Message]:
        function = self._functions.get(message.ran_function_id)
        if function is None:
            return RicControlFailure(
                request=message.request,
                ran_function_id=message.ran_function_id,
                cause=Cause.ric_request(Cause.RAN_FUNCTION_ID_INVALID),
            )
        outcome = function.on_control(origin, message.header, message.payload)
        if not message.ack_requested and outcome.success:
            return None
        if outcome.success:
            return RicControlAcknowledge(
                request=message.request,
                ran_function_id=message.ran_function_id,
                outcome=outcome.outcome,
            )
        return RicControlFailure(
            request=message.request,
            ran_function_id=message.ran_function_id,
            cause=outcome.cause or Cause.ric_request(Cause.UNSPECIFIED),
        )

    def _handle_service_query(self, message) -> E2Message:
        """Answer a RIC service query with the function inventory.

        Functions the RIC already knows are omitted; everything else is
        (re)announced as added."""
        known = set(message.known_functions)
        added = [
            RanFunctionItem(
                ran_function_id=function.ran_function_id,
                definition=function.definition_bytes(),
                revision=function.revision,
                oid=function.oid,
            )
            for function in self._functions.values()
            if function.ran_function_id not in known
        ]
        return RicServiceUpdate(added=added)

    def _handle_connection_update(self, message: E2ConnectionUpdate) -> E2Message:
        connected = []
        for tnl in message.add:
            # Non-blocking: we are inside a message callback; waiting for
            # the new setup here would deadlock single-threaded dispatch.
            self.connect_async(
                tnl.address if not tnl.port else f"{tnl.address}:{tnl.port}"
            )
            connected.append(tnl)
        if self.on_connection_update is not None:
            self.on_connection_update(message)
        return E2ConnectionUpdateAcknowledge(connected=connected)

    def _reset(self) -> None:
        for function in self._functions.values():
            for key in list(function.subscriptions):
                function.on_subscription_delete(function.subscriptions[key])
        self._journal.clear()


def RicSubscriptionFailureFactory(message: RicSubscriptionRequest, detail: str):
    """Build a subscription failure mirroring ``message``'s ids."""
    from repro.core.e2ap.messages import RicSubscriptionFailure

    return RicSubscriptionFailure(
        request=message.request,
        ran_function_id=message.ran_function_id,
        cause=Cause.ric_request(Cause.RAN_FUNCTION_ID_INVALID, detail),
    )
