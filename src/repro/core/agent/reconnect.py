"""Reconnect policy and schedulers for the agent's E2 links.

Real testbeds lose SCTP associations constantly; the paper's agent
(§4.1) is expected to ride through.  The policy here is the classic
exponential-backoff-with-jitter ladder, made deterministic (seeded
jitter) so chaos tests can replay a churn schedule bit-identically.

Scheduling is injected: production uses :func:`timer_scheduler`
(daemon ``threading.Timer``), deterministic tests use
:class:`ManualScheduler` and fire due work explicitly, keeping the
whole reconnect state machine single-threaded under the in-process
transport.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

#: A scheduler takes (delay_seconds, thunk) and arranges for the thunk
#: to run later.  It must never run the thunk synchronously from
#: inside the call — re-entrancy into the agent is the caller's job to
#: avoid.
Scheduler = Callable[[float, Callable[[], None]], None]


@dataclass
class ReconnectPolicy:
    """Exponential backoff with jitter, capped attempts, give-up hook.

    ``max_attempts`` counts attempts since the link last left READY; 0
    means retry forever.  ``jitter`` spreads each delay uniformly in
    ``[delay * (1 - jitter), delay * (1 + jitter)]`` so a controller
    restart does not see every agent of a site reconnect in lockstep.
    """

    base_delay_s: float = 0.5
    max_delay_s: float = 30.0
    multiplier: float = 2.0
    jitter: float = 0.1
    max_attempts: int = 8
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter out of [0,1): {self.jitter}")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay before ``attempt`` (1-based)."""
        delay = min(
            self.base_delay_s * (self.multiplier ** max(0, attempt - 1)),
            self.max_delay_s,
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def exhausted(self, attempt: int) -> bool:
        return self.max_attempts > 0 and attempt > self.max_attempts


def timer_scheduler(delay_s: float, thunk: Callable[[], None]) -> None:
    """Default production scheduler: one daemon timer per deadline."""
    timer = threading.Timer(delay_s, thunk)
    timer.daemon = True
    timer.start()


class ManualScheduler:
    """Deterministic scheduler for tests and simulations.

    Work is queued with a virtual due time; :meth:`advance` moves the
    virtual clock and runs everything that came due, in order.  Used
    by the chaos suite to interleave reconnect attempts with fault
    injection without threads or real sleeps.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._due: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def __call__(self, delay_s: float, thunk: Callable[[], None]) -> None:
        self._due.append((self.now + delay_s, self._seq, thunk))
        self._seq += 1

    def advance(self, dt: float = 0.0) -> int:
        """Move time forward and fire everything due; returns count."""
        self.now += dt
        fired = 0
        while True:
            ready = [item for item in self._due if item[0] <= self.now]
            if not ready:
                return fired
            ready.sort(key=lambda item: (item[0], item[1]))
            for item in ready:
                self._due.remove(item)
                item[2]()
                fired += 1

    @property
    def pending(self) -> int:
        return len(self._due)
