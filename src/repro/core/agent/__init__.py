"""FlexRIC agent library (§4.1).

Extends a base station with E2 connectivity:

* :mod:`repro.core.agent.ran_function` — the generic RAN function API
  (subscription / subscription-delete / control callbacks) custom
  service models implement,
* :mod:`repro.core.agent.agent` — the agent itself: E2 setup, message
  handling, dispatch to RAN functions,
* :mod:`repro.core.agent.multi_controller` — management of additional
  controllers and the UE-to-controller association (§4.1.2).
"""

from repro.core.agent.ran_function import (
    ControlOutcome,
    IndicationSink,
    RanFunction,
    SubscriptionHandle,
)
from repro.core.agent.multi_controller import ControllerRegistry, LinkState, UeControllerMap
from repro.core.agent.reconnect import ManualScheduler, ReconnectPolicy, timer_scheduler
from repro.core.agent.agent import Agent, AgentConfig

__all__ = [
    "ControlOutcome",
    "IndicationSink",
    "RanFunction",
    "SubscriptionHandle",
    "ControllerRegistry",
    "LinkState",
    "ManualScheduler",
    "ReconnectPolicy",
    "UeControllerMap",
    "Agent",
    "AgentConfig",
    "timer_scheduler",
]
