"""Multi-controller support at the agent (§4.1.2).

Two pieces:

* :class:`ControllerRegistry` — bookkeeping of every controller
  connection (setup, teardown, providing the *origin* index that RAN
  functions receive with each message),
* :class:`UeControllerMap` — the UE-to-controller association: which
  UEs each controller may see.  Every UE is associated with the first
  controller (origin 0) implicitly; additional exposure "has to be
  triggered through a controller" — there is deliberately no automatic
  association (the agent cannot always infer it, e.g. the DU never sees
  the PLMN a UE selected; Fig. 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


class LinkState(enum.IntEnum):
    """Lifecycle of one agent↔controller link.

    ``CONNECTING → READY`` is the happy path (E2 setup in flight, then
    accepted).  On a network death the link degrades instead of dying:
    ``READY → DEGRADED`` (disconnect observed, backoff pending) →
    ``RECONNECTING`` (attempt in flight) → back to ``CONNECTING`` once
    a transport connection exists.  ``DEAD`` is terminal: local
    teardown, setup refusal, or the reconnect policy giving up.
    """

    CONNECTING = 1
    READY = 2
    DEGRADED = 3
    RECONNECTING = 4
    DEAD = 5


@dataclass
class ControllerLink:
    """One controller connection as seen by the agent."""

    origin: int
    address: str
    connected: bool = True
    state: LinkState = LinkState.CONNECTING
    #: reconnect attempts since the link last left READY.
    reconnect_attempts: int = 0
    #: successful reconnects over the link's lifetime.
    reconnects: int = 0

    @property
    def alive(self) -> bool:
        return self.state in (LinkState.CONNECTING, LinkState.READY)


class ControllerRegistry:
    """Tracks the controllers this agent is attached to.

    Origin 0 is the first (primary) controller; additional controllers
    get increasing indices that stay stable for the lifetime of the
    agent (indices are not reused after teardown, so a RAN function
    never confuses an old controller with a new one).
    """

    def __init__(self) -> None:
        self._links: Dict[int, ControllerLink] = {}
        self._next_origin = 0

    def add(self, address: str) -> ControllerLink:
        link = ControllerLink(origin=self._next_origin, address=address)
        self._links[link.origin] = link
        self._next_origin += 1
        return link

    def remove(self, origin: int) -> None:
        link = self._links.pop(origin, None)
        if link is not None:
            link.connected = False
            link.state = LinkState.DEAD

    def get(self, origin: int) -> Optional[ControllerLink]:
        return self._links.get(origin)

    def origins(self) -> List[int]:
        return sorted(self._links)

    def __len__(self) -> int:
        return len(self._links)

    @property
    def primary(self) -> Optional[ControllerLink]:
        return self._links.get(0)


class UeControllerMap:
    """UE-to-controller association (§4.1.2).

    RAN functions consult :meth:`visible_ues` when serving a
    subscription so each controller only sees its own UEs — the
    slicing of the MAC statistics SM in the virtualization design
    (§6.2) is built on exactly this lookup.
    """

    def __init__(self) -> None:
        self._by_controller: Dict[int, Set[int]] = {}
        self._all_ues: Set[int] = set()

    def ue_attached(self, ue_id: int) -> None:
        """A UE arrived; it becomes visible to the first controller."""
        self._all_ues.add(ue_id)

    def ue_detached(self, ue_id: int) -> None:
        self._all_ues.discard(ue_id)
        for ues in self._by_controller.values():
            ues.discard(ue_id)

    def associate(self, ue_id: int, origin: int) -> None:
        """Expose ``ue_id`` to the controller at ``origin``.

        Triggered by a controller (e.g. the CU controller informing the
        DU agent after decoding the UE's PLMN, Fig. 4 step 4); raises
        if the UE is unknown so misconfigurations surface immediately.
        """
        if ue_id not in self._all_ues:
            raise KeyError(f"unknown UE {ue_id}")
        self._by_controller.setdefault(origin, set()).add(ue_id)

    def dissociate(self, ue_id: int, origin: int) -> None:
        self._by_controller.get(origin, set()).discard(ue_id)

    def visible_ues(self, origin: int) -> Set[int]:
        """UEs the controller at ``origin`` may observe/control."""
        if origin == 0:
            return set(self._all_ues)
        return set(self._by_controller.get(origin, set()))

    def controllers_for(self, ue_id: int) -> List[int]:
        """Origins (beyond the primary) that see ``ue_id``."""
        return sorted(
            origin for origin, ues in self._by_controller.items() if ue_id in ues
        )

    @property
    def all_ues(self) -> Set[int]:
        return set(self._all_ues)
