"""Generic RAN function API (§4.1.1).

A RAN function is "controllable functionality within an E2 node".  The
agent library defines three callbacks a RAN function must implement —
subscription request, subscription delete, and control — plus an
emission path for indications.  Pre-defined service models
(:mod:`repro.sm`) implement this interface; base stations may add
custom functions the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.e2ap.ies import (
    RicActionAdmitted,
    RicActionDefinition,
    RicActionNotAdmitted,
    RicRequestId,
)
from repro.core.e2ap.messages import RicIndication, RicIndicationKind
from repro.core.e2ap.procedures import Cause


@dataclass(frozen=True)
class SubscriptionHandle:
    """Identity of one active subscription at the agent.

    ``origin`` is the controller connection index (0 = first
    controller) — RAN functions use it to expose only the UEs
    associated with that controller (§4.1.2).
    """

    origin: int
    request: RicRequestId
    ran_function_id: int

    def key(self) -> Tuple[int, int, int, int]:
        return (self.origin, *self.request.as_tuple(), self.ran_function_id)


@dataclass
class ControlOutcome:
    """Result of a control callback: ack with outcome bytes or failure."""

    success: bool
    outcome: bytes = b""
    cause: Optional[Cause] = None

    @classmethod
    def ok(cls, outcome: bytes = b"") -> "ControlOutcome":
        return cls(success=True, outcome=outcome)

    @classmethod
    def fail(cls, cause: Cause) -> "ControlOutcome":
        return cls(success=False, cause=cause)


class IndicationSink:
    """Where a RAN function hands completed indications.

    The agent implements this; the indirection keeps RAN functions
    free of any knowledge of transport or encoding (the E2AP
    abstraction boundary, §4.3).
    """

    def send_indication(self, origin: int, indication: RicIndication) -> None:
        raise NotImplementedError

    def send_indications(self, origin: int, indications: Sequence[RicIndication]) -> None:
        """Hand over a burst of indications for the same controller.

        Default falls back to one ``send_indication`` per item; the
        agent overrides it to coalesce the burst into one transport
        write.
        """
        for indication in indications:
            self.send_indication(origin, indication)


class RanFunction:
    """Base class for agent-side RAN functions.

    Lifecycle: the base station constructs the function, registers it
    with the agent, and the agent calls :meth:`bind` before the first
    message arrives.  Subclasses override the three ``on_*`` callbacks.
    """

    def __init__(self, ran_function_id: int, name: str, oid: str, revision: int = 1) -> None:
        self.ran_function_id = ran_function_id
        self.name = name
        self.oid = oid
        self.revision = revision
        self._sink: Optional[IndicationSink] = None
        self._sequences: Dict[Tuple, int] = {}
        self.subscriptions: Dict[Tuple, SubscriptionHandle] = {}

    # -- agent-facing ------------------------------------------------

    def bind(self, sink: IndicationSink) -> None:
        """Attach the indication sink (called once by the agent)."""
        self._sink = sink

    def definition_bytes(self) -> bytes:
        """Self-description advertised in the E2 setup request."""
        descriptor = f"{self.oid};{self.name};rev{self.revision}"
        return descriptor.encode("utf-8")

    # -- callbacks the SM implements (§4.1.1) ------------------------

    def on_subscription(
        self,
        handle: SubscriptionHandle,
        event_trigger: bytes,
        actions: List[RicActionDefinition],
    ) -> Tuple[List[RicActionAdmitted], List[RicActionNotAdmitted]]:
        """Handle a new subscription; admit or reject each action.

        The default rejects everything — a function that does not
        override this is control-only.
        """
        rejected = [
            RicActionNotAdmitted(
                action_id=action.action_id,
                cause_kind=0,
                cause_value=Cause.ACTION_NOT_SUPPORTED,
            )
            for action in actions
        ]
        return [], rejected

    def on_subscription_delete(self, handle: SubscriptionHandle) -> bool:
        """Remove a subscription; returns False if it was unknown."""
        return self.subscriptions.pop(handle.key(), None) is not None

    def on_control(self, origin: int, header: bytes, payload: bytes) -> ControlOutcome:
        """Execute a control action.  Default: unsupported."""
        return ControlOutcome.fail(
            Cause.ric_request(Cause.CONTROL_MESSAGE_INVALID, "control not supported")
        )

    # -- helpers for subclasses --------------------------------------

    def admit_all(
        self, handle: SubscriptionHandle, actions: List[RicActionDefinition]
    ) -> Tuple[List[RicActionAdmitted], List[RicActionNotAdmitted]]:
        """Record the subscription and admit every requested action."""
        self.subscriptions[handle.key()] = handle
        return [RicActionAdmitted(action.action_id) for action in actions], []

    def emit(
        self,
        handle: SubscriptionHandle,
        action_id: int,
        header: bytes,
        payload: bytes,
        kind: RicIndicationKind = RicIndicationKind.REPORT,
    ) -> None:
        """Send an indication for an active subscription."""
        if self._sink is None:
            raise RuntimeError(f"RAN function {self.name} not bound to an agent")
        key = handle.key()
        sequence = self._sequences.get(key, 0)
        self._sequences[key] = sequence + 1
        indication = RicIndication(
            request=handle.request,
            ran_function_id=self.ran_function_id,
            action_id=action_id,
            sequence=sequence,
            kind=kind,
            header=header,
            payload=payload,
        )
        self._sink.send_indication(handle.origin, indication)

    def emit_many(
        self,
        handle: SubscriptionHandle,
        entries: Sequence[Tuple[int, bytes, bytes]],
        kind: RicIndicationKind = RicIndicationKind.REPORT,
    ) -> None:
        """Send one indication per ``(action_id, header, payload)``.

        Sequence numbers stay consecutive per subscription exactly as
        repeated :meth:`emit` calls would produce; the burst reaches
        the transport as one coalesced write.
        """
        if self._sink is None:
            raise RuntimeError(f"RAN function {self.name} not bound to an agent")
        if not entries:
            return
        key = handle.key()
        sequence = self._sequences.get(key, 0)
        indications = []
        for action_id, header, payload in entries:
            indications.append(
                RicIndication(
                    request=handle.request,
                    ran_function_id=self.ran_function_id,
                    action_id=action_id,
                    sequence=sequence,
                    kind=kind,
                    header=header,
                    payload=payload,
                )
            )
            sequence += 1
        self._sequences[key] = sequence
        if len(indications) == 1:
            self._sink.send_indication(handle.origin, indications[0])
        else:
            self._sink.send_indications(handle.origin, indications)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.ran_function_id}, name={self.name!r})"
