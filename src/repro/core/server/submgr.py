"""Subscription management (§4.2.2).

Keeps track of existing subscriptions and delivers arriving
subscription-related messages to the corresponding iApps.  The lookup
key is the RIC request id the server minted for the subscription; with
the FlatBuffers-style codec the server reads that key zero-copy from
the raw indication bytes, which is the mechanism behind the 4x CPU gap
of Fig. 8b.

Concurrency model (sharded ingest): the indication hot path runs on
several transport shard threads at once, so routing reads a
*copy-on-write snapshot* dict without taking any lock — replacing a
dict reference is atomic under the GIL.  Every mutation (create,
confirm-side removal, park/adopt, drop) happens on the slow path under
``_lock`` and finishes by publishing a rebuilt snapshot.  A reader may
briefly observe the previous snapshot — at worst an indication routes
to a record that was just removed or misses one that was just created,
the same races a network reordering already produces.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.cow import publish_snapshot
from repro.analysis.markers import cow_mutator, cow_snapshot
from repro.metrics.counters import get_counter
from repro.metrics.trace import TRACER as _TRACER
from repro.core.e2ap.ies import RicActionDefinition, RicRequestId
from repro.core.e2ap.messages import (
    RicSubscriptionDeleteResponse,
    RicSubscriptionFailure,
    RicSubscriptionResponse,
)


@dataclass
class SubscriptionCallbacks:
    """Callbacks an iApp provides with a subscription request (§4.2.2).

    All optional; ``on_indication`` receives the server's lazy
    :class:`~repro.core.server.server.IndicationEvent`.
    """

    on_success: Optional[Callable[[RicSubscriptionResponse], None]] = None
    on_failure: Optional[Callable[[RicSubscriptionFailure], None]] = None
    on_indication: Optional[Callable[["IndicationEventLike"], None]] = None
    on_deleted: Optional[Callable[[RicSubscriptionDeleteResponse], None]] = None


# Structural alias: anything exposing request/ran_function_id/payload.
IndicationEventLike = object


@dataclass
class SubscriptionRecord:
    """One live (or pending) subscription."""

    request: RicRequestId
    conn_id: int
    ran_function_id: int
    callbacks: SubscriptionCallbacks
    actions: List[RicActionDefinition] = field(default_factory=list)
    confirmed: bool = False
    indications_seen: int = 0
    #: the event trigger the iApp subscribed with, kept so the server
    #: can re-issue the request verbatim when a stale node recovers.
    event_trigger: bytes = b""
    #: True while the owning node is stale: the record is retained
    #: (same request id) but awaiting resync to a fresh connection.
    parked: bool = False
    #: number of times this subscription was resynced after a node
    #: recovery (diagnostics for the chaos suite).
    resyncs: int = 0
    #: additional iApp sinks sharing this wire subscription (single-
    #: encode fan-out, DESIGN.md §15): the agent encodes and frames one
    #: indication, the server hands the same decoded event to the
    #: primary callbacks and every extra sink.
    extra_sinks: List[SubscriptionCallbacks] = field(default_factory=list)
    #: the confirm response, kept so a sink attaching after the wire
    #: subscription confirmed can replay ``on_success`` immediately.
    response: Optional["RicSubscriptionResponse"] = None


class SinkHandle:
    """Per-attach handle onto a shared :class:`SubscriptionRecord`.

    Returned by :meth:`SubscriptionManager.attach_sink` (and therefore
    by ``Server.subscribe`` when a request rides an existing wire
    subscription).  The handle remembers *which* callbacks this
    subscriber attached, so ``unsubscribe`` detaches exactly that sink
    — not an arbitrary one.  Attribute reads delegate to the shared
    record, so callers can keep treating the return value of
    ``subscribe`` as a record (``.request``, ``.confirmed``, ...).
    """

    __slots__ = ("record", "sink")

    def __init__(self, record: SubscriptionRecord, sink: SubscriptionCallbacks) -> None:
        self.record = record
        self.sink = sink

    def __getattr__(self, name):
        return getattr(self.record, name)


@cow_snapshot("_route")
class SubscriptionManager:
    """Mints request ids, tracks records, dispatches by key."""

    def __init__(self, requestor_id: int = 1) -> None:
        self.requestor_id = requestor_id
        self._instance_ids = itertools.count(1)
        self._records: Dict[Tuple[int, int], SubscriptionRecord] = {}
        #: copy-on-write routing snapshot: replaced (never mutated in
        #: place) under ``_lock``, read lock-free on the hot path.
        self._route: Dict[Tuple[int, int], SubscriptionRecord] = publish_snapshot({})
        self._lock = threading.RLock()

    @cow_mutator
    def _publish(self) -> None:
        """Rebuild the routing snapshot; callers hold ``_lock``."""
        self._route = publish_snapshot(dict(self._records))

    def create(
        self,
        conn_id: int,
        ran_function_id: int,
        callbacks: SubscriptionCallbacks,
        actions: Optional[List[RicActionDefinition]] = None,
        requestor_id: Optional[int] = None,
        event_trigger: bytes = b"",
    ) -> SubscriptionRecord:
        """Allocate a request id and register the pending record.

        ``requestor_id`` may be overridden per subscription so a
        controller hosting several applications keeps their
        transactions distinguishable (xApp multiplexing, §6.3).
        """
        request = RicRequestId(
            requestor_id=self.requestor_id if requestor_id is None else requestor_id,
            instance_id=next(self._instance_ids),
        )
        record = SubscriptionRecord(
            request=request,
            conn_id=conn_id,
            ran_function_id=ran_function_id,
            callbacks=callbacks,
            actions=list(actions or ()),
            event_trigger=bytes(event_trigger),
        )
        with self._lock:
            self._records[request.as_tuple()] = record
            self._publish()
        return record

    def lookup(self, requestor_id: int, instance_id: int) -> Optional[SubscriptionRecord]:
        """O(1) lock-free dispatch lookup on the indication hot path."""
        return self._route.get((requestor_id, instance_id))

    def confirm(self, response: RicSubscriptionResponse) -> Optional[SubscriptionRecord]:
        # The confirmed/response flip and the sink snapshot happen
        # atomically under _lock so a concurrently attaching sink gets
        # on_success exactly once: either it appended before this
        # snapshot (notified below) or it appended after, in which case
        # attach_sink observed confirmed=True and replays the stored
        # response itself.
        with self._lock:
            record = self._records.get(response.request.as_tuple())
            if record is None:
                return None
            record.response = response
            record.confirmed = True
            sinks = list(record.extra_sinks)
        if record.callbacks.on_success is not None:
            record.callbacks.on_success(response)
        for sink in sinks:
            if sink.on_success is not None:
                sink.on_success(response)
        return record

    def fail(self, failure: RicSubscriptionFailure) -> Optional[SubscriptionRecord]:
        with self._lock:
            record = self._records.pop(failure.request.as_tuple(), None)
            self._publish()
            sinks = list(record.extra_sinks) if record is not None else []
        if record is None:
            return None
        if record.callbacks.on_failure is not None:
            record.callbacks.on_failure(failure)
        for sink in sinks:
            if sink.on_failure is not None:
                sink.on_failure(failure)
        return record

    # -- shared wire subscriptions (single-encode fan-out) -------------

    def find_shared(
        self,
        conn_id: int,
        ran_function_id: int,
        event_trigger: bytes,
        actions: Optional[List[RicActionDefinition]],
        requestor_id: Optional[int],
    ) -> Optional[SubscriptionRecord]:
        """An existing live record this subscription could share.

        Equality is on everything the agent sees on the wire: the
        connection, the RAN function, the event trigger, the action
        list, and the requestor id.  Parked records are skipped — a
        record mid-resync is not a safe attach target.
        """
        trigger = bytes(event_trigger)
        wanted_actions = list(actions or ())
        wanted_requestor = (
            self.requestor_id if requestor_id is None else requestor_id
        )
        with self._lock:
            for record in self._records.values():
                if (
                    not record.parked
                    and record.conn_id == conn_id
                    and record.ran_function_id == ran_function_id
                    and record.request.requestor_id == wanted_requestor
                    and record.event_trigger == trigger
                    and record.actions == wanted_actions
                ):
                    return record
        return None

    def attach_sink(
        self, record: SubscriptionRecord, callbacks: SubscriptionCallbacks
    ) -> SinkHandle:
        """Add an extra sink to a shared record (no wire traffic).

        A sink attaching after the wire subscription confirmed gets the
        stored response replayed, so its ``on_success`` contract holds.
        The append and the confirmed check are one atomic step under
        ``_lock``, pairing with :meth:`confirm`'s locked snapshot: the
        sink is notified by exactly one of the two paths.
        """
        with self._lock:
            record.extra_sinks.append(callbacks)
            replay = record.confirmed and record.response is not None
            response = record.response
        get_counter("server.subscription.shared").incr()
        if replay and callbacks.on_success is not None:
            callbacks.on_success(response)
        return SinkHandle(record, callbacks)

    def detach_sink(self, handle) -> bool:
        """Detach one subscriber from a shared record.

        ``handle`` is either the :class:`SinkHandle` an attach returned
        (detaches exactly that sink) or the plain
        :class:`SubscriptionRecord` the primary subscriber holds (the
        earliest-attached extra sink, if any, is promoted to primary so
        the wire subscription survives the primary leaving).

        Returns True when the wire subscription stays up for remaining
        subscribers; False means this was the last one and the caller
        owns the actual wire delete.
        """
        with self._lock:
            if isinstance(handle, SinkHandle):
                record = handle.record
                for i, sink in enumerate(record.extra_sinks):
                    if sink is handle.sink:
                        # New list, never in-place: deliver_indication
                        # iterates extra_sinks lock-free.
                        record.extra_sinks = (
                            record.extra_sinks[:i] + record.extra_sinks[i + 1 :]
                        )
                        return True
                if record.callbacks is not handle.sink:
                    # Already detached (double unsubscribe) and someone
                    # else owns the record: nothing to tear down.
                    return True
            else:
                record = handle
            # Primary leaving: promote the earliest-attached sink so
            # the subscribers still riding the record keep receiving.
            if record.extra_sinks:
                promoted = record.extra_sinks[0]
                record.extra_sinks = record.extra_sinks[1:]
                record.callbacks = promoted
                return True
        return False

    def deliver_indication(self, event) -> Optional[SubscriptionRecord]:
        """Route an indication to its iApp; returns the record or None.

        ``event`` must expose ``requestor_id``/``instance_id`` cheaply
        (lazy header peek); the payload is only touched by the iApp.
        With tracing enabled the lookup plus the iApp callback are
        recorded as one ``dispatch`` span, correlated on the request id
        — the "dispatch-to-iApp" stage of the Fig. 9 decomposition.
        """
        tracer = _TRACER
        trace_start = time.perf_counter() if tracer.enabled else 0.0
        try:
            key = event.route_key()
        except AttributeError:
            key = (event.requestor_id, event.instance_id)
        record = self._route.get(key)
        if record is None:
            return None
        record.indications_seen += 1
        if record.callbacks.on_indication is not None:
            record.callbacks.on_indication(event)
        sinks = record.extra_sinks
        if sinks:
            # Fan-out without re-encode: every extra sink sees the same
            # decoded event the wire delivered once.  Each sink served
            # here is one encode+frame+send the agent did not perform.
            get_counter("encode.reuse").incr(len(sinks))
            for sink in sinks:
                if sink.on_indication is not None:
                    sink.on_indication(event)
        if trace_start:
            tracer.record(
                "dispatch",
                trace_start,
                key,
                procedure="ric_indication",
            )
        return record

    def remove(self, request: RicRequestId) -> Optional[SubscriptionRecord]:
        with self._lock:
            record = self._records.pop(request.as_tuple(), None)
            self._publish()
        return record

    def deleted(self, response: RicSubscriptionDeleteResponse) -> Optional[SubscriptionRecord]:
        with self._lock:
            record = self._records.pop(response.request.as_tuple(), None)
            self._publish()
            sinks = list(record.extra_sinks) if record is not None else []
        if record is not None:
            if record.callbacks.on_deleted is not None:
                record.callbacks.on_deleted(response)
            for sink in sinks:
                if sink.on_deleted is not None:
                    sink.on_deleted(response)
        return record

    def records_for_conn(self, conn_id: int) -> List[SubscriptionRecord]:
        return [record for record in self._records.values() if record.conn_id == conn_id]

    def drop_conn(self, conn_id: int) -> int:
        """Purge all subscriptions of a vanished agent; returns count."""
        with self._lock:
            keys = [key for key, record in self._records.items() if record.conn_id == conn_id]
            for key in keys:
                del self._records[key]
            self._publish()
        return len(keys)

    # -- stale-node lifecycle (server resync) -------------------------

    def park_conn(self, conn_id: int) -> List[SubscriptionRecord]:
        """Park a stale node's subscriptions instead of purging them.

        The records keep their request ids — the whole point: when the
        node re-attaches within its grace window the server re-issues
        the same requests and the iApps' callbacks never notice the
        outage.  Returns the records parked now.
        """
        parked = []
        with self._lock:
            for record in self._records.values():
                if record.conn_id == conn_id and not record.parked:
                    record.parked = True
                    record.confirmed = False
                    parked.append(record)
        return parked

    def adopt(self, records: List[SubscriptionRecord], new_conn_id: int) -> None:
        """Re-home parked records onto the recovered node's connection."""
        with self._lock:
            for record in records:
                record.conn_id = new_conn_id
                record.parked = False
                record.resyncs += 1

    def terminal_fail(self, record: SubscriptionRecord, failure: RicSubscriptionFailure) -> None:
        """Grace expired: remove the record and tell its iApp the
        subscription is gone for good."""
        with self._lock:
            self._records.pop(record.request.as_tuple(), None)
            self._publish()
            sinks = list(record.extra_sinks)
        if record.callbacks.on_failure is not None:
            record.callbacks.on_failure(failure)
        for sink in sinks:
            if sink.on_failure is not None:
                sink.on_failure(failure)

    def parked_records(self) -> List[SubscriptionRecord]:
        return [record for record in self._records.values() if record.parked]

    def active_records(self) -> List[SubscriptionRecord]:
        """Non-parked records (the chaos suite's duplicate check)."""
        return [record for record in self._records.values() if not record.parked]

    def __len__(self) -> int:
        return len(self._records)
