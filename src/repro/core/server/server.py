"""FlexRIC server core (§4.2.2).

Multiplexes agent connections and dispatches E2AP messages between
agents and iApps.  Design properties carried over from the paper:

* **event-driven** — iApps are invoked only when messages arrive,
  never by polling;
* **stateless indication path** — an indication is routed by a single
  O(1) lookup on its request id; with the FlatBuffers-style codec the
  id is read zero-copy from the raw bytes (no decode pass);
* **no SM logic** — the server implements no service model and never
  requests information by itself; iApps trigger all SM communication.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.cow import publish_snapshot
from repro.analysis.markers import cow_mutator, cow_snapshot
from repro.core.codec.base import Codec, CodecError, get_codec
from repro.core.e2ap.ies import GlobalE2NodeId, RicActionDefinition, RicRequestId
from repro.core.e2ap.messages import (
    E2Message,
    E2SetupFailure,
    E2SetupRequest,
    E2SetupResponse,
    RicControlAcknowledge,
    RicControlFailure,
    RicControlRequest,
    RicIndication,
    RicIndicationKind,
    RicServiceQuery,
    RicServiceUpdate,
    RicServiceUpdateAcknowledge,
    RicSubscriptionDeleteRequest,
    RicSubscriptionDeleteResponse,
    RicSubscriptionFailure,
    RicSubscriptionRequest,
    RicSubscriptionResponse,
    decode_message,
    encode_message,
)
from repro.core.e2ap.procedures import Cause, CauseKind, MessageClass, ProcedureCode
from repro.core.overload import (
    AdmissionController,
    BoundedWorkerPool,
    OverloadConfig,
    frame_classifier,
)
from repro.core.server import events as topics
from repro.core.server.events import EventBus
from repro.core.server.iapp import IApp
from repro.core.server.randb import AgentRecord, RanDatabase, RanEntity
from repro.core.server.submgr import (
    SinkHandle,
    SubscriptionCallbacks,
    SubscriptionManager,
    SubscriptionRecord,
)
from repro.core.transport.base import (
    DisconnectReason,
    Endpoint,
    Listener,
    Transport,
    TransportEvents,
)
from repro.metrics.counters import counter_values, gauge_values, get_counter
from repro.metrics.cpu import CpuMeter
from repro.metrics.memory import MemoryMeter
from repro.metrics.trace import TRACER as _TRACER


@dataclass
class ServerConfig:
    """Static server configuration.

    ``indication_workers`` enables the multi-thread extension of §4.4:
    "given that the handling of indication messages in the server
    library is stateless, it is possible to pass messages to different
    threads, facilitated by the event-based system".  0 (default)
    dispatches inline on the transport thread — the paper's
    single-threaded implementation; N > 0 hands each indication to a
    worker pool (POSIX sockets being thread-safe, replies may be sent
    from any worker).
    """

    ric_id: int = 1
    e2ap_codec: str = "fb"
    indication_workers: int = 0
    #: grace window (seconds) a disconnected node is kept *stale* in
    #: the RANDB awaiting re-attachment.  0 (default) keeps the legacy
    #: behaviour: disconnect purges the node and its subscriptions.
    stale_grace_s: float = 0.0
    #: idle interval after which a RIC service query keepalive is sent
    #: (0 disables liveness probing).
    keepalive_interval_s: float = 0.0
    #: unanswered keepalives tolerated before the node is declared
    #: silently dead and pushed down the stale path.
    keepalive_misses: int = 3
    #: transport ingest shards (§4.4 multi-loop extension): number of
    #: independent selector/dispatch loops a transport built through
    #: :meth:`Server.create_transport` runs.  1 reproduces the paper's
    #: single-threaded event loop exactly; the default scales with the
    #: host but stays modest — ingest shards are I/O loops, not compute
    #: workers.
    shards: int = field(default_factory=lambda: min(4, os.cpu_count() or 1))
    #: overload discipline (DESIGN.md §13): bounded class-aware ingest
    #: queues, setup/subscription admission control, degrade states.
    #: None (default) keeps the unbounded legacy behaviour exactly.
    overload: Optional[OverloadConfig] = None
    #: multiprocess ingest (DESIGN.md §14): N > 0 runs N worker
    #: *processes*, each owning a full server + SO_REUSEPORT listener,
    #: supervised by :class:`repro.core.server.workers.MultiProcServer`.
    #: 0 (default) keeps everything in this process.  A ``Server``
    #: built directly ignores the field — it configures the supervisor,
    #: which forks workers with ``workers=0`` copies of this config.
    workers: int = 0
    #: single-encode fan-out (DESIGN.md §15): a subscribe() whose wire
    #: parameters (connection, RAN function, event trigger, actions,
    #: requestor) match a live subscription attaches as an extra sink
    #: on the existing record instead of creating a second wire
    #: subscription — the agent encodes and sends each indication once
    #: and the server fans the decoded event out locally.
    shared_subscriptions: bool = True


#: hoisted: the indication hot loop compares against this constant.
_IND_CODE = int(ProcedureCode.RIC_INDICATION)


def _procedure_name(procedure: int) -> str:
    """Span label for a procedure code; tolerant of unknown codes."""
    try:
        return ProcedureCode(procedure).name.lower()
    except ValueError:
        return f"procedure_{procedure}"


class IndicationEvent:
    """Lazy view of a RIC indication delivered to an iApp.

    Header fields (request id, function id, action, sequence) are read
    from the already-available value tree; the SM ``payload`` bytes are
    extracted only when accessed.  With the FlatBuffers-style E2AP
    codec the underlying tree is itself lazy, so routing an indication
    touches a handful of scalars — the paper's zero-copy dispatch.
    """

    __slots__ = ("conn_id", "_body", "_requestor", "_instance", "_payload", "_header")

    def __init__(self, conn_id: int, body: Any) -> None:
        self.conn_id = conn_id
        self._body = body
        self._requestor: Optional[int] = None
        self._instance: Optional[int] = None
        self._payload: Optional[bytes] = None
        self._header: Optional[bytes] = None

    def _load_request(self) -> None:
        # Routing reads the request id at least twice per indication
        # (subscription lookup, then the iApp); resolve the lazy "q"
        # table once and keep the scalars.  Flat views read both ints
        # with one fused unpack; plain-dict codecs take the dict path.
        request = self._body["q"]
        if request.__class__ is dict:
            self._requestor = request["r"]
            self._instance = request["i"]
            return
        try:
            self._requestor, self._instance = request.int_pair("r", "i")
        except AttributeError:
            self._requestor = request["r"]
            self._instance = request["i"]

    def route_key(self) -> Tuple[int, int]:
        """``(requestor, instance)`` — the submgr routing key."""
        if self._requestor is None:
            self._load_request()
        return (self._requestor, self._instance)

    @property
    def requestor_id(self) -> int:
        if self._requestor is None:
            self._load_request()
        return self._requestor

    @property
    def instance_id(self) -> int:
        if self._instance is None:
            self._load_request()
        return self._instance

    @property
    def request(self) -> RicRequestId:
        return RicRequestId(self.requestor_id, self.instance_id)

    @property
    def ran_function_id(self) -> int:
        return self._body["f"]

    @property
    def action_id(self) -> int:
        return self._body["a"]

    @property
    def sequence(self) -> int:
        return self._body["s"]

    @property
    def kind(self) -> RicIndicationKind:
        return RicIndicationKind(self._body["k"])

    @property
    def header(self) -> bytes:
        if self._header is None:
            self._header = self._body["h"]
        return self._header

    @property
    def payload(self) -> bytes:
        if self._payload is None:
            self._payload = self._body["m"]
        return self._payload

    def full(self) -> RicIndication:
        """Materialize the complete dataclass (tests, relays)."""
        return RicIndication.from_value(self._body)


@dataclass
class _ConnState:
    """Server-side state of one agent connection."""

    conn_id: int
    endpoint: Endpoint
    record: Optional[AgentRecord] = None  # set after E2 setup
    #: monotonic timestamp of the last message from this agent.
    last_seen: float = 0.0
    #: keepalive queries sent since ``last_seen`` moved.
    pending_queries: int = 0
    #: cached ``server.shard.N.rx`` counter for this connection's
    #: transport shard (resolved lazily on the first batch delivery).
    rx_counter: Any = None


@dataclass
class _StaleNode:
    """A disconnected node riding out its grace window."""

    record: AgentRecord
    subscriptions: List[SubscriptionRecord]
    deadline: float


@cow_snapshot("_route_by_endpoint", "_route_conns")
class Server:
    """The controller side of the FlexRIC SDK."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        cpu_meter: Optional[CpuMeter] = None,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServerConfig()
        #: injectable clock (tests drive grace/keepalive deadlines
        #: with a fake time source; production uses ``time.monotonic``).
        self.time_fn = time_fn
        self.codec: Codec = get_codec(self.config.e2ap_codec)
        #: one-pass (procedure, class, body) extraction for the batched
        #: ingest; codecs without a fast path fall back to a full walk.
        self._decode_route = getattr(self.codec, "decode_route", self._generic_route)
        self._node_label = f"ric-{self.config.ric_id}"
        self.cpu = cpu_meter or CpuMeter(f"server-{self.config.ric_id}")
        self.memory = MemoryMeter(f"server-{self.config.ric_id}")
        self.events = EventBus()
        self.randb = RanDatabase()
        self.submgr = SubscriptionManager()
        self._iapps: List[IApp] = []
        self._conns: Dict[int, _ConnState] = {}
        self._conn_ids = itertools.count(1)
        self._by_endpoint: Dict[int, _ConnState] = {}
        self._pending_controls: Dict[Tuple[int, int], Callable[[E2Message], None]] = {}
        #: (conn_id, ErrorIndication) pairs received from agents.
        self.errors_seen: List[Tuple[int, E2Message]] = []
        self._control_instances = itertools.count(1)
        self._listeners: List[Listener] = []
        self._lock = threading.Lock()
        #: copy-on-write routing snapshots (see ``_rebuild_routes``):
        #: read lock-free on the per-message hot paths, replaced under
        #: ``_lock`` whenever connection state changes.
        self._route_by_endpoint: Dict[int, _ConnState] = publish_snapshot({})
        self._route_conns: Dict[int, _ConnState] = publish_snapshot({})
        #: serializes the stateful slow path (setup, subscription
        #: outcomes, lifecycle) across transport shard threads.  The
        #: indication hot path never takes it.  Always acquired
        #: *outside* ``_lock``.
        self._slow_lock = threading.RLock()
        #: stale nodes awaiting re-attachment, keyed by node identity.
        self._stale: Dict[GlobalE2NodeId, _StaleNode] = {}
        self._liveness_thread: Optional[threading.Thread] = None
        self._liveness_running = False
        #: overload discipline (None = legacy unbounded behaviour).
        self.overload = self.config.overload
        self._classify = (
            frame_classifier(self.codec) if self.overload is not None else None
        )
        self.admission = (
            AdmissionController(self.overload, time_fn=self.time_fn)
            if self.overload is not None
            else None
        )
        self._pool = None
        if self.config.indication_workers > 0:
            if self.overload is not None:
                # Bounded hand-off: a worker backlog past the configured
                # depth drops the indication (counted) instead of
                # queueing unboundedly inside the executor.
                self._pool = BoundedWorkerPool(
                    workers=self.config.indication_workers,
                    max_depth=self.overload.worker_queue_depth,
                )
            else:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.indication_workers,
                    thread_name_prefix="ind-worker",
                )
        self.memory.track("randb", lambda: self.randb)
        self.memory.track("submgr", lambda: self.submgr)

    # -- lifecycle -----------------------------------------------------

    def transport_events(self) -> TransportEvents:
        """This server's ingest callbacks, bundled for a transport.

        Public so adopted connections (the accept-and-hand-off fallback
        of DESIGN.md §14, where sockets arrive via fd passing rather
        than a local listener) wire into the same dispatch pipeline.
        """
        return TransportEvents(
            on_connected=self._on_connected,
            on_message=self._on_message,
            on_disconnected=self._on_disconnected,
            on_messages=self._on_messages,
        )

    def listen(self, transport: Transport, address: str) -> Listener:
        """Accept agent connections on ``address``."""
        listener = transport.listen(address, self.transport_events())
        self._listeners.append(listener)
        return listener

    def create_transport(self, kind: str = "tcp") -> Transport:
        """Build a transport honoring ``config.shards``.

        Convenience for deployments and the scale harness: the shard
        knob lives in :class:`ServerConfig` so one config object fully
        describes the ingest topology.
        """
        if kind == "tcp":
            from repro.core.transport.tcp import TcpTransport

            return TcpTransport(
                shards=self.config.shards,
                reuseport=self.config.shards > 1,
                overload=self.overload,
                classify=self._classify,
            )
        if kind == "inproc":
            from repro.core.transport.inproc import InProcTransport

            return InProcTransport(
                shards=self.config.shards,
                overload=self.overload,
                classify=self._classify,
            )
        raise ValueError(f"unknown transport kind: {kind!r}")

    def add_iapp(self, iapp: IApp) -> None:
        """Attach an internal application."""
        self._iapps.append(iapp)
        iapp.attach(self)

    def iapps(self) -> List[IApp]:
        return list(self._iapps)

    def close(self) -> None:
        self.stop_liveness()
        for listener in self._listeners:
            listener.close()
        for state in list(self._conns.values()):
            if not state.endpoint.closed:
                state.endpoint.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    # -- iApp-facing API -------------------------------------------------

    def subscribe(
        self,
        conn_id: int,
        ran_function_id: int,
        event_trigger: bytes,
        actions: List[RicActionDefinition],
        callbacks: SubscriptionCallbacks,
        requestor_id: Optional[int] = None,
    ) -> "SubscriptionRecord | SinkHandle":
        """Send a subscription request on behalf of an iApp/xApp.

        Under overload discipline a subscription storm past the token
        bucket / concurrent-cap is refused locally: the record is never
        registered and ``callbacks.on_failure`` fires synchronously
        with an ADMISSION_REFUSED cause — the same signature a remote
        :class:`RicSubscriptionFailure` would have.

        With ``shared_subscriptions`` (default) a request whose wire
        parameters match a live subscription never reaches the agent:
        the callbacks attach as an extra sink on the existing record
        and a :class:`SinkHandle` (attribute-compatible with the
        record) identifying this subscriber is returned — pass it back
        to :meth:`unsubscribe` to detach exactly this sink.  Admission
        still gates the call (a storm of duplicates is still a storm),
        but the pending slot is released immediately — no wire confirm
        is outstanding.
        """
        admission = self.admission
        if admission is not None and not admission.admit_subscription():
            record = self.submgr.create(
                conn_id=conn_id,
                ran_function_id=ran_function_id,
                callbacks=callbacks,
                actions=actions,
                requestor_id=requestor_id,
                event_trigger=event_trigger,
            )
            self.submgr.remove(record.request)
            if callbacks.on_failure is not None:
                callbacks.on_failure(
                    RicSubscriptionFailure(
                        request=record.request,
                        ran_function_id=ran_function_id,
                        cause=Cause.ric_request(
                            Cause.ADMISSION_REFUSED,
                            "subscription admission refused (overload)",
                        ),
                    )
                )
            return record
        if self.config.shared_subscriptions:
            shared = self.submgr.find_shared(
                conn_id, ran_function_id, event_trigger, actions, requestor_id
            )
            if shared is not None:
                if admission is not None:
                    admission.release_subscription()
                return self.submgr.attach_sink(shared, callbacks)
        record = self.submgr.create(
            conn_id=conn_id,
            ran_function_id=ran_function_id,
            callbacks=callbacks,
            actions=actions,
            requestor_id=requestor_id,
            event_trigger=event_trigger,
        )
        request = RicSubscriptionRequest(
            request=record.request,
            ran_function_id=ran_function_id,
            event_trigger=event_trigger,
            actions=actions,
        )
        self._send(conn_id, request)
        return record

    def unsubscribe(self, record: "SubscriptionRecord | SinkHandle") -> None:
        """Request deletion of an existing subscription.

        Pass back whatever :meth:`subscribe` returned: a
        :class:`SinkHandle` detaches exactly that subscriber's sink,
        and the primary record hands the subscription to the earliest
        remaining sink.  The wire delete goes out only when the last
        subscriber is gone, so other iApps riding the subscription
        keep receiving.
        """
        if self.submgr.detach_sink(record):
            return
        message = RicSubscriptionDeleteRequest(
            request=record.request, ran_function_id=record.ran_function_id
        )
        self._send(record.conn_id, message)

    def control(
        self,
        conn_id: int,
        ran_function_id: int,
        header: bytes,
        payload: bytes,
        on_outcome: Optional[Callable[[E2Message], None]] = None,
        ack_requested: bool = True,
        requestor_id: int = 1,
    ) -> RicRequestId:
        """Send a control request; ``on_outcome`` receives ack/failure."""
        request = RicRequestId(
            requestor_id=requestor_id, instance_id=next(self._control_instances)
        )
        if on_outcome is not None:
            self._pending_controls[request.as_tuple()] = on_outcome
        message = RicControlRequest(
            request=request,
            ran_function_id=ran_function_id,
            header=header,
            payload=payload,
            ack_requested=ack_requested,
        )
        self._send(conn_id, message)
        return request

    def control_many(
        self,
        conn_id: int,
        ran_function_id: int,
        payloads: Sequence[bytes],
        header: bytes = b"",
        ack_requested: bool = True,
        requestor_id: int = 1,
    ) -> List[RicRequestId]:
        """Send a burst of control requests in one coalesced write.

        Semantically identical to calling :meth:`control` once per
        payload (same request-id allocation, same ordering); the batch
        reaches the agent's endpoint through ``send_many`` so a stream
        transport pays one syscall for the whole burst.
        """
        messages: List[E2Message] = []
        ids: List[RicRequestId] = []
        for payload in payloads:
            request = RicRequestId(
                requestor_id=requestor_id, instance_id=next(self._control_instances)
            )
            ids.append(request)
            messages.append(
                RicControlRequest(
                    request=request,
                    ran_function_id=ran_function_id,
                    header=header,
                    payload=payload,
                    ack_requested=ack_requested,
                )
            )
        self._send_batch(conn_id, messages)
        return ids

    def agents(self) -> List[AgentRecord]:
        return self.randb.agents()

    def entity_of(self, conn_id: int) -> Optional[RanEntity]:
        record = self.randb.agent(conn_id)
        if record is None:
            return None
        return self.randb.entity(record.node_id.plmn, record.node_id.nb_id)

    def send_to_agent(self, conn_id: int, message: E2Message) -> None:
        """Escape hatch for relays/virtualization layers."""
        self._send(conn_id, message)

    def overload_state(self) -> Dict[str, Any]:
        """Operator-facing snapshot of the overload discipline.

        Drop counters, queue pressure gauges and admission state in
        one JSON-able dict; served northbound via the ``/metrics/
        overload`` route so :class:`StatsMonitorIApp` and dashboards
        can see degradation as it happens, not post-mortem.
        """
        counters = counter_values()
        gauges = gauge_values()
        return {
            "enabled": self.overload is not None,
            "drops": {
                name: value
                for name, value in counters.items()
                if name.startswith("overload.") and value
            },
            "admission": {
                "rejects": {
                    name: value
                    for name, value in counters.items()
                    if name.startswith("server.admission.") and value
                },
                "state": self.admission.state() if self.admission else None,
            },
            "queues": {
                name: value
                for name, value in gauges.items()
                if name.startswith("queue.")
            },
        }

    # -- transport events ----------------------------------------------

    @cow_mutator
    def _rebuild_routes(self) -> None:
        """Publish fresh routing snapshots; callers hold ``_lock``.

        The snapshots are plain dicts that are *replaced*, never
        mutated, so shard threads may read them without locking (a
        dict-reference load is atomic under the GIL).  A reader racing
        a rebuild sees the previous snapshot — the same window a
        message already in flight during a disconnect always had.
        ``publish_snapshot`` is the identity in production; under
        ``REPRO_ANALYSIS=1`` it returns a mutation-raising proxy.
        """
        self._route_by_endpoint = publish_snapshot(dict(self._by_endpoint))
        self._route_conns = publish_snapshot(dict(self._conns))

    def _on_connected(self, endpoint: Endpoint) -> None:
        state = _ConnState(
            conn_id=next(self._conn_ids),
            endpoint=endpoint,
            last_seen=self.time_fn(),
        )
        with self._lock:
            self._conns[state.conn_id] = state
            self._by_endpoint[id(endpoint)] = state
            self._rebuild_routes()

    def _on_disconnected(
        self, endpoint: Endpoint, reason: Optional[DisconnectReason] = None
    ) -> None:
        with self._slow_lock:
            with self._lock:
                state = self._by_endpoint.pop(id(endpoint), None)
                if state is not None:
                    self._conns.pop(state.conn_id, None)
                self._rebuild_routes()
            if state is None or state.record is None:
                return
            self._node_lost(state.record, state.conn_id, reason)

    def _node_lost(
        self,
        record: AgentRecord,
        conn_id: int,
        reason: Optional[DisconnectReason],
    ) -> None:
        """Common exit for transport-reported and keepalive-declared
        deaths: purge immediately, or park in the grace window."""
        if self.config.stale_grace_s <= 0:
            # Legacy lifecycle: a disconnect is terminal.
            self.submgr.drop_conn(conn_id)
            self.randb.remove_agent(conn_id)
            self._resync_admission_pending()
            self.events.publish(topics.AGENT_DISCONNECTED, record)
            for iapp in self._iapps:
                iapp.on_agent_disconnected(record)
            return
        now = self.time_fn()
        self.randb.mark_stale(conn_id, now)
        parked = self.submgr.park_conn(conn_id)
        stale = self._stale.get(record.node_id)
        if stale is None:
            self._stale[record.node_id] = _StaleNode(
                record=record,
                subscriptions=parked,
                deadline=now + self.config.stale_grace_s,
            )
        else:
            # Node died again inside its window (e.g. a recovery whose
            # link flapped immediately); extend and merge.
            stale.subscriptions = list({id(r): r for r in stale.subscriptions + parked}.values())
            stale.deadline = now + self.config.stale_grace_s
        get_counter("server.node.stale").incr()
        self._resync_admission_pending()
        self.events.publish(topics.NODE_STALE, record)

    def _resync_admission_pending(self) -> None:
        """Recount outstanding subscriptions after a lifecycle event.

        Node loss parks or drops requests whose confirm/fail outcomes
        will never arrive; an exact recount (rare-path O(n)) keeps the
        admission controller's concurrent cap from leaking slots.
        """
        # Re-publish the dispatch pool's depth from ground truth: a
        # dropped connection's queued indications are skipped (not
        # dispatched), so the gauge written at submit time can read
        # stale-high until the next submit — a drop_conn storm would
        # otherwise hold the degraded state on with an empty queue.
        if isinstance(self._pool, BoundedWorkerPool):
            self._pool.pressure.note_depth(len(self._pool))
        if self.admission is None:
            return
        pending = sum(
            1 for rec in self.submgr.active_records() if not rec.confirmed
        )
        self.admission.set_pending(pending)

    def _on_message(self, endpoint: Endpoint, data: bytes) -> None:
        state = self._route_by_endpoint.get(id(endpoint))
        if state is None:
            return
        # Any traffic proves the agent alive: reset the keepalive state.
        state.last_seen = self.time_fn()
        state.pending_queries = 0
        tracer = _TRACER
        trace_start = 0.0
        if tracer.enabled:
            tracer.node = self._node_label
            trace_start = time.perf_counter()
        with self.cpu.measure():
            try:
                tree = self.codec.decode(data)
                procedure = tree["p"]
                msg_class = tree["c"]
            except (CodecError, KeyError, TypeError, ValueError):
                # A corrupted frame (chaos transport, buggy peer) must
                # not take the whole server transport thread down.
                get_counter("server.rx.decode_error").incr()
                get_counter("decode.contained").incr()
                return
            if procedure == int(ProcedureCode.RIC_INDICATION):
                # Hot path: route on header scalars only.  Handling is
                # stateless, so it may run on a worker thread (§4.4).
                event = IndicationEvent(state.conn_id, tree["v"])
                if trace_start:
                    # Forcing the request-id read here is the decode
                    # cost the span is meant to charge.
                    tracer.record(
                        "decode",
                        trace_start,
                        (event.requestor_id, event.instance_id),
                        procedure="ric_indication",
                    )
                if self._pool is not None:
                    self._pool.submit(self.submgr.deliver_indication, event)
                else:
                    self.submgr.deliver_indication(event)
                return
            if trace_start:
                tracer.record(
                    "decode", trace_start, procedure=_procedure_name(procedure)
                )
                dispatch_start = time.perf_counter()
                self._handle_slow_path(state, procedure, msg_class, tree["v"])
                tracer.record(
                    "dispatch", dispatch_start, procedure=_procedure_name(procedure)
                )
                return
            self._handle_slow_path(state, procedure, msg_class, tree["v"])

    def _generic_route(self, data: bytes) -> Tuple[int, int, Any]:
        tree = self.codec.decode(data)
        return tree["p"], tree["c"], tree["v"]

    def _on_messages(self, endpoint: Endpoint, batch: Sequence[bytes]) -> None:
        """Batched delivery from a sharded transport (drain-and-batch).

        The per-message path pays a liveness-bookkeeping write, a CPU
        measurement context and a tracer check for every frame; a
        drained burst pays each of those once.  With tracing enabled
        the batch falls back to the per-message path so the recorded
        span sequence is identical to the single-loop transport.
        """
        if _TRACER.enabled:
            for data in batch:
                self._on_message(endpoint, data)
            return
        state = self._route_by_endpoint.get(id(endpoint))
        if state is None:
            return
        state.last_seen = self.time_fn()
        state.pending_queries = 0
        if state.rx_counter is None:
            shard = getattr(endpoint, "shard", 0)
            state.rx_counter = get_counter(f"server.shard.{shard}.rx")
        state.rx_counter.incr(len(batch))
        # Hot loop: every name the loop touches is a local.
        route = self._decode_route
        deliver = self.submgr.deliver_indication
        pool = self._pool
        conn_id = state.conn_id
        with self.cpu.measure():
            for data in batch:
                try:
                    procedure, msg_class, body = route(data)
                except (CodecError, KeyError, TypeError, ValueError):
                    get_counter("server.rx.decode_error").incr()
                    get_counter("decode.contained").incr()
                    continue
                if procedure == _IND_CODE:
                    event = IndicationEvent(conn_id, body)
                    if pool is not None:
                        pool.submit(deliver, event)
                    else:
                        deliver(event)
                    continue
                self._handle_slow_path(state, procedure, msg_class, body)

    def _handle_slow_path(
        self, state: _ConnState, procedure: int, msg_class: int, body: Any
    ) -> None:
        with self._slow_lock:
            self._handle_slow_path_locked(state, procedure, msg_class, body)

    def _handle_slow_path_locked(
        self, state: _ConnState, procedure: int, msg_class: int, body: Any
    ) -> None:
        if procedure == int(ProcedureCode.E2_SETUP):
            self._handle_setup(state, E2SetupRequest.from_value(body))
        elif procedure == int(ProcedureCode.RIC_SUBSCRIPTION):
            if msg_class == int(MessageClass.SUCCESSFUL):
                self.submgr.confirm(RicSubscriptionResponse.from_value(body))
            else:
                self.submgr.fail(RicSubscriptionFailure.from_value(body))
            if self.admission is not None:
                self.admission.release_subscription()
        elif procedure == int(ProcedureCode.RIC_SUBSCRIPTION_DELETE):
            if msg_class == int(MessageClass.SUCCESSFUL):
                self.submgr.deleted(RicSubscriptionDeleteResponse.from_value(body))
            else:
                from repro.core.e2ap.messages import RicSubscriptionDeleteFailure

                failure = RicSubscriptionDeleteFailure.from_value(body)
                self.submgr.remove(failure.request)
        elif procedure == int(ProcedureCode.RIC_CONTROL):
            if msg_class == int(MessageClass.SUCCESSFUL):
                outcome: E2Message = RicControlAcknowledge.from_value(body)
            else:
                outcome = RicControlFailure.from_value(body)
            callback = self._pending_controls.pop(outcome.request.as_tuple(), None)
            if callback is not None:
                callback(outcome)
        elif procedure == int(ProcedureCode.RIC_SERVICE_UPDATE):
            self._handle_service_update(state, RicServiceUpdate.from_value(body))
        elif procedure == int(ProcedureCode.E2_NODE_CONFIGURATION_UPDATE):
            from repro.core.e2ap.messages import (
                E2NodeConfigurationUpdate,
                E2NodeConfigurationUpdateAcknowledge,
            )

            update = E2NodeConfigurationUpdate.from_value(body)
            if state.record is not None:
                state.record.config.update(update.config)
                self.events.publish(topics.NODE_CONFIG_UPDATED, (state.record, update))
            state.endpoint.send(
                encode_message(E2NodeConfigurationUpdateAcknowledge(), self.codec)
            )
        elif procedure == int(ProcedureCode.ERROR_INDICATION):
            from repro.core.e2ap.messages import ErrorIndication

            error = ErrorIndication.from_value(body)
            self.errors_seen.append((state.conn_id, error))
            self.events.publish(topics.ERROR_INDICATED, (state.record, error))
        # Unknown procedures are ignored at the server (forward compat).

    def _handle_setup(self, state: _ConnState, request: E2SetupRequest) -> None:
        admission = self.admission
        if admission is not None:
            retry_after = admission.admit_setup()
            if retry_after is not None:
                # Explicit refusal instead of queueing forever: the
                # agent sees an E2SetupFailure with a retry hint and
                # an orderly close, so its reconnect backoff retries
                # later instead of hammering a collapsing server.
                try:
                    state.endpoint.send(
                        encode_message(
                            E2SetupFailure(
                                cause=Cause.ric_request(
                                    Cause.ADMISSION_REFUSED,
                                    "setup admission refused (overload)",
                                ),
                                time_to_wait_s=retry_after,
                            ),
                            self.codec,
                        )
                    )
                    state.endpoint.close()
                except (ConnectionError, OSError):
                    pass
                return
        existing = self.randb.find_node(request.node_id)
        if existing is not None and not existing.stale:
            # Same node identity on a new connection while the old one
            # still looks alive: the old link is defunct (half-open
            # socket the server has not noticed).  Supersede it through
            # the normal loss path so subscriptions park when a grace
            # window is configured.
            with self._lock:
                old = self._conns.pop(existing.conn_id, None)
                if old is not None:
                    self._by_endpoint.pop(id(old.endpoint), None)
                self._rebuild_routes()
            if old is not None and not old.endpoint.closed:
                try:
                    old.endpoint.close()
                except (ConnectionError, OSError):
                    pass
            self._node_lost(
                existing,
                existing.conn_id,
                DisconnectReason(DisconnectReason.PROTOCOL, "superseded by re-attach"),
            )
            existing = self.randb.find_node(request.node_id)
        stale = self._stale.get(request.node_id)
        if existing is not None and existing.stale and stale is not None:
            self._recover_node(state, existing, stale, request)
            return
        record = AgentRecord(
            conn_id=state.conn_id,
            node_id=request.node_id,
            functions={item.ran_function_id: item for item in request.ran_functions},
        )
        state.record = record
        entity, formed_now = self.randb.add_agent(record)
        response = E2SetupResponse(
            ric_id=self.config.ric_id,
            accepted_functions=sorted(record.functions),
        )
        state.endpoint.send(encode_message(response, self.codec))
        self.events.publish(topics.AGENT_CONNECTED, record)
        for iapp in self._iapps:
            iapp.on_agent_connected(record)
        if formed_now:
            self.events.publish(topics.RAN_FORMED, entity)
            for iapp in self._iapps:
                iapp.on_ran_formed(entity)

    def _recover_node(
        self,
        state: _ConnState,
        record: AgentRecord,
        stale: _StaleNode,
        request: E2SetupRequest,
    ) -> None:
        """A stale node re-attached inside its grace window.

        The old :class:`AgentRecord` is revived onto the fresh
        connection (no RAN_FORMED flap, no iApp ``on_agent_connected``)
        and every parked subscription is re-issued verbatim — same RIC
        request id — so iApp callbacks resume without the iApp ever
        learning about the outage.
        """
        self._stale.pop(record.node_id, None)
        self.randb.revive(record, state.conn_id)
        # The setup request is authoritative for the function table:
        # the node may have rebooted with a different SM inventory.
        record.functions = {
            item.ran_function_id: item for item in request.ran_functions
        }
        state.record = record
        response = E2SetupResponse(
            ric_id=self.config.ric_id,
            accepted_functions=sorted(record.functions),
        )
        state.endpoint.send(encode_message(response, self.codec))
        parked = [rec for rec in stale.subscriptions if rec.parked]
        self.submgr.adopt(parked, state.conn_id)
        for rec in parked:
            resync = RicSubscriptionRequest(
                request=rec.request,
                ran_function_id=rec.ran_function_id,
                event_trigger=rec.event_trigger,
                actions=list(rec.actions),
            )
            try:
                state.endpoint.send(encode_message(resync, self.codec))
            except (ConnectionError, OSError):
                break
        get_counter("server.node.recovered").incr()
        if self.admission is not None:
            # Slow-start: re-admission ramps back to nominal so the
            # reconnect storm that follows a recovery cannot retrigger
            # the overload the node just survived.
            self.admission.note_recovery()
        self.events.publish(topics.NODE_RECOVERED, record)

    # -- liveness (keepalive + grace expiry) ---------------------------

    def keepalive_tick(self, now: Optional[float] = None) -> int:
        """One liveness pass; returns the number of queries sent.

        Agents idle past ``keepalive_interval_s`` get a
        :class:`RicServiceQuery`; any reply (the service update, or any
        other traffic) resets their miss count.  After
        ``keepalive_misses`` unanswered probes the node is declared
        silently dead and pushed down the stale path.  Also expires
        stale nodes whose grace window ran out.
        """
        now = self.time_fn() if now is None else now
        with self._slow_lock:
            return self._keepalive_tick_locked(now)

    def _keepalive_tick_locked(self, now: float) -> int:
        sent = 0
        if self.config.keepalive_interval_s > 0:
            for state in list(self._conns.values()):
                if state.record is None:
                    continue
                if now - state.last_seen < self.config.keepalive_interval_s:
                    continue
                if state.pending_queries >= self.config.keepalive_misses:
                    self._declare_dead(state)
                    continue
                # Count the probe *before* sending: over a synchronous
                # transport the agent's reply (which zeroes the miss
                # count) arrives inside the send call itself.
                state.pending_queries += 1
                try:
                    state.endpoint.send(
                        encode_message(
                            RicServiceQuery(
                                known_functions=sorted(state.record.functions)
                            ),
                            self.codec,
                        )
                    )
                    sent += 1
                    get_counter("server.keepalive.sent").incr()
                except (ConnectionError, OSError):
                    self._declare_dead(state)
        self.expire_stale(now)
        return sent

    def _declare_dead(self, state: _ConnState) -> None:
        """Keepalive verdict: the link looks up but the agent is gone."""
        get_counter("server.keepalive.dead").incr()
        with self._lock:
            self._by_endpoint.pop(id(state.endpoint), None)
            self._conns.pop(state.conn_id, None)
            self._rebuild_routes()
        try:
            if not state.endpoint.closed:
                state.endpoint.close()
        except (ConnectionError, OSError):
            pass
        if state.record is not None:
            self._node_lost(
                state.record,
                state.conn_id,
                DisconnectReason(DisconnectReason.KEEPALIVE, "missed keepalives"),
            )

    def expire_stale(self, now: Optional[float] = None) -> int:
        """Garbage-collect stale nodes past their deadline.

        Each parked subscription gets a terminal failure callback so
        its iApp can release resources; the node finally leaves the
        RANDB and ``AGENT_DISCONNECTED`` / ``on_agent_disconnected``
        fire — the legacy teardown, merely delayed by the grace window.
        """
        now = self.time_fn() if now is None else now
        expired = [
            node_id
            for node_id, stale in self._stale.items()
            if now >= stale.deadline
        ]
        for node_id in expired:
            stale = self._stale.pop(node_id)
            record = stale.record
            self.randb.remove_agent(record.conn_id)
            for rec in stale.subscriptions:
                if rec.parked:
                    self.submgr.terminal_fail(
                        rec,
                        RicSubscriptionFailure(
                            request=rec.request,
                            ran_function_id=rec.ran_function_id,
                            cause=Cause(
                                kind=CauseKind.TRANSPORT,
                                value=Cause.UNSPECIFIED,
                                detail="node grace window expired",
                            ),
                        ),
                    )
            get_counter("server.node.expired").incr()
            self.events.publish(topics.NODE_EXPIRED, record)
            self.events.publish(topics.AGENT_DISCONNECTED, record)
            for iapp in self._iapps:
                iapp.on_agent_disconnected(record)
        return len(expired)

    def start_liveness(self, period_s: float = 1.0) -> None:
        """Run :meth:`keepalive_tick` on a daemon thread every
        ``period_s`` seconds (production convenience; tests drive the
        tick directly with an injected clock)."""
        if self._liveness_thread is not None:
            return
        self._liveness_running = True

        def _loop() -> None:
            while self._liveness_running:
                time.sleep(period_s)
                if not self._liveness_running:
                    break
                try:
                    self.keepalive_tick()
                # The liveness daemon must survive any tick failure —
                # a dead keepalive thread silently disables the whole
                # stale/park/adopt lifecycle.
                except Exception:  # repro-lint: disable=RL002
                    get_counter("server.liveness.errors").incr()

        self._liveness_thread = threading.Thread(
            target=_loop, name="e2-liveness", daemon=True
        )
        self._liveness_thread.start()

    def stop_liveness(self) -> None:
        self._liveness_running = False
        thread = self._liveness_thread
        self._liveness_thread = None
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)

    def _handle_service_update(self, state: _ConnState, update: RicServiceUpdate) -> None:
        if state.record is None:
            return
        self.randb.update_functions(
            state.conn_id,
            added=update.added + update.modified,
            removed=update.removed,
        )
        ack = RicServiceUpdateAcknowledge(
            accepted=[item.ran_function_id for item in update.added + update.modified]
        )
        state.endpoint.send(encode_message(ack, self.codec))
        self.events.publish(topics.FUNCTIONS_UPDATED, (state.record, update.added))

    # -- internals ------------------------------------------------------

    def _send(self, conn_id: int, message: E2Message) -> None:
        state = self._route_conns.get(conn_id)
        if state is None or state.endpoint.closed:
            raise ConnectionError(f"no live agent connection {conn_id}")
        if _TRACER.enabled:
            _TRACER.node = self._node_label
        with self.cpu.measure():
            data = encode_message(message, self.codec)
        state.endpoint.send(data)

    def _send_batch(self, conn_id: int, messages: Sequence[E2Message]) -> None:
        if not messages:
            return
        state = self._route_conns.get(conn_id)
        if state is None or state.endpoint.closed:
            raise ConnectionError(f"no live agent connection {conn_id}")
        if _TRACER.enabled:
            _TRACER.node = self._node_label
        with self.cpu.measure():
            batch = [encode_message(message, self.codec) for message in messages]
        state.endpoint.send_many(batch)
