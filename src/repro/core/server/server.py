"""FlexRIC server core (§4.2.2).

Multiplexes agent connections and dispatches E2AP messages between
agents and iApps.  Design properties carried over from the paper:

* **event-driven** — iApps are invoked only when messages arrive,
  never by polling;
* **stateless indication path** — an indication is routed by a single
  O(1) lookup on its request id; with the FlatBuffers-style codec the
  id is read zero-copy from the raw bytes (no decode pass);
* **no SM logic** — the server implements no service model and never
  requests information by itself; iApps trigger all SM communication.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.codec.base import Codec, get_codec
from repro.core.e2ap.ies import RicActionDefinition, RicRequestId
from repro.core.e2ap.messages import (
    E2Message,
    E2SetupRequest,
    E2SetupResponse,
    RicControlAcknowledge,
    RicControlFailure,
    RicControlRequest,
    RicIndication,
    RicIndicationKind,
    RicServiceUpdate,
    RicServiceUpdateAcknowledge,
    RicSubscriptionDeleteRequest,
    RicSubscriptionDeleteResponse,
    RicSubscriptionFailure,
    RicSubscriptionRequest,
    RicSubscriptionResponse,
    decode_message,
    encode_message,
)
from repro.core.e2ap.procedures import MessageClass, ProcedureCode
from repro.core.server import events as topics
from repro.core.server.events import EventBus
from repro.core.server.iapp import IApp
from repro.core.server.randb import AgentRecord, RanDatabase, RanEntity
from repro.core.server.submgr import (
    SubscriptionCallbacks,
    SubscriptionManager,
    SubscriptionRecord,
)
from repro.core.transport.base import Endpoint, Listener, Transport, TransportEvents
from repro.metrics.cpu import CpuMeter
from repro.metrics.memory import MemoryMeter


@dataclass
class ServerConfig:
    """Static server configuration.

    ``indication_workers`` enables the multi-thread extension of §4.4:
    "given that the handling of indication messages in the server
    library is stateless, it is possible to pass messages to different
    threads, facilitated by the event-based system".  0 (default)
    dispatches inline on the transport thread — the paper's
    single-threaded implementation; N > 0 hands each indication to a
    worker pool (POSIX sockets being thread-safe, replies may be sent
    from any worker).
    """

    ric_id: int = 1
    e2ap_codec: str = "fb"
    indication_workers: int = 0


class IndicationEvent:
    """Lazy view of a RIC indication delivered to an iApp.

    Header fields (request id, function id, action, sequence) are read
    from the already-available value tree; the SM ``payload`` bytes are
    extracted only when accessed.  With the FlatBuffers-style E2AP
    codec the underlying tree is itself lazy, so routing an indication
    touches a handful of scalars — the paper's zero-copy dispatch.
    """

    __slots__ = ("conn_id", "_body", "_requestor", "_instance", "_payload", "_header")

    def __init__(self, conn_id: int, body: Any) -> None:
        self.conn_id = conn_id
        self._body = body
        self._requestor: Optional[int] = None
        self._instance: Optional[int] = None
        self._payload: Optional[bytes] = None
        self._header: Optional[bytes] = None

    def _load_request(self) -> None:
        # Routing reads the request id at least twice per indication
        # (subscription lookup, then the iApp); resolve the lazy "q"
        # table once and keep the scalars.
        request = self._body["q"]
        self._requestor = request["r"]
        self._instance = request["i"]

    @property
    def requestor_id(self) -> int:
        if self._requestor is None:
            self._load_request()
        return self._requestor

    @property
    def instance_id(self) -> int:
        if self._instance is None:
            self._load_request()
        return self._instance

    @property
    def request(self) -> RicRequestId:
        return RicRequestId(self.requestor_id, self.instance_id)

    @property
    def ran_function_id(self) -> int:
        return self._body["f"]

    @property
    def action_id(self) -> int:
        return self._body["a"]

    @property
    def sequence(self) -> int:
        return self._body["s"]

    @property
    def kind(self) -> RicIndicationKind:
        return RicIndicationKind(self._body["k"])

    @property
    def header(self) -> bytes:
        if self._header is None:
            self._header = self._body["h"]
        return self._header

    @property
    def payload(self) -> bytes:
        if self._payload is None:
            self._payload = self._body["m"]
        return self._payload

    def full(self) -> RicIndication:
        """Materialize the complete dataclass (tests, relays)."""
        return RicIndication.from_value(self._body)


@dataclass
class _ConnState:
    """Server-side state of one agent connection."""

    conn_id: int
    endpoint: Endpoint
    record: Optional[AgentRecord] = None  # set after E2 setup


class Server:
    """The controller side of the FlexRIC SDK."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        cpu_meter: Optional[CpuMeter] = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.codec: Codec = get_codec(self.config.e2ap_codec)
        self.cpu = cpu_meter or CpuMeter(f"server-{self.config.ric_id}")
        self.memory = MemoryMeter(f"server-{self.config.ric_id}")
        self.events = EventBus()
        self.randb = RanDatabase()
        self.submgr = SubscriptionManager()
        self._iapps: List[IApp] = []
        self._conns: Dict[int, _ConnState] = {}
        self._conn_ids = itertools.count(1)
        self._by_endpoint: Dict[int, _ConnState] = {}
        self._pending_controls: Dict[Tuple[int, int], Callable[[E2Message], None]] = {}
        #: (conn_id, ErrorIndication) pairs received from agents.
        self.errors_seen: List[Tuple[int, E2Message]] = []
        self._control_instances = itertools.count(1)
        self._listeners: List[Listener] = []
        self._lock = threading.Lock()
        self._pool = None
        if self.config.indication_workers > 0:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.config.indication_workers,
                thread_name_prefix="ind-worker",
            )
        self.memory.track("randb", lambda: self.randb)
        self.memory.track("submgr", lambda: self.submgr)

    # -- lifecycle -----------------------------------------------------

    def listen(self, transport: Transport, address: str) -> Listener:
        """Accept agent connections on ``address``."""
        listener = transport.listen(
            address,
            TransportEvents(
                on_connected=self._on_connected,
                on_message=self._on_message,
                on_disconnected=self._on_disconnected,
            ),
        )
        self._listeners.append(listener)
        return listener

    def add_iapp(self, iapp: IApp) -> None:
        """Attach an internal application."""
        self._iapps.append(iapp)
        iapp.attach(self)

    def iapps(self) -> List[IApp]:
        return list(self._iapps)

    def close(self) -> None:
        for listener in self._listeners:
            listener.close()
        for state in list(self._conns.values()):
            if not state.endpoint.closed:
                state.endpoint.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    # -- iApp-facing API -------------------------------------------------

    def subscribe(
        self,
        conn_id: int,
        ran_function_id: int,
        event_trigger: bytes,
        actions: List[RicActionDefinition],
        callbacks: SubscriptionCallbacks,
        requestor_id: Optional[int] = None,
    ) -> SubscriptionRecord:
        """Send a subscription request on behalf of an iApp/xApp."""
        record = self.submgr.create(
            conn_id=conn_id,
            ran_function_id=ran_function_id,
            callbacks=callbacks,
            actions=actions,
            requestor_id=requestor_id,
        )
        request = RicSubscriptionRequest(
            request=record.request,
            ran_function_id=ran_function_id,
            event_trigger=event_trigger,
            actions=actions,
        )
        self._send(conn_id, request)
        return record

    def unsubscribe(self, record: SubscriptionRecord) -> None:
        """Request deletion of an existing subscription."""
        message = RicSubscriptionDeleteRequest(
            request=record.request, ran_function_id=record.ran_function_id
        )
        self._send(record.conn_id, message)

    def control(
        self,
        conn_id: int,
        ran_function_id: int,
        header: bytes,
        payload: bytes,
        on_outcome: Optional[Callable[[E2Message], None]] = None,
        ack_requested: bool = True,
        requestor_id: int = 1,
    ) -> RicRequestId:
        """Send a control request; ``on_outcome`` receives ack/failure."""
        request = RicRequestId(
            requestor_id=requestor_id, instance_id=next(self._control_instances)
        )
        if on_outcome is not None:
            self._pending_controls[request.as_tuple()] = on_outcome
        message = RicControlRequest(
            request=request,
            ran_function_id=ran_function_id,
            header=header,
            payload=payload,
            ack_requested=ack_requested,
        )
        self._send(conn_id, message)
        return request

    def control_many(
        self,
        conn_id: int,
        ran_function_id: int,
        payloads: Sequence[bytes],
        header: bytes = b"",
        ack_requested: bool = True,
        requestor_id: int = 1,
    ) -> List[RicRequestId]:
        """Send a burst of control requests in one coalesced write.

        Semantically identical to calling :meth:`control` once per
        payload (same request-id allocation, same ordering); the batch
        reaches the agent's endpoint through ``send_many`` so a stream
        transport pays one syscall for the whole burst.
        """
        messages: List[E2Message] = []
        ids: List[RicRequestId] = []
        for payload in payloads:
            request = RicRequestId(
                requestor_id=requestor_id, instance_id=next(self._control_instances)
            )
            ids.append(request)
            messages.append(
                RicControlRequest(
                    request=request,
                    ran_function_id=ran_function_id,
                    header=header,
                    payload=payload,
                    ack_requested=ack_requested,
                )
            )
        self._send_batch(conn_id, messages)
        return ids

    def agents(self) -> List[AgentRecord]:
        return self.randb.agents()

    def entity_of(self, conn_id: int) -> Optional[RanEntity]:
        record = self.randb.agent(conn_id)
        if record is None:
            return None
        return self.randb.entity(record.node_id.plmn, record.node_id.nb_id)

    def send_to_agent(self, conn_id: int, message: E2Message) -> None:
        """Escape hatch for relays/virtualization layers."""
        self._send(conn_id, message)

    # -- transport events ----------------------------------------------

    def _on_connected(self, endpoint: Endpoint) -> None:
        state = _ConnState(conn_id=next(self._conn_ids), endpoint=endpoint)
        with self._lock:
            self._conns[state.conn_id] = state
            self._by_endpoint[id(endpoint)] = state

    def _on_disconnected(self, endpoint: Endpoint) -> None:
        with self._lock:
            state = self._by_endpoint.pop(id(endpoint), None)
            if state is not None:
                self._conns.pop(state.conn_id, None)
        if state is None or state.record is None:
            return
        self.submgr.drop_conn(state.conn_id)
        self.randb.remove_agent(state.conn_id)
        self.events.publish(topics.AGENT_DISCONNECTED, state.record)
        for iapp in self._iapps:
            iapp.on_agent_disconnected(state.record)

    def _on_message(self, endpoint: Endpoint, data: bytes) -> None:
        state = self._by_endpoint.get(id(endpoint))
        if state is None:
            return
        with self.cpu.measure():
            tree = self.codec.decode(data)
            procedure = tree["p"]
            msg_class = tree["c"]
            if procedure == int(ProcedureCode.RIC_INDICATION):
                # Hot path: route on header scalars only.  Handling is
                # stateless, so it may run on a worker thread (§4.4).
                event = IndicationEvent(state.conn_id, tree["v"])
                if self._pool is not None:
                    self._pool.submit(self.submgr.deliver_indication, event)
                else:
                    self.submgr.deliver_indication(event)
                return
            self._handle_slow_path(state, procedure, msg_class, tree["v"])

    def _handle_slow_path(
        self, state: _ConnState, procedure: int, msg_class: int, body: Any
    ) -> None:
        if procedure == int(ProcedureCode.E2_SETUP):
            self._handle_setup(state, E2SetupRequest.from_value(body))
        elif procedure == int(ProcedureCode.RIC_SUBSCRIPTION):
            if msg_class == int(MessageClass.SUCCESSFUL):
                self.submgr.confirm(RicSubscriptionResponse.from_value(body))
            else:
                self.submgr.fail(RicSubscriptionFailure.from_value(body))
        elif procedure == int(ProcedureCode.RIC_SUBSCRIPTION_DELETE):
            if msg_class == int(MessageClass.SUCCESSFUL):
                self.submgr.deleted(RicSubscriptionDeleteResponse.from_value(body))
            else:
                from repro.core.e2ap.messages import RicSubscriptionDeleteFailure

                failure = RicSubscriptionDeleteFailure.from_value(body)
                self.submgr.remove(failure.request)
        elif procedure == int(ProcedureCode.RIC_CONTROL):
            if msg_class == int(MessageClass.SUCCESSFUL):
                outcome: E2Message = RicControlAcknowledge.from_value(body)
            else:
                outcome = RicControlFailure.from_value(body)
            callback = self._pending_controls.pop(outcome.request.as_tuple(), None)
            if callback is not None:
                callback(outcome)
        elif procedure == int(ProcedureCode.RIC_SERVICE_UPDATE):
            self._handle_service_update(state, RicServiceUpdate.from_value(body))
        elif procedure == int(ProcedureCode.E2_NODE_CONFIGURATION_UPDATE):
            from repro.core.e2ap.messages import (
                E2NodeConfigurationUpdate,
                E2NodeConfigurationUpdateAcknowledge,
            )

            update = E2NodeConfigurationUpdate.from_value(body)
            if state.record is not None:
                state.record.config.update(update.config)
                self.events.publish(topics.NODE_CONFIG_UPDATED, (state.record, update))
            state.endpoint.send(
                encode_message(E2NodeConfigurationUpdateAcknowledge(), self.codec)
            )
        elif procedure == int(ProcedureCode.ERROR_INDICATION):
            from repro.core.e2ap.messages import ErrorIndication

            error = ErrorIndication.from_value(body)
            self.errors_seen.append((state.conn_id, error))
            self.events.publish(topics.ERROR_INDICATED, (state.record, error))
        # Unknown procedures are ignored at the server (forward compat).

    def _handle_setup(self, state: _ConnState, request: E2SetupRequest) -> None:
        record = AgentRecord(
            conn_id=state.conn_id,
            node_id=request.node_id,
            functions={item.ran_function_id: item for item in request.ran_functions},
        )
        state.record = record
        entity, formed_now = self.randb.add_agent(record)
        response = E2SetupResponse(
            ric_id=self.config.ric_id,
            accepted_functions=sorted(record.functions),
        )
        state.endpoint.send(encode_message(response, self.codec))
        self.events.publish(topics.AGENT_CONNECTED, record)
        for iapp in self._iapps:
            iapp.on_agent_connected(record)
        if formed_now:
            self.events.publish(topics.RAN_FORMED, entity)
            for iapp in self._iapps:
                iapp.on_ran_formed(entity)

    def _handle_service_update(self, state: _ConnState, update: RicServiceUpdate) -> None:
        if state.record is None:
            return
        self.randb.update_functions(
            state.conn_id,
            added=update.added + update.modified,
            removed=update.removed,
        )
        ack = RicServiceUpdateAcknowledge(
            accepted=[item.ran_function_id for item in update.added + update.modified]
        )
        state.endpoint.send(encode_message(ack, self.codec))
        self.events.publish(topics.FUNCTIONS_UPDATED, (state.record, update.added))

    # -- internals ------------------------------------------------------

    def _send(self, conn_id: int, message: E2Message) -> None:
        state = self._conns.get(conn_id)
        if state is None or state.endpoint.closed:
            raise ConnectionError(f"no live agent connection {conn_id}")
        with self.cpu.measure():
            data = encode_message(message, self.codec)
        state.endpoint.send(data)

    def _send_batch(self, conn_id: int, messages: Sequence[E2Message]) -> None:
        if not messages:
            return
        state = self._conns.get(conn_id)
        if state is None or state.endpoint.closed:
            raise ConnectionError(f"no live agent connection {conn_id}")
        with self.cpu.measure():
            batch = [encode_message(message, self.codec) for message in messages]
        state.endpoint.send_many(batch)
