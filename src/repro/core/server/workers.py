"""Multiprocess ingest: N worker processes behind one port (§14).

Thread sharding (DESIGN.md §10) tops out at ~1.5–1.6× because every
shard loop contends on one interpreter lock.  This module promotes the
shard abstraction to real parallelism: :class:`MultiProcServer` forks
``ServerConfig.workers`` worker *processes*, each owning a complete
:class:`~repro.core.server.server.Server` — its own decode/dispatch
loops, its own overload :class:`QueuePressure`, its own metrics
registry — plus an ``SO_REUSEPORT`` listener on the shared port so the
kernel spreads incoming E2 connections across workers with no
userspace coordination.

Coordination that *is* needed flows over one duplex pipe per worker:

* **control** (parent → worker): declarative
  :class:`SubscriptionPolicy` routing snapshots — the cross-process
  form of the PR 5/PR 7 COW snapshot discipline.  A policy is
  *replaced, never mutated*; the parent republishes the full current
  set on every change and to every respawned worker, and each worker
  applies it copy-on-write against its local subscription state.
* **stats** (worker → parent): periodic counter/gauge snapshots the
  supervisor merges into one :meth:`overload_state` / ``/metrics``
  view, so dashboards see the fleet as one server.

Without ``SO_REUSEPORT`` the supervisor falls back to an explicit
accept-and-hand-off path: it accepts centrally and passes raw fds to
workers round-robin via ``multiprocessing.reduction.send_handle`` —
loudly (``server.reuseport.fallback``), never silently single-listener.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import pickle
import signal
import socket
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.e2ap.ies import RicActionDefinition
from repro.core.server import events as topics
from repro.core.server.server import Server, ServerConfig
from repro.core.server.shmsnap import SnapshotReader, SnapshotWriter
from repro.core.server.submgr import SubscriptionCallbacks
from repro.core.transport import tcp as tcp_mod
from repro.core.transport.tcp import TcpTransport
from repro.metrics.counters import (
    counter_values,
    discard_gauge,
    gauge_values,
    get_counter,
    get_gauge,
    reset_all,
)

#: respawns tolerated per worker slot before the supervisor gives up
#: on it (counted in ``server.worker.giveup``).
RESPAWN_LIMIT = 5

#: worker-side heartbeat: unsolicited stats pushes at most this often.
_STATS_PUSH_INTERVAL_S = 0.25


@dataclass
class SubscriptionPolicy:
    """One declarative, picklable routing-snapshot entry.

    The multiprocess analogue of an iApp calling
    :meth:`Server.subscribe`: "every connected node exposing
    ``ran_function_id`` gets this subscription".  Workers apply it to
    the agents they own (connections land on exactly one worker) and
    re-apply it to agents that attach or re-attach later, so a policy
    survives worker crashes and node flaps without parent involvement
    per event.
    """

    ran_function_id: int
    event_trigger: bytes = b""
    actions: Tuple[RicActionDefinition, ...] = ()
    requestor_id: Optional[int] = None
    #: assigned by the parent on publish; workers dedup on it.
    policy_id: int = 0

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)


class _PolicyManager:
    """Worker-side application of the published policy snapshot.

    Tracks which (conn, policy) pairs are already subscribed so a
    republished snapshot (the parent always sends the full set) is
    idempotent.  Indications delivered through policy subscriptions are
    counted in ``server.policy.indications`` — the number the parent
    aggregates for the throughput view.
    """

    def __init__(self, server: Server) -> None:
        self._server = server
        self._lock = threading.Lock()
        self._policies: Dict[int, SubscriptionPolicy] = {}
        #: (conn_id, policy_id) pairs already subscribed.
        self._applied: set = set()
        self._ind_counter = get_counter("server.policy.indications")
        server.events.subscribe(topics.AGENT_CONNECTED, self._on_agent)
        server.events.subscribe(topics.NODE_RECOVERED, self._on_agent)
        server.events.subscribe(topics.AGENT_DISCONNECTED, self._on_gone)

    def set_policies(self, policies: List[SubscriptionPolicy]) -> None:
        with self._lock:
            self._policies = {p.policy_id: p for p in policies}
            live = {p.policy_id for p in policies}
            self._applied = {
                pair for pair in self._applied if pair[1] in live
            }
        for record in self._server.agents():
            self._apply_to(record)

    def _on_agent(self, record) -> None:
        self._apply_to(record)

    def _on_gone(self, record) -> None:
        # AGENT_DISCONNECTED is the *terminal* exit (a stale node in
        # its grace window publishes NODE_STALE instead and keeps its
        # parked policy subscriptions for adopt-on-recovery).
        key = self._node_key(record)
        with self._lock:
            self._applied = {pair for pair in self._applied if pair[0] != key}

    @staticmethod
    def _node_key(record) -> str:
        return str(getattr(record, "node_id", ""))

    def _apply_to(self, record) -> None:
        conn_id = getattr(record, "conn_id", None)
        if conn_id is None:
            return
        # Keyed by node identity, not conn id: a node re-attaching
        # inside its grace window gets its parked subscriptions adopted
        # by the server, so re-applying the policy there would
        # double-subscribe it.
        key = self._node_key(record)
        with self._lock:
            todo = [
                policy
                for policy in self._policies.values()
                if (key, policy.policy_id) not in self._applied
                and policy.ran_function_id in record.functions
            ]
            for policy in todo:
                self._applied.add((key, policy.policy_id))
        for policy in todo:
            try:
                self._server.subscribe(
                    conn_id=conn_id,
                    ran_function_id=policy.ran_function_id,
                    event_trigger=policy.event_trigger,
                    actions=list(policy.actions),
                    callbacks=SubscriptionCallbacks(
                        on_indication=self._on_indication
                    ),
                    requestor_id=policy.requestor_id,
                )
            except (ConnectionError, KeyError):
                # The link died between the event and the subscribe;
                # the next attach re-applies.
                with self._lock:
                    self._applied.discard((key, policy.policy_id))

    def _on_indication(self, event) -> None:
        self._ind_counter.incr()


def _stats_payload(
    server: Server, transport: TcpTransport, scratch: Optional[dict] = None
) -> dict:
    """Build (or refill) one stats push payload.

    ``scratch`` lets the worker's 250 ms heartbeat reuse one top-level
    dict per process instead of allocating a fresh one per tick — the
    pipe pickles the contents at send time, so reuse is safe.
    """
    payload = scratch if scratch is not None else {}
    counters = counter_values()
    payload["pid"] = os.getpid()
    payload["agents"] = len(server.agents())
    payload["subscriptions"] = len(server.submgr.active_records())
    payload["indications"] = counters.get("server.policy.indications", 0)
    payload["counters"] = {k: v for k, v in counters.items() if v}
    payload["gauges"] = gauge_values()
    payload["shards"] = transport.shard_stats()
    return payload


def _stats_fingerprint(payload: dict) -> tuple:
    """Change detector for unsolicited pushes.

    Excludes the skip counter itself — otherwise every skip would make
    the next tick look changed and pushes would merely alternate.
    """
    counters = {
        k: v
        for k, v in payload["counters"].items()
        if k != "server.stats.push_skipped"
    }
    return (
        payload["agents"],
        payload["subscriptions"],
        counters,
        payload["gauges"],
        payload["shards"],
    )


def _worker_main(
    index: int,
    host: str,
    port: int,
    config: ServerConfig,
    policies: List[SubscriptionPolicy],
    conn,
    use_reuseport: bool,
    snapshot: Optional[SnapshotReader] = None,
) -> None:
    """Entry point of one worker process.

    Builds a complete single-process server (``workers=0``), binds its
    own reuseport listener (or waits for handed-off fds), applies the
    routing-policy snapshot it was forked with, then serves its control
    pipe until told to stop or orphaned.
    """
    # The forked registry carries the parent's pre-fork values; the
    # worker's stats must start from zero or the merged view
    # double-counts everything the parent did before the fork.
    reset_all()
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent coordinates shutdown
    server = Server(replace(config, workers=0))
    transport = TcpTransport(
        shards=max(1, config.shards),
        reuseport=use_reuseport,
        overload=server.overload,
        classify=server._classify,
    )
    events = server.transport_events()
    if use_reuseport:
        server.listen(transport, f"{host}:{port}")
    transport.start()
    manager = _PolicyManager(server)
    manager.set_policies(policies)
    try:
        conn.send(("ready", index, port))
    except (OSError, BrokenPipeError):
        return
    _worker_loop(index, server, transport, manager, conn, events, snapshot)


def _worker_loop(
    index: int,
    server: Server,
    transport: TcpTransport,
    manager: _PolicyManager,
    conn,
    events,
    snapshot: Optional[SnapshotReader] = None,
) -> None:
    """The worker's bounded-blocking control loop (RL004-audited)."""
    parent_pid = os.getppid()
    last_push = time.monotonic()
    running = True
    #: reused across ticks (allocation satellite of DESIGN.md §15);
    #: the pipe pickles at send time, so reuse never aliases a message.
    scratch: dict = {}
    last_pushed: Optional[tuple] = None
    push_skipped = get_counter("server.stats.push_skipped")
    while running:
        if os.getppid() != parent_pid:
            break  # orphaned: the supervisor died without a stop
        try:
            has_msg = conn.poll(0.05)
        except (OSError, EOFError):
            break
        if has_msg:
            try:
                msg = conn.recv()  # repro-lint: disable=RL004 — bounded by the poll(0.05) above
            except (EOFError, OSError):
                break
            running = _handle_command(
                index, msg, server, transport, manager, conn, events, snapshot
            )
            continue
        now = time.monotonic()
        if now - last_push >= _STATS_PUSH_INTERVAL_S:
            last_push = now
            payload = _stats_payload(server, transport, scratch)
            fingerprint = _stats_fingerprint(payload)
            if fingerprint == last_pushed:
                # Nothing moved since the last heartbeat: the parent's
                # merged view is already current; skip the pickle+pipe.
                push_skipped.incr()
                continue
            try:
                conn.send(("stats", index, None, payload))
            except (OSError, BrokenPipeError):
                break
            last_pushed = fingerprint
    try:
        server.close()
        transport.stop()
    except RuntimeError:
        pass  # loud-teardown report has nowhere to go; process exits anyway
    try:
        conn.send(("bye", index))
        conn.close()
    except (OSError, BrokenPipeError):
        pass


def _handle_command(
    index: int,
    msg: tuple,
    server: Server,
    transport: TcpTransport,
    manager: _PolicyManager,
    conn,
    events,
    snapshot: Optional[SnapshotReader] = None,
) -> bool:
    """Apply one control-pipe command; returns False on ``stop``."""
    kind = msg[0]
    if kind == "stop":
        return False
    if kind == "policies":
        manager.set_policies(list(msg[1]))
    elif kind == "policy_gen":
        # Shared-memory publication: the pipe carried only the nudge;
        # the payload is read (seqlock) out of the parent's segment.
        applied = False
        if snapshot is not None:
            try:
                got = snapshot.read()
            except RuntimeError:
                got = None
            if got is not None:
                generation, payload = got
                try:
                    policies = pickle.loads(payload)
                except (pickle.UnpicklingError, EOFError, ValueError, TypeError):
                    policies = None
                if policies is not None:
                    manager.set_policies(list(policies))
                    get_counter("server.policy.shm_reads").incr()
                    get_gauge("server.policy.generation").set(generation)
                    applied = True
        if not applied:
            # Loud fallback: ask the parent for the pickled snapshot
            # over the pipe (counted on both sides).
            get_counter("server.policy.shm_fallback").incr()
            try:
                conn.send(("need_policies", index))
            except (OSError, BrokenPipeError):
                return False
    elif kind == "stats":
        try:
            conn.send(("stats", index, msg[1], _stats_payload(server, transport)))
        except (OSError, BrokenPipeError):
            return False
    elif kind == "socket":
        # Accept-and-hand-off fallback: the parent accepted, we own it.
        from multiprocessing import reduction

        fd = reduction.recv_handle(conn)
        transport.adopt(socket.socket(fileno=fd), events)
    return True


@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one worker slot."""

    index: int
    process: multiprocessing.Process
    conn: multiprocessing.connection.Connection
    ready: threading.Event = field(default_factory=threading.Event)
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    stats: dict = field(default_factory=dict)
    stats_seq: int = 0
    respawns: int = 0
    failed: bool = False
    closed: bool = False

    def send(self, msg: tuple) -> bool:
        try:
            with self.send_lock:
                self.conn.send(msg)
            return True
        except (OSError, BrokenPipeError, ValueError):
            return False

    def send_pickled(self, wire: bytes) -> bool:
        """Send an already-pickled message (``conn.recv`` unpickles it).

        Lets a broadcast serialize a large snapshot once and push the
        same buffer to every worker instead of re-pickling per pipe.
        """
        try:
            with self.send_lock:
                self.conn.send_bytes(wire)
            return True
        except (OSError, BrokenPipeError, ValueError):
            return False


_FORK_GUARD_INSTALLED = False


def _install_fork_guard() -> None:
    """Make the metrics registry fork-safe.

    The supervisor forks (respawn) from a thread while transport shards
    of other components may hold a registry stripe lock mid-insert; the
    child would inherit the held lock with no thread to release it and
    deadlock on its first ``get_counter``.  Acquiring every registry
    lock across the fork (in fixed order) guarantees the child starts
    with all of them released.
    """
    global _FORK_GUARD_INSTALLED
    if _FORK_GUARD_INSTALLED or not hasattr(os, "register_at_fork"):
        return
    from repro.metrics import counters as metrics_registry

    locks = (metrics_registry._REGISTRY_LOCK,) + tuple(metrics_registry._LOCK_POOL)

    def _acquire_all() -> None:
        for lock in locks:
            lock.acquire()

    def _release_all() -> None:
        for lock in reversed(locks):
            lock.release()

    os.register_at_fork(
        before=_acquire_all,
        after_in_parent=_release_all,
        after_in_child=_release_all,
    )
    _FORK_GUARD_INSTALLED = True


class MultiProcServer:
    """Supervisor for ``config.workers`` single-process servers.

    One shared TCP port, N forked workers, policy snapshots
    republished over control pipes, per-worker stats merged into one
    view.  The parent holds the port (a bound, *non-listening*
    reuseport socket — only listening sockets participate in kernel
    connection spreading, so the reservation never steals an accept)
    and supervises: a worker that dies is respawned with the current
    policy snapshot, up to :data:`RESPAWN_LIMIT` times per slot.
    """

    def __init__(
        self,
        config: ServerConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        start_method: str = "fork",
    ) -> None:
        if config.workers < 1:
            raise ValueError(f"MultiProcServer needs workers >= 1, got {config.workers}")
        self.config = config
        self._host = host
        self._requested_port = port
        self._ctx = multiprocessing.get_context(start_method)
        self._handles: Dict[int, _WorkerHandle] = {}
        self._policies: Dict[int, SubscriptionPolicy] = {}
        self._policy_seq = itertools.count(1)
        self._stats_seq = itertools.count(1)
        self._lock = threading.Lock()
        self._stats_cond = threading.Condition(self._lock)
        self._running = False
        self._stopped = False
        self._port: Optional[int] = None
        self._reserve_sock: Optional[socket.socket] = None
        self._accept_sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._supervisor: Optional[threading.Thread] = None
        self._rr = itertools.count()
        self.reuseport = tcp_mod.reuseport_available()
        #: shared-memory snapshot segment (DESIGN.md §15).  Fork-only:
        #: workers inherit the parent's mapping; under other start
        #: methods the pickled pipe path is used, loudly counted.
        self._start_method = start_method
        self._snap_writer: Optional[SnapshotWriter] = None
        self._snap_reader: Optional[SnapshotReader] = None

    # -- lifecycle ---------------------------------------------------

    def start(self, ready_timeout_s: float = 15.0) -> None:
        """Reserve the port, fork the workers, wait until all listen."""
        if self._running:
            return
        _install_fork_guard()
        self._running = True
        if self._start_method == "fork" and self._snap_writer is None:
            try:
                self._snap_writer = SnapshotWriter()
                self._snap_reader = self._snap_writer.reader()
            except (OSError, ImportError):
                # No shared memory on this host: the pipe path still
                # works — degrade loudly, never silently.
                get_counter("server.policy.shm_fallback").incr()
                self._snap_writer = None
                self._snap_reader = None
        if self.reuseport:
            self._reserve_sock = self._reserve_port()
        else:
            # Loud degradation (never silent single-listener): count
            # once, accept centrally, hand fds to workers.
            get_counter("server.reuseport.fallback").incr()
            self._accept_sock = self._central_listener()
        get_gauge("server.workers").set(self.config.workers)
        for index in range(self.config.workers):
            self._handles[index] = self._spawn(index)
        self._supervisor = threading.Thread(
            target=self._supervise, name="e2-worker-supervisor", daemon=True
        )
        self._supervisor.start()
        deadline = time.monotonic() + ready_timeout_s
        for handle in self._handles.values():
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not handle.ready.wait(timeout=remaining):
                self.stop()
                raise RuntimeError(
                    f"worker {handle.index} failed to become ready within "
                    f"{ready_timeout_s}s"
                )
        if not self.reuseport:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="e2-accept-handoff", daemon=True
            )
            self._accept_thread.start()

    def _reserve_port(self) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self._host, self._requested_port))
        self._port = sock.getsockname()[1]
        return sock

    def _central_listener(self) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._requested_port))
        sock.listen(128)
        sock.settimeout(0.2)
        self._port = sock.getsockname()[1]
        return sock

    def _spawn(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        with self._lock:
            policies = list(self._policies.values())
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                index,
                self._host,
                self._port,
                self.config,
                policies,
                child_conn,
                self.reuseport,
                self._snap_reader,
            ),
            name=f"e2-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        get_counter("server.worker.spawned").incr()
        get_gauge(f"server.worker.{index}.alive").set(0)
        return _WorkerHandle(index=index, process=process, conn=parent_conn)

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("MultiProcServer not started")
        return self._port

    @property
    def address(self) -> str:
        return f"{self._host}:{self.port}"

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop workers and supervision threads (idempotent, loud)."""
        if self._stopped:
            return
        self._stopped = True
        self._running = False
        for handle in self._handles.values():
            if not handle.failed:
                handle.send(("stop",))
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout_s)
            if self._supervisor.is_alive():
                get_counter("transport.stop.stuck").incr()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout_s)
        for sock in (self._accept_sock, self._reserve_sock):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        deadline = time.monotonic() + timeout_s
        for handle in self._handles.values():
            remaining = max(0.1, deadline - time.monotonic())
            handle.process.join(timeout=remaining)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(timeout=2.0)
            handle.closed = True
            try:
                handle.conn.close()
            except OSError:
                pass
            discard_gauge(f"server.worker.{handle.index}.alive")
        discard_gauge("server.workers")
        if self._snap_writer is not None:
            self._snap_writer.close(unlink=True)
            self._snap_writer = None
            self._snap_reader = None
            discard_gauge("server.policy.generation")

    # -- policy (routing snapshot) publication -----------------------

    def subscribe_all(self, policy: SubscriptionPolicy) -> SubscriptionPolicy:
        """Publish one more routing-policy entry to every worker.

        Returns the policy with its assigned ``policy_id``.  The full
        current snapshot is re-broadcast (replaced, never mutated) —
        the cross-process mirror of ``_rebuild_routes``'s COW publish.
        """
        with self._lock:
            if policy.policy_id == 0:
                policy.policy_id = next(self._policy_seq)
            self._policies[policy.policy_id] = policy
            snapshot = list(self._policies.values())
        self._broadcast_policies(snapshot)
        return policy

    def unsubscribe_all(self, policy_id: int) -> None:
        with self._lock:
            self._policies.pop(policy_id, None)
            snapshot = list(self._policies.values())
        self._broadcast_policies(snapshot)

    def _broadcast_policies(self, snapshot: List[SubscriptionPolicy]) -> None:
        targets = [
            handle
            for handle in self._handles.values()
            if handle.ready.is_set() and not handle.failed
        ]
        if self._snap_writer is not None:
            payload = pickle.dumps(snapshot)
            try:
                generation = self._snap_writer.publish(payload)
            except ValueError:
                # Oversize snapshot: this publish takes the pipe path.
                get_counter("server.policy.shm_fallback").incr()
            else:
                get_counter("server.policy.shm_publish").incr()
                get_gauge("server.policy.generation").set(generation)
                for handle in targets:
                    handle.send(("policy_gen", generation))
                return
        # Pickle the full message once; every pipe gets the same buffer.
        wire = pickle.dumps(("policies", snapshot))
        get_counter("server.policy.pickle_bytes").incr(len(wire) * len(targets))
        for handle in targets:
            handle.send_pickled(wire)

    # -- supervision -------------------------------------------------

    def _supervise(self) -> None:
        """Bounded-blocking supervision loop (RL004-audited).

        Drains worker pipes (stats, ready, bye), detects dead workers
        by liveness *and* pipe EOF, and respawns them with the current
        policy snapshot — the snapshot republication that makes worker
        crash recovery invisible to iApps.
        """
        while self._running:
            handles = list(self._handles.values())
            conns = [h.conn for h in handles if not h.closed and not h.failed]
            if not conns:
                time.sleep(0.05)
                continue
            try:
                readable = multiprocessing.connection.wait(conns, timeout=0.1)
            except OSError:
                readable = []
            by_conn = {id(h.conn): h for h in handles}
            for conn in readable:
                handle = by_conn.get(id(conn))
                if handle is None:
                    continue
                try:
                    msg = conn.recv()  # repro-lint: disable=RL004 — bounded by connection.wait above
                except (EOFError, OSError):
                    self._worker_died(handle)
                    continue
                self._handle_message(handle, msg)
            for handle in list(self._handles.values()):
                if (
                    not handle.closed
                    and not handle.failed
                    and not handle.process.is_alive()
                ):
                    self._worker_died(handle)

    def _handle_message(self, handle: _WorkerHandle, msg: tuple) -> None:
        kind = msg[0]
        if kind == "ready":
            get_gauge(f"server.worker.{handle.index}.alive").set(1)
            handle.ready.set()
            # Republication on (re)attach: the worker was forked with a
            # snapshot, but a policy published between fork and ready
            # would be lost without this explicit sync.  With the shm
            # segment active the sync is a generation nudge — the
            # respawned worker reads the segment the parent still
            # holds, so the generation survives any worker death.
            writer = self._snap_writer
            if writer is not None and writer.generation > 0:
                handle.send(("policy_gen", writer.generation))
                return
            with self._lock:
                snapshot = list(self._policies.values())
            if snapshot:
                wire = pickle.dumps(("policies", snapshot))
                get_counter("server.policy.pickle_bytes").incr(len(wire))
                handle.send_pickled(wire)
        elif kind == "need_policies":
            # Worker could not serve itself from the shm segment
            # (unreadable, torn, or unpicklable payload): answer with
            # the pickled pipe path, loudly counted.
            with self._lock:
                snapshot = list(self._policies.values())
            wire = pickle.dumps(("policies", snapshot))
            get_counter("server.policy.pickle_bytes").incr(len(wire))
            handle.send_pickled(wire)
        elif kind == "stats":
            _kind, _index, seq, payload = msg
            with self._stats_cond:
                handle.stats = payload
                if seq is not None and seq > handle.stats_seq:
                    handle.stats_seq = seq
                self._stats_cond.notify_all()
        # "bye" needs no action: liveness reaping handles the exit.

    def _worker_died(self, handle: _WorkerHandle) -> None:
        """Reap a dead worker and respawn its slot (bounded)."""
        if handle.closed or handle.failed:
            return
        handle.closed = True
        get_gauge(f"server.worker.{handle.index}.alive").set(0)
        handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        if not self._running:
            return
        get_counter("server.worker.restarts").incr()
        if handle.respawns + 1 > RESPAWN_LIMIT:
            get_counter("server.worker.giveup").incr()
            handle.failed = True
            return
        replacement = self._spawn(handle.index)
        replacement.respawns = handle.respawns + 1
        self._handles[handle.index] = replacement

    def kill_worker(self, index: int) -> int:
        """Test/chaos hook: SIGKILL a worker; returns the killed pid."""
        handle = self._handles[index]
        pid = handle.process.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    @property
    def restarts(self) -> int:
        return sum(h.respawns for h in self._handles.values())

    # -- accept-and-hand-off fallback --------------------------------

    def _pick_worker(self) -> Optional[_WorkerHandle]:
        """Round-robin over live, ready workers."""
        candidates = [
            h
            for h in self._handles.values()
            if h.ready.is_set() and not h.closed and not h.failed
        ]
        if not candidates:
            return None
        return candidates[next(self._rr) % len(candidates)]

    def _accept_loop(self) -> None:
        """Bounded-blocking central accept loop (no-reuseport fallback).

        The listener carries a 0.2 s accept timeout so the loop
        observes ``stop()`` promptly; each accepted socket is handed to
        one worker via fd passing and closed locally (the worker holds
        its own duplicated fd).
        """
        sock = self._accept_sock
        while self._running:
            try:
                conn_sock, _addr = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handle = self._pick_worker()
            if handle is None:
                conn_sock.close()
                continue
            try:
                from multiprocessing import reduction

                with handle.send_lock:
                    handle.conn.send(("socket",))
                    reduction.send_handle(
                        handle.conn, conn_sock.fileno(), handle.process.pid
                    )
                get_counter("server.worker.handoff").incr()
            except (OSError, BrokenPipeError):
                pass
            finally:
                conn_sock.close()

    # -- merged stats ------------------------------------------------

    def stats(self, refresh: bool = True, timeout_s: float = 2.0) -> Dict[int, dict]:
        """Per-worker stats snapshots, freshly requested by default."""
        if refresh:
            seq = next(self._stats_seq)
            targets = [
                h
                for h in self._handles.values()
                if h.ready.is_set() and not h.closed and not h.failed
            ]
            for handle in targets:
                handle.send(("stats", seq))
            deadline = time.monotonic() + timeout_s
            with self._stats_cond:
                while any(h.stats_seq < seq for h in targets if not h.closed):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._stats_cond.wait(timeout=min(remaining, 0.05))
        with self._lock:
            return {
                index: dict(handle.stats)
                for index, handle in self._handles.items()
                if handle.stats
            }

    def total_indications(self, refresh: bool = True) -> int:
        return sum(
            s.get("indications", 0) for s in self.stats(refresh=refresh).values()
        )

    def agents_total(self, refresh: bool = True) -> int:
        return sum(s.get("agents", 0) for s in self.stats(refresh=refresh).values())

    def merged_counters(self, refresh: bool = True) -> Dict[str, int]:
        """Counters summed across workers (monotonic, so sums compose)."""
        merged: Dict[str, int] = {}
        for stats in self.stats(refresh=refresh).values():
            for name, value in stats.get("counters", {}).items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def metrics_snapshot(self, refresh: bool = True) -> dict:
        """One JSON-able fleet view: merged counters + per-worker gauges.

        Gauges are point-in-time per process, so they are namespaced
        ``worker.<i>.<name>`` rather than summed (a depth of 3 in one
        worker and 5 in another is not a depth of 8 anywhere).
        """
        per_worker = self.stats(refresh=refresh)
        gauges = {}
        for index, stats in per_worker.items():
            for name, value in stats.get("gauges", {}).items():
                gauges[f"worker.{index}.{name}"] = value
        return {
            "workers": {
                index: {
                    k: v for k, v in stats.items() if k not in ("counters", "gauges")
                }
                for index, stats in per_worker.items()
            },
            "counters": self._merge_counter_stats(per_worker),
            "gauges": gauges,
        }

    @staticmethod
    def _merge_counter_stats(per_worker: Dict[int, dict]) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for stats in per_worker.values():
            for name, value in stats.get("counters", {}).items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def overload_state(self, refresh: bool = True) -> dict:
        """Fleet-wide analogue of :meth:`Server.overload_state`.

        Same shape as the single-process snapshot (drops, admission
        rejects, queue gauges) so the northbound ``/metrics/overload``
        route and :class:`StatsMonitorIApp` can serve either.
        """
        per_worker = self.stats(refresh=refresh)
        counters = self._merge_counter_stats(per_worker)
        queues = {}
        for index, stats in per_worker.items():
            for name, value in stats.get("gauges", {}).items():
                if name.startswith("queue."):
                    queues[f"worker.{index}.{name}"] = value
        return {
            "enabled": self.config.overload is not None,
            "workers": sum(
                1
                for h in self._handles.values()
                if not h.closed and not h.failed and h.process.is_alive()
            ),
            "drops": {
                name: value
                for name, value in counters.items()
                if name.startswith("overload.") and value
            },
            "admission": {
                "rejects": {
                    name: value
                    for name, value in counters.items()
                    if name.startswith("server.admission.") and value
                },
                "state": None,  # admission state is per-worker; see stats()
            },
            "queues": queues,
        }

    # -- context manager ---------------------------------------------

    def __enter__(self) -> "MultiProcServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
