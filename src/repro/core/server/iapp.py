"""iApp interface (§4.2.1).

Internal applications implement specific controller behaviour —
"either directly through SMs within the iApps themselves, or by
providing platform services that can be leveraged by xApps".  An iApp
attaches to a :class:`~repro.core.server.server.Server` and receives
lifecycle callbacks; everything else (subscribing, controlling) goes
through the server API it is handed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server.randb import AgentRecord, RanEntity
    from repro.core.server.server import Server


class IApp:
    """Base class for internal applications.

    Override the lifecycle hooks of interest; ``self.server`` is set
    by :meth:`attach` before any hook runs.
    """

    #: human-readable name used in diagnostics and specialization tables.
    name: str = "iapp"

    def __init__(self) -> None:
        self.server: Optional["Server"] = None

    def attach(self, server: "Server") -> None:
        """Bind to a server; called once by ``Server.add_iapp``."""
        self.server = server
        self.on_attached()

    # -- lifecycle hooks ----------------------------------------------

    def on_attached(self) -> None:
        """Server is available; register event handlers here."""

    def on_agent_connected(self, agent: "AgentRecord") -> None:
        """A new agent completed E2 setup."""

    def on_agent_disconnected(self, agent: "AgentRecord") -> None:
        """An agent connection dropped (subscriptions already purged)."""

    def on_ran_formed(self, entity: "RanEntity") -> None:
        """All parts of a disaggregated base station are connected."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
