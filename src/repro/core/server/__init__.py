"""FlexRIC server library (§4.2.2).

Multiplexes agent connections and dispatches E2AP messages to internal
applications (iApps) through an event-driven/callback system — never by
polling (the design difference versus FlexRAN the paper quantifies in
Fig. 8a):

* :mod:`repro.core.server.events` — the callback/event bus,
* :mod:`repro.core.server.randb` — the RAN database: node inventory and
  CU/DU merging into RAN entities,
* :mod:`repro.core.server.submgr` — subscription tracking and
  indication dispatch,
* :mod:`repro.core.server.iapp` — the iApp interface,
* :mod:`repro.core.server.server` — the server core tying it together.
"""

from repro.core.server.events import EventBus
from repro.core.server.randb import AgentRecord, RanDatabase, RanEntity
from repro.core.server.submgr import (
    SinkHandle,
    SubscriptionCallbacks,
    SubscriptionManager,
    SubscriptionRecord,
)
from repro.core.server.iapp import IApp
from repro.core.server.server import IndicationEvent, Server, ServerConfig

__all__ = [
    "EventBus",
    "AgentRecord",
    "RanDatabase",
    "RanEntity",
    "SinkHandle",
    "SubscriptionCallbacks",
    "SubscriptionManager",
    "SubscriptionRecord",
    "IApp",
    "IndicationEvent",
    "Server",
    "ServerConfig",
]
