"""Event bus for the server library.

The RAN management functionality publishes connection-related events
("an application that subscribed for new agent connections uses the
included information to send a subscription if it encounters suitable
RAN functions", §4.2.2).  Topics are plain strings; handlers are
callables receiving the event payload.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, DefaultDict, List

Handler = Callable[[Any], None]

#: Topic published when an agent completes E2 setup (payload: AgentRecord).
AGENT_CONNECTED = "agent_connected"
#: Topic published when an agent connection drops (payload: AgentRecord).
AGENT_DISCONNECTED = "agent_disconnected"
#: Topic published when a RAN entity becomes complete, i.e. all parts of
#: a disaggregated base station are present (payload: RanEntity).
RAN_FORMED = "ran_formed"
#: Topic published when an agent adds RAN functions at runtime
#: (payload: (AgentRecord, list[RanFunctionItem])).
FUNCTIONS_UPDATED = "functions_updated"
#: Topic published when an agent reports a node configuration change
#: (payload: (AgentRecord, E2NodeConfigurationUpdate)).
NODE_CONFIG_UPDATED = "node_config_updated"
#: Topic published when an agent raises an E2AP error indication
#: (payload: (AgentRecord | None, ErrorIndication)).
ERROR_INDICATED = "error_indicated"
#: Topic published when an agent's link drops but the node enters the
#: stale grace window instead of being purged (payload: AgentRecord).
NODE_STALE = "node_stale"
#: Topic published when a stale node re-attaches within its grace
#: window and its subscriptions were resynced (payload: AgentRecord —
#: the refreshed record with the new connection id).
NODE_RECOVERED = "node_recovered"
#: Topic published when a stale node's grace window expires and it is
#: garbage-collected (payload: AgentRecord).
NODE_EXPIRED = "node_expired"


class EventBus:
    """Minimal synchronous publish/subscribe dispatcher.

    Handlers run inline in publication order; an unsubscribed topic
    publish is a no-op.  Handler exceptions propagate — iApps are
    trusted platform code and a silent swallow would hide bugs.
    """

    def __init__(self) -> None:
        self._handlers: DefaultDict[str, List[Handler]] = defaultdict(list)

    def subscribe(self, topic: str, handler: Handler) -> Callable[[], None]:
        """Register ``handler``; returns an unsubscribe thunk."""
        self._handlers[topic].append(handler)

        def unsubscribe() -> None:
            try:
                self._handlers[topic].remove(handler)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, topic: str, payload: Any) -> int:
        """Invoke every handler for ``topic``; returns handler count."""
        handlers = list(self._handlers.get(topic, ()))
        for handler in handlers:
            handler(payload)
        return len(handlers)

    def handler_count(self, topic: str) -> int:
        return len(self._handlers.get(topic, ()))
