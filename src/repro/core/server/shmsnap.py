"""Seqlock-style shared-memory snapshot publication (DESIGN.md §15).

The multiprocess supervisor used to republish its full
:class:`SubscriptionPolicy` set as a pickled payload over every worker
control pipe on every change — O(workers × policies) pickle bytes per
publish, re-paid in full on each respawn.  This module moves the
snapshot into one ``multiprocessing.shared_memory`` segment the parent
owns: the payload is written once, pipes carry only a "generation
bumped" nudge (a couple of dozen bytes), and a respawned worker reads
the segment the parent still holds — the generation counter survives
any number of worker deaths.

Layout (little-endian)::

    [generation:8][length:8][payload...]

The generation is a seqlock: the writer bumps it to an *odd* value
before touching the payload and to the next *even* value after, so a
reader that observes an odd generation, or different generations
before and after its copy, knows it raced a write and retries.  One
writer (the parent), any number of readers (the workers) — no locks,
no cross-process mutexes.

The COW discipline of the in-process snapshots (RL003) carries over:
the writer never mutates a published payload in place semantically —
every :meth:`SnapshotWriter.publish` replaces the whole payload under
a fresh generation, and readers always copy the payload out before
deserializing.

Fallback contract: everything here raises loudly (oversize payload,
unstable read) so callers can fall back to the pickled pipe path and
count it (``server.policy.shm_fallback``) — never silently serve a
stale or torn snapshot.
"""

from __future__ import annotations

import struct
import time
from typing import Optional, Tuple

_HDR = struct.Struct("<QQ")  # (generation, payload length)

#: default payload capacity — generous versus a realistic policy set
#: (one entry pickles to ~100 B; this holds tens of thousands).
DEFAULT_CAPACITY = 1 << 20

#: seqlock read attempts before the reader declares the segment
#: unstable and the caller falls back to the pipe path.
_READ_RETRIES = 1000


class SnapshotWriter:
    """Parent-owned writer of the versioned snapshot segment."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        from multiprocessing import shared_memory

        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._shm = shared_memory.SharedMemory(
            create=True, size=_HDR.size + capacity
        )
        self._gen = 0
        _HDR.pack_into(self._shm.buf, 0, 0, 0)

    @property
    def name(self) -> str:
        """Kernel name of the segment (attach key for readers)."""
        return self._shm.name

    @property
    def generation(self) -> int:
        """Generation of the last completed publish (0 = none yet)."""
        return self._gen

    def publish(self, payload: bytes) -> int:
        """Replace the snapshot payload; returns the new generation.

        Raises :class:`ValueError` when ``payload`` exceeds the
        segment's capacity — the caller's cue to take the pickled pipe
        path for this publish.
        """
        if len(payload) > self.capacity:
            raise ValueError(
                f"snapshot payload {len(payload)} B exceeds segment "
                f"capacity {self.capacity} B"
            )
        buf = self._shm.buf
        # Seqlock write protocol: odd = write in progress.
        _HDR.pack_into(buf, 0, self._gen + 1, 0)
        buf[_HDR.size : _HDR.size + len(payload)] = payload
        self._gen += 2
        _HDR.pack_into(buf, 0, self._gen, len(payload))
        return self._gen

    def reader(self) -> "SnapshotReader":
        """A reader over this writer's segment (fork-inheritable)."""
        return SnapshotReader(shm=self._shm)

    def close(self, unlink: bool = True) -> None:
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass
        if unlink:
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):
                pass


class SnapshotReader:
    """Worker-side view of the snapshot segment.

    Built either from a writer (``writer.reader()`` — the fork path:
    the child inherits the parent's mapping) or by attaching to a
    segment ``name``.
    """

    def __init__(self, name: Optional[str] = None, shm=None) -> None:
        if shm is None:
            if name is None:
                raise ValueError("SnapshotReader needs a name or a segment")
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(name=name)
            self._owned = True
        else:
            self._owned = False
        self._shm = shm

    def read(self) -> Optional[Tuple[int, bytes]]:
        """``(generation, payload)`` of the latest stable snapshot.

        Returns ``None`` when nothing has been published yet.  Raises
        :class:`RuntimeError` when the read cannot stabilize (a writer
        stuck mid-publish) — the caller's cue to fall back to the pipe.
        """
        buf = self._shm.buf
        for _ in range(_READ_RETRIES):
            gen1, length = _HDR.unpack_from(buf, 0)
            if gen1 == 0:
                return None
            if gen1 & 1:
                time.sleep(0)  # writer mid-publish: yield and retry
                continue
            # Copy out *before* re-checking the generation: the payload
            # must be immutable by the time the seqlock validates it.
            payload = bytes(buf[_HDR.size : _HDR.size + length])
            gen2, _ = _HDR.unpack_from(buf, 0)
            if gen1 == gen2:
                return gen1, payload
        raise RuntimeError("snapshot read did not stabilize (writer stuck?)")

    def close(self) -> None:
        if self._owned:
            try:
                self._shm.close()
            except (OSError, BufferError):
                pass
