"""RAN database: node inventory and disaggregation merging (§4.2.2).

The RAN management stores information about connected agents and
"merges agents that belong to the same base station (e.g., CU agent and
DU agent) into the same RAN entity, facilitating base station control
across agents"; it also signals when a complete RAN forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.e2ap.ies import GlobalE2NodeId, NodeKind, RanFunctionItem


@dataclass
class AgentRecord:
    """One connected agent (one E2 node)."""

    conn_id: int
    node_id: GlobalE2NodeId
    functions: Dict[int, RanFunctionItem] = field(default_factory=dict)
    #: node-level configuration reported via E2 node config updates.
    config: Dict[str, str] = field(default_factory=dict)
    #: True while the agent's link is down but the node sits inside
    #: its grace window awaiting re-attachment (lifecycle resilience).
    stale: bool = False
    #: monotonic timestamp of the disconnect that marked it stale.
    stale_since: Optional[float] = None

    @property
    def kind(self) -> NodeKind:
        return self.node_id.kind

    def function_by_oid(self, oid: str) -> Optional[RanFunctionItem]:
        """First function whose service-model OID matches."""
        for item in self.functions.values():
            if item.oid == oid:
                return item
        return None


#: Node kinds that form a complete base station on their own.
_MONOLITHIC = {NodeKind.ENB, NodeKind.GNB}
#: Kind sets that together complete a disaggregated base station.
_SPLIT_COMPLETE = (
    {NodeKind.CU, NodeKind.DU},
    {NodeKind.CU_CP, NodeKind.CU_UP, NodeKind.DU},
)


@dataclass
class RanEntity:
    """A logical base station, possibly spread over several agents."""

    plmn: str
    nb_id: int
    agents: Dict[NodeKind, AgentRecord] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, int]:
        return (self.plmn, self.nb_id)

    @property
    def complete(self) -> bool:
        """True when every part of the base station is connected."""
        kinds = set(self.agents)
        if kinds & _MONOLITHIC:
            return True
        return any(required <= kinds for required in _SPLIT_COMPLETE)

    def agent_of_kind(self, kind: NodeKind) -> Optional[AgentRecord]:
        return self.agents.get(kind)

    def all_functions(self) -> List[Tuple[AgentRecord, RanFunctionItem]]:
        """Every (agent, function) pair across the entity's agents."""
        pairs = []
        for agent in self.agents.values():
            for item in agent.functions.values():
                pairs.append((agent, item))
        return pairs

    def find_function(self, oid: str) -> Optional[Tuple[AgentRecord, RanFunctionItem]]:
        """Locate a service model within the entity, whichever agent
        hosts it — base-station control across agents."""
        for agent, item in self.all_functions():
            if item.oid == oid:
                return agent, item
        return None


class RanDatabase:
    """Queryable store of agents and merged RAN entities.

    Indexed by connection id and by (plmn, nb_id); lookups are O(1)
    dict accesses — the "organizes its internal data structure more
    efficiently" property behind Fig. 8a's memory numbers.
    """

    def __init__(self) -> None:
        self._agents: Dict[int, AgentRecord] = {}
        self._entities: Dict[Tuple[str, int], RanEntity] = {}

    # -- mutation (driven by the server core) -------------------------

    def add_agent(self, record: AgentRecord) -> Tuple[RanEntity, bool]:
        """Insert an agent; returns (entity, became_complete_now)."""
        if record.conn_id in self._agents:
            raise ValueError(f"duplicate connection id {record.conn_id}")
        self._agents[record.conn_id] = record
        key = (record.node_id.plmn, record.node_id.nb_id)
        entity = self._entities.get(key)
        if entity is None:
            entity = RanEntity(plmn=key[0], nb_id=key[1])
            self._entities[key] = entity
        was_complete = entity.complete
        if record.kind in entity.agents:
            raise ValueError(
                f"entity {key} already has a {record.kind.name} agent; "
                f"duplicate node identity"
            )
        entity.agents[record.kind] = record
        return entity, entity.complete and not was_complete

    def remove_agent(self, conn_id: int) -> Optional[AgentRecord]:
        record = self._agents.pop(conn_id, None)
        if record is None:
            return None
        key = (record.node_id.plmn, record.node_id.nb_id)
        entity = self._entities.get(key)
        if entity is not None:
            entity.agents.pop(record.kind, None)
            if not entity.agents:
                del self._entities[key]
        return record

    def update_functions(
        self,
        conn_id: int,
        added: List[RanFunctionItem],
        removed: List[int],
    ) -> AgentRecord:
        """Apply a RIC service update to an agent's function table."""
        record = self._agents[conn_id]
        for item in added:
            record.functions[item.ran_function_id] = item
        for function_id in removed:
            record.functions.pop(function_id, None)
        return record

    def mark_stale(self, conn_id: int, now: float) -> Optional[AgentRecord]:
        """Flag an agent as stale (link down, grace window running).

        The record stays in the database — its entity keeps the agent,
        so a CU/DU pair does not flap through RAN_FORMED on every
        reconnect — until :meth:`remove_agent` garbage-collects it.
        """
        record = self._agents.get(conn_id)
        if record is not None:
            record.stale = True
            record.stale_since = now
        return record

    def revive(self, record: AgentRecord, new_conn_id: int) -> AgentRecord:
        """Re-home a stale record onto a fresh connection id."""
        self._agents.pop(record.conn_id, None)
        record.conn_id = new_conn_id
        record.stale = False
        record.stale_since = None
        self._agents[new_conn_id] = record
        return record

    # -- queries -------------------------------------------------------

    def agent(self, conn_id: int) -> Optional[AgentRecord]:
        return self._agents.get(conn_id)

    def agents(self, include_stale: bool = True) -> List[AgentRecord]:
        if include_stale:
            return list(self._agents.values())
        return [record for record in self._agents.values() if not record.stale]

    def stale_agents(self) -> List[AgentRecord]:
        return [record for record in self._agents.values() if record.stale]

    def find_node(self, node_id: GlobalE2NodeId) -> Optional[AgentRecord]:
        """Locate the record carrying exactly this E2 node identity.

        Used on E2 setup to detect a re-attachment (same node, new
        connection) so the stale-recovery path can fire.
        """
        entity = self._entities.get((node_id.plmn, node_id.nb_id))
        if entity is None:
            return None
        record = entity.agents.get(node_id.kind)
        if record is not None and record.node_id == node_id:
            return record
        return None

    def entity(self, plmn: str, nb_id: int) -> Optional[RanEntity]:
        return self._entities.get((plmn, nb_id))

    def entities(self) -> List[RanEntity]:
        return list(self._entities.values())

    def complete_entities(self) -> List[RanEntity]:
        return [entity for entity in self._entities.values() if entity.complete]

    def agents_with_oid(self, oid: str) -> List[Tuple[AgentRecord, RanFunctionItem]]:
        """All (agent, function) pairs exposing service model ``oid``."""
        matches = []
        for record in self._agents.values():
            item = record.function_by_oid(oid)
            if item is not None:
                matches.append((record, item))
        return matches

    def __len__(self) -> int:
        return len(self._agents)
