"""Protocol-Buffers-style codec used by the FlexRAN baseline.

FlexRAN encodes its custom south-bound protocol with Protobuf (§5.1,
§5.2).  This codec reproduces Protobuf's wire format characteristics:
varint-encoded integers and tag/length-delimited fields, byte-aligned.
Its CPU cost sits between the PER-style codec (bit-level work) and the
FlatBuffers-style codec (no decode pass): every varint is a byte loop
and decoding materializes the full tree — exactly the middle ground
the paper measures for FlexRAN's RTT (§5.2, Fig. 7a).
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.core.codec import base
from repro.core.codec import codegen as _codegen
from repro.core.codec.base import Codec, CodecError, validate_tree

_F64 = struct.Struct("<d")

#: Length-delimited fields are copied in chunks, modelling Protobuf's
#: wire scanning: cheaper per byte than the PER codec's per-octet
#: fragments, costlier than the FlatBuffers codec's zero-copy slices —
#: which is why FlexRAN's RTT lands between the ASN.1 and FB cases in
#: the paper's Fig. 7a.
_CHUNK = 32


def _copy_chunks(out: bytearray, raw: bytes) -> None:
    for offset in range(0, len(raw), _CHUNK):
        out.extend(raw[offset:offset + _CHUNK])


def _read_chunks(data: bytes, pos: int, length: int) -> bytes:
    chunks = []
    end = pos + length
    while pos < end:
        take = min(_CHUNK, end - pos)
        chunks.append(data[pos:pos + take])
        pos += take
    return b"".join(chunks)


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError(f"varint must be non-negative: {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Read an unsigned varint at ``pos``; returns (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        # Beyond real Protobuf's 64-bit varints: the generic value model
        # allows arbitrary ints, so only guard against runaway streams.
        if shift > 1024:
            raise CodecError("varint too long")


def zigzag(value: int) -> int:
    """Map signed to unsigned as Protobuf's sint types do."""
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


class ProtobufCodec(Codec):
    """Varint/TLV codec (registry name ``"pb"``)."""

    name = "pb"

    def encode(self, value: Any) -> bytes:
        if _codegen.ENABLED:
            out = _codegen.kernel_encode("pb", value)
            if out is not None:
                return out
        return self.encode_interpretive(value)

    def decode(self, data) -> Any:
        # Kernels index and slice raw ``bytes``; buffer-protocol inputs
        # (memoryview/bytearray from a zero-copy receive path) take the
        # interpretive lane, which is slice-type agnostic.
        if _codegen.ENABLED and type(data) is bytes:
            out = _codegen.kernel_decode("pb", data)
            if out is not None:
                return out
        return self.decode_interpretive(data)

    def encode_interpretive(self, value: Any) -> bytes:
        """The original field-walking encoder (differential-test oracle)."""
        validate_tree(value)
        out = bytearray()
        self._encode_value(out, value)
        return bytes(out)  # repro-lint: disable=RL007 — encoder-owned scratch; the Codec contract returns immutable bytes

    def decode_interpretive(self, data: bytes) -> Any:
        """The original field-walking decoder (differential-test oracle)."""
        try:
            value, pos = self._decode_value(data, 0)
        except (UnicodeDecodeError, ValueError, OverflowError, MemoryError, struct.error) as exc:
            raise CodecError(f"corrupt protobuf stream: {exc}") from exc
        if pos != len(data):
            raise CodecError(f"{len(data) - pos} trailing bytes after message")
        return value

    # -- encoding ----------------------------------------------------

    def _encode_value(self, out: bytearray, value: Any) -> None:
        if value is None:
            out.append(base.TAG_NONE)
        elif value is True:
            out.append(base.TAG_TRUE)
        elif value is False:
            out.append(base.TAG_FALSE)
        elif isinstance(value, int):
            out.append(base.TAG_INT)
            write_varint(out, zigzag(value))
        elif isinstance(value, float):
            out.append(base.TAG_FLOAT)
            out.extend(_F64.pack(value))
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(base.TAG_STR)
            write_varint(out, len(raw))
            _copy_chunks(out, raw)
        elif isinstance(value, bytes):
            out.append(base.TAG_BYTES)
            write_varint(out, len(value))
            _copy_chunks(out, value)
        elif isinstance(value, list):
            out.append(base.TAG_LIST)
            write_varint(out, len(value))
            for item in value:
                self._encode_value(out, item)
        elif isinstance(value, dict):
            out.append(base.TAG_DICT)
            write_varint(out, len(value))
            for key, item in value.items():
                raw = key.encode("utf-8")
                write_varint(out, len(raw))
                out.extend(raw)
                self._encode_value(out, item)
        else:  # pragma: no cover - validate_tree rejects these first
            raise CodecError(f"unsupported type: {type(value).__name__}")

    # -- decoding ----------------------------------------------------

    def _decode_value(self, data: bytes, pos: int) -> Tuple[Any, int]:
        if pos >= len(data):
            raise CodecError("truncated protobuf stream")
        tag = data[pos]
        pos += 1
        if tag == base.TAG_NONE:
            return None, pos
        if tag == base.TAG_TRUE:
            return True, pos
        if tag == base.TAG_FALSE:
            return False, pos
        if tag == base.TAG_INT:
            raw, pos = read_varint(data, pos)
            return unzigzag(raw), pos
        if tag == base.TAG_FLOAT:
            if pos + 8 > len(data):
                raise CodecError("truncated float")
            return _F64.unpack_from(data, pos)[0], pos + 8
        if tag == base.TAG_STR:
            length, pos = read_varint(data, pos)
            if pos + length > len(data):
                raise CodecError("truncated string")
            return _read_chunks(data, pos, length).decode("utf-8"), pos + length
        if tag == base.TAG_BYTES:
            length, pos = read_varint(data, pos)
            if pos + length > len(data):
                raise CodecError("truncated bytes")
            return _read_chunks(data, pos, length), pos + length
        if tag == base.TAG_LIST:
            count, pos = read_varint(data, pos)
            items: List[Any] = []
            for _ in range(count):
                item, pos = self._decode_value(data, pos)
                items.append(item)
            return items, pos
        if tag == base.TAG_DICT:
            count, pos = read_varint(data, pos)
            result = {}
            for _ in range(count):
                key_len, pos = read_varint(data, pos)
                if pos + key_len > len(data):
                    raise CodecError("truncated dict key")
                # str(buf, enc) decodes any buffer-protocol slice —
                # memoryview slices have no .decode().
                key = str(data[pos:pos + key_len], "utf-8")
                pos += key_len
                result[key], pos = self._decode_value(data, pos)
            return result, pos
        raise CodecError(f"unknown protobuf tag: {tag}")


base.register_codec(ProtobufCodec())
