"""Kernel manifest: pins the generated codec kernels by digest.

The codegen kernels (DESIGN.md §11) exist only in memory — rendered
from the schema registry and ``exec``'d at first use — so "do not
hand-edit generated code" needs an on-disk anchor.  This module
renders :mod:`repro.core.codec.kernel_manifest`, a generated file
listing the SHA-256 of every (codec × schema) kernel source inside a
``repro-lint`` generated region.  Two gates hang off it:

* ``repro-lint`` RL006 verifies the region digest, so hand edits to
  the manifest are flagged statically;
* ``tests/test_repro_lint.py`` re-renders every kernel and compares
  digests, so any change to the emitters or schemas that alters
  kernel output must be acknowledged by regenerating::

      PYTHONPATH=src python -m repro.core.codec.manifest --write

That acknowledgment is the point: kernel output changes only with a
schema/emitter change, reviewed next to a refreshed manifest — never
via a quiet edit.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.core.codec import codegen, schema

#: emitter names known to the codegen layer.
CODECS = ("fb", "asn", "pb")

MANIFEST_RELPATH = "src/repro/core/codec/kernel_manifest.py"

_HEADER = '''"""GENERATED FILE - kernel source digests. Do not edit by hand.

Regenerate with::

    PYTHONPATH=src python -m repro.core.codec.manifest --write

Each entry pins the SHA-256 of one generated (codec x schema) kernel
source.  repro-lint rule RL006 verifies the region digest below;
tests/test_repro_lint.py verifies the entries against a fresh render.
"""

'''


def kernel_digests() -> Dict[str, str]:
    """``"codec:kind:name" → sha256`` for every supported kernel."""
    digests: Dict[str, str] = {}
    for codec in CODECS:
        for procedure, msg_class in schema.message_schema_keys():
            sch = schema.envelope_schema(procedure, msg_class)
            if sch is None:
                continue
            source = codegen.build_kernel_source(codec, sch)
            if source is None:
                continue
            key = f"{codec}:env:{sch.name}"
            digests[key] = hashlib.sha256(source.encode("utf-8")).hexdigest()
        for name in schema.payload_schema_names():
            sch = schema.payload_schema(name)
            if sch is None:
                continue
            source = codegen.build_kernel_source(codec, sch)
            if source is None:
                continue
            key = f"{codec}:pay:{name}"
            digests[key] = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return digests


def render_manifest() -> str:
    """Full text of kernel_manifest.py for the current registry."""
    digests = kernel_digests()
    body = ["KERNEL_SHA256 = {"]
    for key in sorted(digests):
        body.append(f'    "{key}": "{digests[key]}",')
    body.append("}")
    region = hashlib.sha256("\n".join(body).encode("utf-8")).hexdigest()
    lines = [
        _HEADER.rstrip("\n"),
        "",
        f"# repro-lint: generated begin sha256={region}",
        *body,
        "# repro-lint: generated end",
        "",
    ]
    return "\n".join(lines)


def manifest_path(root: Optional[Path] = None) -> Path:
    if root is None:
        # src/repro/core/codec/manifest.py → repo root is 5 levels up.
        root = Path(__file__).resolve().parents[4]
    return root / MANIFEST_RELPATH


def write_manifest(root: Optional[Path] = None) -> Path:
    path = manifest_path(root)
    path.write_text(render_manifest(), encoding="utf-8")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.core.codec.manifest",
        description="render or refresh the generated kernel digest manifest",
    )
    parser.add_argument(
        "--write", action="store_true", help="rewrite kernel_manifest.py in place"
    )
    parser.add_argument("--root", default=None, help="repo root (default: inferred)")
    args = parser.parse_args(argv)
    root = Path(args.root) if args.root else None
    if args.write:
        path = write_manifest(root)
        print(f"wrote {path}")
        return 0
    sys.stdout.write(render_manifest())
    return 0


if __name__ == "__main__":
    sys.exit(main())
