"""Codec interface, value model, and registry.

The *generic value tree* exchanged with codecs is restricted to:

* ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``
* ``list`` of values
* ``dict`` with ``str`` keys and value-tree values (field order is
  significant and preserved)

E2AP message dataclasses lower themselves to this model
(:mod:`repro.core.e2ap.messages`), so codecs never see protocol types —
exactly the decoupling the paper's intermediate representation provides.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Tuple, Type

Value = Any  # documented recursive union; Python <3.12 friendly alias


class CodecError(Exception):
    """Raised when encoding or decoding fails.

    ``message_type`` and ``field`` carry the E2AP message type name and
    the offending field when the failure context knows them (set via
    :meth:`with_context`), so containment counters (``decode.contained``)
    are debuggable from logs rather than opaque tallies.
    """

    def __init__(
        self,
        message: str,
        message_type: str = None,
        field: str = None,
    ) -> None:
        super().__init__(message)
        self.message_type = message_type
        self.field = field

    def with_context(self, message_type: str = None, field: str = None) -> "CodecError":
        """Attach message-type/field context without clobbering existing."""
        if message_type is not None and self.message_type is None:
            self.message_type = message_type
        if field is not None and self.field is None:
            self.field = field
        return self

    def __str__(self) -> str:
        text = super().__str__()
        context = []
        if self.message_type is not None:
            context.append(f"message={self.message_type}")
        if self.field is not None:
            context.append(f"field={self.field}")
        if context:
            return f"{text} [{', '.join(context)}]"
        return text


class Codec(ABC):
    """Turns a generic value tree into bytes and back.

    Subclasses must be stateless; one instance can serve many
    connections concurrently.
    """

    #: registry key and wire identifier, e.g. ``"asn"``.
    name: str = ""

    @abstractmethod
    def encode(self, value: Value) -> bytes:
        """Serialize ``value``; raises :class:`CodecError` on bad input."""

    @abstractmethod
    def decode(self, data: bytes) -> Value:
        """Deserialize ``data``; raises :class:`CodecError` on bad input.

        Codecs with lazy semantics (FlatBuffers-style) may return a
        read-only mapping view over the buffer instead of fresh dicts.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Codec] = {}

#: Bumped on every (re-)registration.  Encode caches keyed on a codec
#: *name* embed this version so swapping in a different implementation
#: under the same name (§4.3) can never serve stale bytes.
_REGISTRY_VERSION = 0


def register_codec(codec: Codec) -> None:
    """Add ``codec`` to the global registry under ``codec.name``.

    Re-registering the same name replaces the previous entry; this is
    how a deployment swaps in a vendor-specific scheme (§4.3).
    """
    global _REGISTRY_VERSION
    if not codec.name:
        raise ValueError("codec has no name")
    _REGISTRY[codec.name] = codec
    _REGISTRY_VERSION += 1


def registry_version() -> int:
    """Monotonic counter of codec (re-)registrations."""
    return _REGISTRY_VERSION


def get_codec(name: str) -> Codec:
    """Look up a registered codec; raises KeyError with choices listed."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown codec {name!r}; available: {sorted(_REGISTRY)}") from None


def available_codecs() -> List[str]:
    """Names of all registered codecs, sorted."""
    return sorted(_REGISTRY)


def validate_tree(value: Value, _depth: int = 0) -> None:
    """Check that ``value`` stays within the generic value model.

    Raises :class:`CodecError` on foreign types or absurd nesting; used
    by codecs at the encode boundary so errors surface early and
    uniformly rather than deep inside bit packing.
    """
    if _depth > 64:
        raise CodecError("value tree deeper than 64 levels")
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return
    if isinstance(value, list):
        for item in value:
            validate_tree(item, _depth + 1)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"non-string dict key: {key!r}")
            validate_tree(item, _depth + 1)
        return
    raise CodecError(f"unsupported type in value tree: {type(value).__name__}")


# Type tags shared by the self-describing codecs.  ASN.1 PER proper is
# schema-driven and tag-free; our codecs carry 4-bit tags to stay
# generic while keeping the tag cost negligible.
TAG_NONE = 0
TAG_FALSE = 1
TAG_TRUE = 2
TAG_INT = 3
TAG_FLOAT = 4
TAG_STR = 5
TAG_BYTES = 6
TAG_LIST = 7
TAG_DICT = 8

TAG_NAMES: Tuple[str, ...] = (
    "none",
    "false",
    "true",
    "int",
    "float",
    "str",
    "bytes",
    "list",
    "dict",
)


def materialize(value: Value) -> Value:
    """Convert lazy codec views into plain dicts/lists recursively.

    Plain values pass through unchanged, so callers can normalize the
    output of any codec before comparing trees.
    """
    # Local import keeps base free of a hard dependency on flat.
    from repro.core.codec.flat import FlatView

    if isinstance(value, FlatView):
        return materialize(value.to_dict())
    if isinstance(value, dict):
        return {key: materialize(item) for key, item in value.items()}
    if isinstance(value, list):
        return [materialize(item) for item in value]
    if isinstance(value, (memoryview, bytearray)):
        # Zero-copy decode over a buffer-protocol input hands out
        # sub-views; materialization is where they become owned bytes.
        return bytes(value)
    return value
