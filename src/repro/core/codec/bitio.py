"""Bit-level reader/writer used by the PER-style codec.

ASN.1 aligned PER packs values at bit granularity, aligning to octet
boundaries only around length-prefixed fields.  These helpers reproduce
that access pattern while performing the packing with *word-level*
operations: the writer accumulates pending bits in a single int and
flushes whole octets per call via ``int.to_bytes``; the reader pulls
multi-bit windows with ``int.from_bytes`` instead of indexing octets
bit by bit.  The wire format is unchanged — PER stays compact on the
wire and still costs more CPU than the flat codec (the trade-off at the
center of the paper's Section 5.2) because every field is walked on
encode *and* decode; only the constant factor per field drops.
"""

from __future__ import annotations

from repro.core.codec.base import CodecError


class BitWriter:
    """Append-only bit buffer.

    Bits are written most-significant first within each octet, matching
    PER conventions.  Whole octets live in ``_buffer``; up to seven
    pending bits wait in ``_acc`` (an int, MSB-first) until a write
    completes the octet.

    Example:
        >>> w = BitWriter()
        >>> w.write_bits(0b101, 3)
        >>> w.align()
        >>> w.getvalue()
        b'\\xa0'
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0  # pending bits, value-aligned (LSB is newest bit)
        self._nacc = 0  # number of pending bits, 0..7

    def write_bit(self, bit: int) -> None:
        """Append one bit (0 or 1)."""
        self._acc = (self._acc << 1) | (1 if bit else 0)
        self._nacc += 1
        if self._nacc == 8:
            self._buffer.append(self._acc)
            self._acc = 0
            self._nacc = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of non-negative ``value``, MSB first."""
        if width < 0:
            raise ValueError(f"negative width: {width}")
        if value < 0:
            raise ValueError(f"negative value: {value}")
        if width and value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        nbits = self._nacc + width
        acc = (self._acc << width) | value
        rem = nbits & 7
        if nbits >= 8:
            top = acc >> rem
            self._buffer += top.to_bytes(nbits >> 3, "big")
            acc &= (1 << rem) - 1
        self._acc = acc
        self._nacc = rem

    def align(self) -> None:
        """Pad with zero bits to the next octet boundary."""
        if self._nacc:
            self._buffer.append((self._acc << (8 - self._nacc)) & 0xFF)
            self._acc = 0
            self._nacc = 0

    def write_bytes(self, data: bytes) -> None:
        """Append whole octets (aligns first, as PER does for strings)."""
        self.align()
        self._buffer += data

    def write_varlen(self, length: int) -> None:
        """PER-style length determinant.

        * < 128: one octet, top bit clear.
        * < 16384: two octets, top bits ``10``.
        * otherwise: ``11`` marker octet followed by a 4-octet length
          (a simplification of PER fragmentation, adequate for E2AP
          message sizes).
        """
        if length < 0:
            raise ValueError(f"negative length: {length}")
        self.align()
        if length < 0x80:
            self._buffer.append(length)
        elif length < 0x4000:
            self._buffer.append(0x80 | (length >> 8))
            self._buffer.append(length & 0xFF)
        else:
            self._buffer.append(0xC0)
            self._buffer += length.to_bytes(4, "big")

    def write_unsigned(self, value: int) -> None:
        """Minimal-octet unsigned integer with a length determinant."""
        if value < 0:
            raise ValueError(f"negative value: {value}")
        octets = (value.bit_length() + 7) // 8 or 1
        self.write_varlen(octets)
        self._buffer += value.to_bytes(octets, "big")

    def write_fragmented(self, raw: bytes, fragsize: int) -> None:
        """Fragmented octet string: (5-bit size marker, aligned run) groups.

        Models PER's per-octet constraint handling; each full group at
        an octet boundary collapses to one marker octet plus the data
        run, appended without touching the bit accumulator.
        """
        total = len(raw)
        marker = bytes(((fragsize & 0x1F) << 3,))
        offset = 0
        full = total // fragsize
        if full and self._nacc == 0:
            # Bulk run: every full group is marker octet + fragsize data
            # octets, so the whole run joins in one C-level pass.
            span = full * fragsize
            self._buffer += marker.join(
                (b"",) + tuple(
                    raw[start:start + fragsize]
                    for start in range(0, span, fragsize)
                )
            )
            offset = span
        while offset < total:
            left = total - offset
            take = fragsize if left > fragsize else left
            if take == fragsize and self._nacc == 0:
                self._buffer += marker
                self._buffer += raw[offset:offset + fragsize]
            else:
                self.write_bits(take & 0x1F, 5)
                self.write_bytes(raw[offset:offset + take])
            offset += take

    @property
    def bit_length(self) -> int:
        """Total number of bits written."""
        return len(self._buffer) * 8 + self._nacc

    def getvalue(self) -> bytes:
        """The packed buffer; the final partial octet is zero-padded."""
        if self._nacc:
            return bytes(self._buffer) + bytes(
                ((self._acc << (8 - self._nacc)) & 0xFF,)
            )
        return bytes(self._buffer)


class BitReader:
    """Sequential bit reader mirroring :class:`BitWriter`.

    Maintains a single bit cursor; multi-bit reads extract an
    ``int.from_bytes`` window over the covered octets and mask, and
    octet reads slice through a :class:`memoryview` so large payloads
    are copied exactly once.
    """

    __slots__ = ("_data", "_view", "_pos", "_nbits")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._view = memoryview(data)
        self._pos = 0  # cursor in bits
        self._nbits = len(data) * 8

    def read_bit(self) -> int:
        pos = self._pos
        if pos >= self._nbits:
            raise EOFError("bit stream exhausted")
        self._pos = pos + 1
        return (self._data[pos >> 3] >> (7 - (pos & 7))) & 1

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits, MSB first, as a non-negative int."""
        if width < 0:
            raise ValueError(f"negative width: {width}")
        if width == 0:
            return 0
        pos = self._pos
        end = pos + width
        if end > self._nbits:
            raise EOFError("bit stream exhausted")
        first = pos >> 3
        last = (end + 7) >> 3
        window = int.from_bytes(self._view[first:last], "big")
        shift = last * 8 - end
        self._pos = end
        return (window >> shift) & ((1 << width) - 1)

    def align(self) -> None:
        """Skip to the next octet boundary."""
        self._pos = (self._pos + 7) & ~7

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` whole octets (aligning first)."""
        self.align()
        start = self._pos >> 3
        end = start + count
        if end * 8 > self._nbits:
            raise EOFError(
                f"need {count} octets, have {len(self._data) - start}"
            )
        self._pos = end * 8
        return bytes(self._view[start:end])

    def read_varlen(self) -> int:
        """Inverse of :meth:`BitWriter.write_varlen`.

        The long form's marker octet is exactly ``0xC0``; any other
        octet with top bits ``11`` is not produced by the writer and is
        rejected rather than having its low 6 bits silently discarded.
        """
        self.align()
        first = self.read_bytes(1)[0]
        if first < 0x80:
            return first
        if first & 0x40 == 0:
            second = self.read_bytes(1)[0]
            return ((first & 0x3F) << 8) | second
        if first != 0xC0:
            raise CodecError(
                f"invalid length determinant marker: {first:#04x} (expected 0xc0)"
            )
        return int.from_bytes(self.read_bytes(4), "big")

    def read_unsigned(self) -> int:
        """Inverse of :meth:`BitWriter.write_unsigned`."""
        octets = self.read_varlen()
        return int.from_bytes(self.read_bytes(octets), "big")

    def read_fragmented(self, length: int, fragsize: int) -> bytes:
        """Inverse of :meth:`BitWriter.write_fragmented`.

        Full groups starting on an octet boundary are consumed as one
        marker-octet check plus a memoryview slice; the final (or an
        unaligned) group falls back to bit-level reads.
        """
        chunks = []
        remaining = length
        data = self._data
        view = self._view
        stride = fragsize + 1
        full = remaining // fragsize
        if full and self._pos & 7 == 0:
            # Bulk run: markers sit at a fixed stride, so one strided
            # compare validates them all and one strided delete strips
            # them, leaving the payload octets in a single pass.
            base = self._pos >> 3
            end = base + full * stride
            if end > len(data):
                raise EOFError(
                    f"need {full * stride} octets, have {len(data) - base}"
                )
            block = bytearray(view[base:end])
            markers = block[::stride]
            if markers == bytes((((fragsize & 0x1F) << 3),)) * full:
                del block[::stride]
                chunks.append(block)
                self._pos = end * 8
                remaining -= full * fragsize
            # A marker mismatch (or nonzero pad bits in a foreign
            # stream) falls through to the per-group path below, which
            # reports it exactly as the bit-level reader always has.
        while remaining > 0:
            take = fragsize if remaining > fragsize else remaining
            marker = self.read_bits(5)
            if marker != take & 0x1F:
                raise CodecError(
                    f"octet fragment marker mismatch: {marker} != {take & 0x1F}"
                )
            chunks.append(self.read_bytes(take))
            remaining -= take
        return b"".join(chunks)

    @property
    def exhausted(self) -> bool:
        """True once all complete octets have been consumed."""
        return self._pos >> 3 >= len(self._data)
