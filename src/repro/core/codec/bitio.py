"""Bit-level reader/writer used by the PER-style codec.

ASN.1 aligned PER packs values at bit granularity, aligning to octet
boundaries only around length-prefixed fields.  These helpers reproduce
that access pattern: every write/read touches individual bits, which is
what makes PER compact on the wire but comparatively CPU-expensive —
the trade-off at the center of the paper's Section 5.2.
"""

from __future__ import annotations


class BitWriter:
    """Append-only bit buffer.

    Bits are written most-significant first within each octet, matching
    PER conventions.

    Example:
        >>> w = BitWriter()
        >>> w.write_bits(0b101, 3)
        >>> w.align()
        >>> w.getvalue()
        b'\\xa0'
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._bitpos = 0  # bits used in the last byte, 0..7

    def write_bit(self, bit: int) -> None:
        """Append one bit (0 or 1)."""
        if self._bitpos == 0:
            self._buffer.append(0)
        if bit:
            self._buffer[-1] |= 0x80 >> self._bitpos
        self._bitpos = (self._bitpos + 1) & 7

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of non-negative ``value``, MSB first."""
        if width < 0:
            raise ValueError(f"negative width: {width}")
        if value < 0:
            raise ValueError(f"negative value: {value}")
        if width and value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def align(self) -> None:
        """Pad with zero bits to the next octet boundary."""
        while self._bitpos != 0:
            self.write_bit(0)

    def write_bytes(self, data: bytes) -> None:
        """Append whole octets (aligns first, as PER does for strings)."""
        self.align()
        self._buffer.extend(data)

    def write_varlen(self, length: int) -> None:
        """PER-style length determinant.

        * < 128: one octet, top bit clear.
        * < 16384: two octets, top bits ``10``.
        * otherwise: ``11`` marker octet followed by a 4-octet length
          (a simplification of PER fragmentation, adequate for E2AP
          message sizes).
        """
        if length < 0:
            raise ValueError(f"negative length: {length}")
        self.align()
        if length < 0x80:
            self._buffer.append(length)
        elif length < 0x4000:
            self._buffer.append(0x80 | (length >> 8))
            self._buffer.append(length & 0xFF)
        else:
            self._buffer.append(0xC0)
            self._buffer.extend(length.to_bytes(4, "big"))

    def write_unsigned(self, value: int) -> None:
        """Minimal-octet unsigned integer with a length determinant."""
        if value < 0:
            raise ValueError(f"negative value: {value}")
        octets = (value.bit_length() + 7) // 8 or 1
        self.write_varlen(octets)
        self.write_bytes(value.to_bytes(octets, "big"))

    @property
    def bit_length(self) -> int:
        """Total number of bits written."""
        if not self._buffer:
            return 0
        tail = self._bitpos if self._bitpos else 8
        return (len(self._buffer) - 1) * 8 + tail

    def getvalue(self) -> bytes:
        """The packed buffer; the final partial octet is zero-padded."""
        return bytes(self._buffer)


class BitReader:
    """Sequential bit reader mirroring :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._byte = 0
        self._bit = 0

    def read_bit(self) -> int:
        if self._byte >= len(self._data):
            raise EOFError("bit stream exhausted")
        bit = (self._data[self._byte] >> (7 - self._bit)) & 1
        self._bit += 1
        if self._bit == 8:
            self._bit = 0
            self._byte += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits, MSB first, as a non-negative int."""
        if width < 0:
            raise ValueError(f"negative width: {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def align(self) -> None:
        """Skip to the next octet boundary."""
        if self._bit != 0:
            self._bit = 0
            self._byte += 1

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` whole octets (aligning first)."""
        self.align()
        end = self._byte + count
        if end > len(self._data):
            raise EOFError(f"need {count} octets, have {len(self._data) - self._byte}")
        chunk = self._data[self._byte:end]
        self._byte = end
        return chunk

    def read_varlen(self) -> int:
        """Inverse of :meth:`BitWriter.write_varlen`."""
        self.align()
        first = self.read_bytes(1)[0]
        if first < 0x80:
            return first
        if first & 0x40 == 0:
            second = self.read_bytes(1)[0]
            return ((first & 0x3F) << 8) | second
        return int.from_bytes(self.read_bytes(4), "big")

    def read_unsigned(self) -> int:
        """Inverse of :meth:`BitWriter.write_unsigned`."""
        octets = self.read_varlen()
        return int.from_bytes(self.read_bytes(octets), "big")

    @property
    def exhausted(self) -> bool:
        """True once all complete octets have been consumed."""
        return self._byte >= len(self._data)
