"""ASN.1 aligned-PER-style codec.

Reproduces the cost model of the PER encoding mandated by O-RAN for
E2AP and the standardized service models: values are packed at bit
granularity with length determinants, yielding the smallest wire size
of the three codecs, at the price of per-field bit manipulation on
**both** encode and decode (no lazy access is possible — the stream
must be walked linearly).

Differences from real PER are deliberate and documented in DESIGN.md:
real PER is schema-driven (tag-free); this codec carries a 4-bit type
tag per value to stay generic.  The tag is small enough that the size
ranking versus the FlatBuffers-style codec matches the paper.
"""

from __future__ import annotations

import struct
from typing import Any, Dict

from repro.core.codec import base
from repro.core.codec import codegen as _codegen
from repro.core.codec.base import Codec, CodecError
from repro.core.codec.bitio import BitReader, BitWriter

_TAG_WIDTH = 4
_SMALL_INT_LIMIT = 1 << 6  # ints below this inline in 6 bits after a flag

#: Octet strings are processed in small fragments, modelling PER's
#: per-octet constraint handling: the cost of encoding/decoding an
#: OCTET STRING grows with its length (asn1c walks and validates the
#: content), which is why the paper's ASN.1 RTT penalty grows from 25 %
#: at 100 B payloads to 66 % at 1500 B (§5.2).
_FRAGMENT = 24

#: Dict keys are written as an aligned length determinant plus raw
#: octets, so for short keys the pair collapses to one cached cell
#: appended after ``align()`` — the tiny E2AP field-name vocabulary
#: makes this hit on every message.
_KEY_CELLS: Dict[str, bytes] = {}
_KEY_CELLS_MAX = 1 << 12


class PerCodec(Codec):
    """Bit-packed, compact, CPU-bound codec (registry name ``"asn"``)."""

    name = "asn"

    def encode(self, value: Any) -> bytes:
        if _codegen.ENABLED:
            out = _codegen.kernel_encode("asn", value)
            if out is not None:
                return out
        return self.encode_interpretive(value)

    def decode(self, data) -> Any:
        # Kernels index and slice raw ``bytes``; buffer-protocol inputs
        # (memoryview/bytearray from a zero-copy receive path) take the
        # interpretive lane, which reads through a memoryview anyway.
        if _codegen.ENABLED and type(data) is bytes:
            out = _codegen.kernel_decode("asn", data)
            if out is not None:
                return out
        return self.decode_interpretive(data)

    def encode_interpretive(self, value: Any) -> bytes:
        """The original field-walking encoder (differential-test oracle)."""
        writer = BitWriter()
        self._encode_value(writer, value, 0)
        writer.align()
        return writer.getvalue()

    def decode_interpretive(self, data: bytes) -> Any:
        """The original field-walking decoder (differential-test oracle)."""
        reader = BitReader(data)
        try:
            return self._decode_value(reader)
        except EOFError as exc:
            raise CodecError(f"truncated PER stream: {exc}") from exc
        except (UnicodeDecodeError, ValueError, OverflowError, MemoryError) as exc:
            raise CodecError(f"corrupt PER stream: {exc}") from exc

    # -- encoding ----------------------------------------------------

    def _encode_value(self, writer: BitWriter, value: Any, depth: int) -> None:
        """Encode one value; validation is folded into the single walk."""
        if value is None:
            writer.write_bits(base.TAG_NONE, _TAG_WIDTH)
        elif value is True:
            writer.write_bits(base.TAG_TRUE, _TAG_WIDTH)
        elif value is False:
            writer.write_bits(base.TAG_FALSE, _TAG_WIDTH)
        elif isinstance(value, int):
            self._encode_int(writer, value)
        elif isinstance(value, float):
            writer.write_bits(base.TAG_FLOAT, _TAG_WIDTH)
            writer.write_bytes(struct.pack(">d", value))
        elif isinstance(value, str):
            writer.write_bits(base.TAG_STR, _TAG_WIDTH)
            raw = value.encode("utf-8")
            writer.write_varlen(len(raw))
            self._write_octets(writer, raw)
        elif isinstance(value, bytes):
            writer.write_bits(base.TAG_BYTES, _TAG_WIDTH)
            writer.write_varlen(len(value))
            self._write_octets(writer, value)
        elif isinstance(value, list):
            if depth >= 64 and value:
                raise CodecError("value tree deeper than 64 levels")
            writer.write_bits(base.TAG_LIST, _TAG_WIDTH)
            writer.write_varlen(len(value))
            child = depth + 1
            for item in value:
                self._encode_value(writer, item, child)
        elif isinstance(value, dict):
            if depth >= 64 and value:
                raise CodecError("value tree deeper than 64 levels")
            writer.write_bits(base.TAG_DICT, _TAG_WIDTH)
            writer.write_varlen(len(value))
            child = depth + 1
            for key, item in value.items():
                cell = _KEY_CELLS.get(key)
                if cell is None:
                    if not isinstance(key, str):
                        raise CodecError(f"non-string dict key: {key!r}")
                    raw = key.encode("utf-8")
                    if len(raw) < 0x80 and len(_KEY_CELLS) < _KEY_CELLS_MAX:
                        # One-octet determinant + octets, reusable verbatim.
                        _KEY_CELLS[key] = bytes((len(raw),)) + raw  # repro-lint: disable=RL007 — builds the cached key cell, amortized across encodes
                    writer.write_varlen(len(raw))
                    writer.write_bytes(raw)
                else:
                    writer.write_bytes(cell)
                self._encode_value(writer, item, child)
        else:
            raise CodecError(f"unsupported type: {type(value).__name__}")

    @staticmethod
    def _write_octets(writer: BitWriter, raw: bytes) -> None:
        """Fragmented octet-string write (per-octet cost model)."""
        writer.write_fragmented(raw, _FRAGMENT)

    @staticmethod
    def _read_octets(reader: BitReader, length: int) -> bytes:
        """Inverse of :meth:`_write_octets`."""
        return reader.read_fragmented(length, _FRAGMENT)

    def _encode_int(self, writer: BitWriter, value: int) -> None:
        """Sign bit, then small-inline flag + 6 bits, or length+octets."""
        writer.write_bits(base.TAG_INT, _TAG_WIDTH)
        magnitude = -value if value < 0 else value
        writer.write_bit(1 if value < 0 else 0)
        if magnitude < _SMALL_INT_LIMIT:
            writer.write_bit(1)
            writer.write_bits(magnitude, 6)
        else:
            writer.write_bit(0)
            writer.write_unsigned(magnitude)

    # -- decoding ----------------------------------------------------

    def _decode_value(self, reader: BitReader) -> Any:
        tag = reader.read_bits(_TAG_WIDTH)
        if tag == base.TAG_NONE:
            return None
        if tag == base.TAG_TRUE:
            return True
        if tag == base.TAG_FALSE:
            return False
        if tag == base.TAG_INT:
            negative = reader.read_bit()
            if reader.read_bit():
                magnitude = reader.read_bits(6)
            else:
                magnitude = reader.read_unsigned()
            return -magnitude if negative else magnitude
        if tag == base.TAG_FLOAT:
            return struct.unpack(">d", reader.read_bytes(8))[0]
        if tag == base.TAG_STR:
            length = reader.read_varlen()
            return self._read_octets(reader, length).decode("utf-8")
        if tag == base.TAG_BYTES:
            length = reader.read_varlen()
            return self._read_octets(reader, length)
        if tag == base.TAG_LIST:
            count = reader.read_varlen()
            return [self._decode_value(reader) for _ in range(count)]
        if tag == base.TAG_DICT:
            count = reader.read_varlen()
            result = {}
            for _ in range(count):
                key_len = reader.read_varlen()
                key = reader.read_bytes(key_len).decode("utf-8")
                result[key] = self._decode_value(reader)
            return result
        raise CodecError(f"unknown PER tag: {tag}")


base.register_codec(PerCodec())
