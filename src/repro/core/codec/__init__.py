"""Pluggable encoding schemes over a generic value model.

The paper identifies the encoding/decoding algorithm as an orthogonal
abstraction of E2 (§4.3) and supports both ASN.1 PER and Google
FlatBuffers, selectable independently for the outer E2AP layer and the
inner E2SM layer.  This package reproduces that design:

* every message lowers to a *generic value tree* (dict/list/scalars),
* a :class:`~repro.core.codec.base.Codec` turns trees into bytes and back,
* codecs register by name in a global registry so new schemes can be
  added without touching the SDK (forward compatibility, §4.3).

On top of the generic walkers, :mod:`repro.core.codec.schema` declares
every E2AP message and E2SM payload shape once, and
:mod:`repro.core.codec.codegen` compiles each (shape, codec) pair into
a specialized encode/decode kernel with fused struct packs and unrolled
field access.  The interpretive walkers stay behind a flag
(``REPRO_CODEC_INTERPRETIVE=1`` or :func:`codegen.set_kernels_enabled`)
as the differential-testing oracle.  See DESIGN.md §11.

Three codecs ship, matching the cost models measured in the paper:

======== ====================== ==========================================
name     modelled after         cost profile
======== ====================== ==========================================
``asn``  ASN.1 aligned PER      compact wire size; bit-level work on both
                                encode and decode
``fb``   Google FlatBuffers     +30-40 B fixed overhead; cheap encode;
                                lazy zero-copy reads instead of decode
``pb``   Protocol Buffers       between the two (FlexRAN baseline)
======== ====================== ==========================================
"""

from repro.core.codec.base import (
    Codec,
    CodecError,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.core.codec.bitio import BitReader, BitWriter
from repro.core.codec import codegen, schema
from repro.core.codec.codegen import (
    interpretive,
    kernels_enabled,
    set_kernels_enabled,
)
from repro.core.codec.per import PerCodec
from repro.core.codec.flat import FlatCodec, FlatView
from repro.core.codec.protobuf import ProtobufCodec

__all__ = [
    "Codec",
    "CodecError",
    "available_codecs",
    "get_codec",
    "register_codec",
    "BitReader",
    "BitWriter",
    "PerCodec",
    "FlatCodec",
    "FlatView",
    "ProtobufCodec",
    "codegen",
    "schema",
    "interpretive",
    "kernels_enabled",
    "set_kernels_enabled",
]
