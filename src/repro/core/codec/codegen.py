"""Layout compiler: schemas → specialized encode/decode kernels.

For every (schema × codec) pair this module emits flat Python source
with precomputed offsets: constant wire regions (tags, counts, field
directories, envelope discriminators) are folded into literal byte
strings, runs of fixed-width fields are fused into single
:class:`struct.Struct` packs/unpacks, and field access is unrolled —
no per-field dispatch, no generic tree walk.  The emitted source is a
pure function of the schema, so compiling twice yields identical text
(the CI determinism gate).

Correctness model — *guard-based deoptimization*: a kernel checks
every assumption the specialization makes (exact key tuples, value
types, int ranges, constant wire bytes) and returns ``None`` on any
mismatch; the codec then falls back to its interpretive walker, which
remains the behavioral oracle.  A kernel may therefore be *stricter*
than the interpreter (rejecting is always sound — the fallback
reproduces the interpretive result) but must never accept input the
interpreter would reject differently.  Unexpected exceptions inside a
kernel are also treated as a fallback, unless ``REPRO_CODEC_KERNEL_STRICT``
is set (the differential tests set it so real bugs cannot hide inside
the deoptimization path).

``REPRO_CODEC_INTERPRETIVE=1`` (or :func:`set_kernels_enabled`) turns
kernels off entirely, keeping the interpretive path selectable as the
differential-testing oracle.
"""

from __future__ import annotations

import os
import struct
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.codec import schema as _schema
from repro.core.codec.schema import (
    Bool,
    Bytes,
    ConstInt,
    F64,
    Int,
    Nested,
    Opt,
    Schema,
    Seq,
    Spec,
    Str,
    StrMap,
)
from repro.metrics import counters

_enc_hits = counters.get_counter("codec.kernel.encode_hits")
_enc_falls = counters.get_counter("codec.kernel.encode_fallbacks")
_dec_hits = counters.get_counter("codec.kernel.decode_hits")
_dec_falls = counters.get_counter("codec.kernel.decode_fallbacks")

# -- flags -----------------------------------------------------------

#: Kernels on unless the oracle is requested via the environment.
ENABLED = os.environ.get("REPRO_CODEC_INTERPRETIVE", "") not in ("1", "true", "yes")

#: Re-raise unexpected kernel exceptions instead of deoptimizing
#: (differential tests).  A mutable cell so generated dispatch closures
#: observe updates.
_STRICT = [os.environ.get("REPRO_CODEC_KERNEL_STRICT", "") in ("1", "true", "yes")]


def kernels_enabled() -> bool:
    return ENABLED


def set_kernels_enabled(enabled: bool) -> None:
    """Toggle generated kernels globally (tests, benchmarks)."""
    global ENABLED
    ENABLED = bool(enabled)


def set_strict(strict: bool) -> None:
    """Escalate unexpected kernel exceptions instead of falling back."""
    _STRICT[0] = bool(strict)


@contextmanager
def interpretive():
    """Context manager forcing the interpretive oracle."""
    global ENABLED
    prev = ENABLED
    ENABLED = False
    try:
        yield
    finally:
        ENABLED = prev


# -- shared wire constants -------------------------------------------

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_Q = struct.Struct("<q")
_I = struct.Struct("<I")
_H = struct.Struct("<H")
_D = struct.Struct("<d")
_D8 = struct.Struct(">d")
_BQ = struct.Struct("<Bq")

_B1 = tuple(bytes((i,)) for i in range(256))

#: flat: size word of an int64 cell, repeated for Seq(Int) blocks.
_SZ9 = b"\x09\x00\x00\x00"

#: PER: padded 2-byte cells for small ints (tag|sign|small-flag|6 bits,
#: then 4 zero pad bits supplied by the following alignment).
_PSP = tuple(
    bytes((0x34 | (v >> 4), (v & 0xF) << 4)) for v in range(64)
)
_PSN = tuple(
    bytes((0x3C | (m >> 4), (m & 0xF) << 4)) for m in range(64)
)

#: PER: combined length determinant + partial-fragment marker for
#: octet strings shorter than one fragment.
_OCT2 = tuple(bytes((l, (l << 3) & 0xFF)) for l in range(24))

#: pb: tag+zigzag cells for ints whose zigzag fits one varint byte.
_PBI = tuple(
    bytes((3, (v << 1 if v >= 0 else ((-v) << 1) - 1)))
    for v in range(-64, 64)
)


# -- runtime helpers shared by generated kernels ---------------------
# These are injected into every generated module's namespace; they
# return None/False on any shape violation so the kernel deoptimizes.


def _vlb(length: int) -> bytes:
    """PER length determinant as bytes (mirrors BitWriter.write_varlen)."""
    if length < 0x80:
        return _B1[length]
    if length < 0x4000:
        return bytes((0x80 | (length >> 8), length & 0xFF))
    return b"\xc0" + length.to_bytes(4, "big")


def _pfrag(raw: bytes) -> bytes:
    """PER fragmented octet-string body (mirrors write_fragmented)."""
    total = len(raw)
    full, rem = divmod(total, 24)
    if full:
        span = full * 24
        head = b"\xc0".join(
            (b"",) + tuple(raw[i:i + 24] for i in range(0, span, 24))
        )
        if rem:
            return head + _B1[rem << 3] + raw[span:]
        return head
    if rem:
        return _B1[rem << 3] + raw
    return b""


def _poct(raw: bytes) -> bytes:
    """PER length determinant + fragments for an aligned octet string."""
    l = len(raw)
    if l < 24:
        return _OCT2[l] + raw if l else b"\x00"
    return _vlb(l) + _pfrag(raw)


def _pint(x: int) -> bytes:
    """PER aligned integer cell (small 2-byte padded form or long form)."""
    if 0 <= x < 64:
        return _PSP[x]
    if -64 < x < 0:
        return _PSN[-x]
    if x < 0:
        sign, mag = 8, -x
    else:
        sign, mag = 0, x
    n = (mag.bit_length() + 7) // 8 or 1
    return _B1[0x30 | sign] + _vlb(n) + mag.to_bytes(n, "big")


def _popt_int(x) -> Optional[bytes]:
    """PER cell for Opt(Int): None or any int."""
    if x is None:
        return b"\x00"
    if type(x) is int:
        return _pint(x)
    return None


def _pseq_int(P: list, items: list) -> bool:
    """PER list-of-int body with bit-phase tracking across elements."""
    A = P.append
    ph = 0
    pd = 0
    for x in items:
        if type(x) is not int:
            return False
        if 0 <= x < 64:
            s, m = 0, x
        elif -64 < x < 0:
            s, m = 8, -x
        else:
            s = 8 if x < 0 else 0
            mag = -x if x < 0 else x
            n = (mag.bit_length() + 7) // 8 or 1
            if ph:
                A(_B1[(pd << 4) | 3])
                A(_B1[(s & 8) << 4])
                ph = 0
            else:
                A(_B1[0x30 | s])
            A(_vlb(n))
            A(mag.to_bytes(n, "big"))
            continue
        if ph:
            A(_B1[(pd << 4) | 3])
            A(_B1[(s << 4) | 0x40 | m])
            ph = 0
        else:
            A(_B1[0x34 | s | (m >> 4)])
            pd = m & 0xF
            ph = 4
    if ph:
        A(_B1[pd << 4])
    return True


def _pseq_str(P: list, items: list) -> bool:
    """PER list-of-str body (string cells keep octet alignment)."""
    A = P.append
    for x in items:
        if type(x) is not str:
            return False
        raw = x.encode("utf-8")
        A(b"\x50")
        A(_poct(raw))
    return True


def _dvl(data: bytes, o: int):
    """PER length determinant read; (value, new offset) or None."""
    first = data[o]
    if first < 0x80:
        return first, o + 1
    if first & 0x40 == 0:
        return ((first & 0x3F) << 8) | data[o + 1], o + 2
    if first != 0xC0:
        return None
    return int.from_bytes(data[o + 1:o + 5], "big"), o + 5


def _dfrag(data: bytes, o: int, length: int):
    """PER fragmented octet-string read; (bytes, new offset) or None."""
    full, rem = divmod(length, 24)
    chunks = []
    if full:
        end = o + full * 25
        block = bytearray(data[o:end])
        if len(block) != full * 25 or block[::25] != b"\xc0" * full:
            return None
        del block[::25]
        chunks.append(bytes(block))
        o = end
    if rem:
        if o >= len(data) or data[o] >> 3 != rem:
            return None
        piece = data[o + 1:o + 1 + rem]
        if len(piece) != rem:
            return None
        chunks.append(piece)
        o += 1 + rem
    return b"".join(chunks), o


def _doct(data: bytes, o: int):
    """PER aligned octet string (determinant + fragments)."""
    r = _dvl(data, o)
    if r is None:
        return None
    length, o = r
    return _dfrag(data, o, length)


def _dpseq_int(data: bytes, o: int, n: int):
    """PER list-of-int body read with phase tracking; (list, o) or None."""
    out = []
    ap = out.append
    ph = 0
    for _ in range(n):
        if ph:
            b0 = data[o] & 0xF
            if b0 != 3:
                return None
            b1 = data[o + 1]
            if b1 & 0x40:
                m = b1 & 0x3F
                ap(-m if b1 & 0x80 else m)
                o += 2
                ph = 0
            else:
                neg = b1 & 0x80
                r = _dvl(data, o + 2)
                if r is None:
                    return None
                ln, o = r
                raw = data[o:o + ln]
                if len(raw) != ln:
                    return None
                m = int.from_bytes(raw, "big")
                ap(-m if neg else m)
                o += ln
                ph = 0
        else:
            b0 = data[o]
            if b0 & 0xF4 == 0x34:
                m = ((b0 & 3) << 4) | (data[o + 1] >> 4)
                ap(-m if b0 & 8 else m)
                o += 1
                ph = 4
            elif b0 & 0xF4 == 0x30:
                r = _dvl(data, o + 1)
                if r is None:
                    return None
                ln, o = r
                raw = data[o:o + ln]
                if len(raw) != ln:
                    return None
                m = int.from_bytes(raw, "big")
                ap(-m if b0 & 8 else m)
                o += ln
            else:
                return None
    if ph:
        o += 1
    return out, o


def _dpseq_str(data: bytes, o: int, n: int):
    """PER list-of-str body read; (list, o) or None."""
    out = []
    for _ in range(n):
        if data[o] & 0xF0 != 0x50:
            return None
        r = _doct(data, o + 1)
        if r is None:
            return None
        raw, o = r
        out.append(raw.decode("utf-8"))
    return out, o


def _fseq_int(items) -> Optional[bytes]:
    """flat list-of-int chunk (tag, count, fused size block, cells)."""
    if type(items) is not list:
        return None
    n = len(items)
    parts = [b"\x07", _I.pack(n), _SZ9 * n]
    ap = parts.append
    pack = _BQ.pack
    for x in items:
        if type(x) is int and _INT64_MIN <= x <= _INT64_MAX:
            ap(pack(3, x))
        else:
            return None
    return b"".join(parts)


def _fseq_str(items) -> Optional[bytes]:
    """flat list-of-str chunk."""
    if type(items) is not list:
        return None
    raws = []
    for x in items:
        if type(x) is not str:
            return None
        raws.append(x.encode("utf-8"))
    n = len(raws)
    parts = [b"\x07", _I.pack(n)]
    ap = parts.append
    for raw in raws:
        ap(_I.pack(5 + len(raw)))
    for raw in raws:
        ap(b"\x05")
        ap(_I.pack(len(raw)))
        ap(raw)
    return b"".join(parts)


def _fseq_map(fn, items) -> Optional[bytes]:
    """flat list chunk with per-element generated encoder ``fn``."""
    if type(items) is not list:
        return None
    enc = []
    ap = enc.append
    for item in items:
        e = fn(item)
        if e is None:
            return None
        ap(e)
    n = len(enc)
    sizes = struct.pack("<%dI" % n, *map(len, enc)) if n else b""
    return b"".join([b"\x07", _I.pack(n), sizes] + enc)


def _fopt_int(x) -> Optional[bytes]:
    """flat cell for Opt(Int)."""
    if x is None:
        return b"\x00"
    if type(x) is int and _INT64_MIN <= x <= _INT64_MAX:
        return b"\x03" + _Q.pack(x)
    return None


def _fstrmap(d) -> Optional[bytes]:
    """flat dict chunk for an open str→str table."""
    if type(d) is not dict:
        return None
    parts = [b"\x08", _I.pack(len(d))]
    ap = parts.append
    vals = []
    vap = vals.append
    for k, v in d.items():
        if type(k) is not str or type(v) is not str:
            return None
        kr = k.encode("utf-8")
        vr = v.encode("utf-8")
        ap(_H.pack(len(kr)))
        ap(kr)
        ap(_I.pack(5 + len(vr)))
        vap(b"\x05")
        vap(_I.pack(len(vr)))
        vap(vr)
    return b"".join(parts + vals)


def _dfseq_int(data: bytes, o: int, n: int):
    """flat list-of-int cells read (size block already verified)."""
    end = o + 9 * n
    block = data[o:end]
    if len(block) != 9 * n:
        return None
    out = []
    ap = out.append
    for t, v in _BQ.iter_unpack(block):
        if t != 3:
            return None
        ap(v)
    return out


def _dfseq_map(fn, data: bytes, o: int, n: int):
    """flat list read via generated element decoder; (list, o) or None."""
    try:
        sizes = struct.unpack_from("<%dI" % n, data, o)
    except struct.error:
        return None
    o += 4 * n
    out = []
    ap = out.append
    for size in sizes:
        r = fn(data, o)
        if r is None:
            return None
        v, no = r
        if no - o != size:
            return None
        ap(v)
        o = no
    return out, o


def _dfseq_str(data: bytes, o: int, n: int):
    """flat list-of-str read; (list, o) or None."""
    try:
        sizes = struct.unpack_from("<%dI" % n, data, o)
    except struct.error:
        return None
    o += 4 * n
    out = []
    ap = out.append
    for size in sizes:
        if data[o:o + 1] != b"\x05":
            return None
        ln = _I.unpack_from(data, o + 1)[0]
        if size != 5 + ln:
            return None
        raw = data[o + 5:o + 5 + ln]
        if len(raw) != ln:
            return None
        ap(raw.decode("utf-8"))
        o += size
    return out, o


def _dfstrmap(data: bytes, o: int, n: int):
    """flat str→str table read; (dict, o) or None."""
    sizes = []
    keys = []
    for _ in range(n):
        try:
            klen = _H.unpack_from(data, o)[0]
        except struct.error:
            return None
        raw = data[o + 2:o + 2 + klen]
        if len(raw) != klen:
            return None
        keys.append(raw.decode("utf-8"))
        try:
            sizes.append(_I.unpack_from(data, o + 2 + klen)[0])
        except struct.error:
            return None
        o += 6 + klen
    out = {}
    for key, size in zip(keys, sizes):
        if data[o:o + 1] != b"\x05":
            return None
        ln = _I.unpack_from(data, o + 1)[0]
        if size != 5 + ln:
            return None
        raw = data[o + 5:o + 5 + ln]
        if len(raw) != ln:
            return None
        out[key] = raw.decode("utf-8")
        o += size
    return out, o


def _pbi(x: int) -> bytes:
    """pb tag+zigzag-varint cell for any int."""
    if -64 <= x < 64:
        return _PBI[x + 64]
    z = x << 1 if x >= 0 else ((-x) << 1) - 1
    out = bytearray(b"\x03")
    while True:
        b = z & 0x7F
        z >>= 7
        if z:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


def _vint(n: int) -> bytes:
    """pb unsigned varint bytes."""
    if n < 0x80:
        return _B1[n]
    out = bytearray()
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


def _rv(data: bytes, o: int):
    """pb varint read; (value, new offset) or None on truncation."""
    result = 0
    shift = 0
    ln = len(data)
    while True:
        if o >= ln:
            return None
        b = data[o]
        o += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, o
        shift += 7
        if shift > 1024:
            return None


def _pbseq_int(P: list, items: list) -> bool:
    A = P.append
    for x in items:
        if type(x) is not int:
            return False
        A(_pbi(x))
    return True


def _pbseq_str(P: list, items: list) -> bool:
    A = P.append
    for x in items:
        if type(x) is not str:
            return False
        raw = x.encode("utf-8")
        A(b"\x05")
        A(_vint(len(raw)))
        A(raw)
    return True


def _pbopt_int(x) -> Optional[bytes]:
    if x is None:
        return b"\x00"
    if type(x) is int:
        return _pbi(x)
    return None


def _pbstrmap(P: list, d) -> bool:
    if type(d) is not dict:
        return False
    A = P.append
    for k, v in d.items():
        if type(k) is not str or type(v) is not str:
            return False
        kr = k.encode("utf-8")
        vr = v.encode("utf-8")
        A(_vint(len(kr)))
        A(kr)
        A(b"\x05")
        A(_vint(len(vr)))
        A(vr)
    return True


def _dpbseq_int(data: bytes, o: int, n: int):
    out = []
    ap = out.append
    ln = len(data)
    for _ in range(n):
        if o >= ln or data[o] != 3:
            return None
        o += 1
        if o < ln and data[o] < 0x80:
            z = data[o]
            o += 1
        else:
            r = _rv(data, o)
            if r is None:
                return None
            z, o = r
        ap((z >> 1) ^ -(z & 1))
    return out, o


def _dpbseq_str(data: bytes, o: int, n: int):
    out = []
    ap = out.append
    ln = len(data)
    for _ in range(n):
        if o >= ln or data[o] != 5:
            return None
        r = _rv(data, o + 1)
        if r is None:
            return None
        size, o = r
        raw = data[o:o + size]
        if len(raw) != size:
            return None
        ap(raw.decode("utf-8"))
        o += size
    return out, o


def _dpbstrmap(data: bytes, o: int, n: int):
    out = {}
    ln = len(data)
    for _ in range(n):
        r = _rv(data, o)
        if r is None:
            return None
        klen, o = r
        kraw = data[o:o + klen]
        if len(kraw) != klen:
            return None
        o += klen
        if o >= ln or data[o] != 5:
            return None
        r = _rv(data, o + 1)
        if r is None:
            return None
        size, o = r
        vraw = data[o:o + size]
        if len(vraw) != size:
            return None
        out[kraw.decode("utf-8")] = vraw.decode("utf-8")
        o += size
    return out, o


#: Namespace seeded into every generated module.
_RUNTIME: Dict[str, Any] = {
    "_Struct": struct.Struct,
    "_B1": _B1,
    "_PSP": _PSP,
    "_PSN": _PSN,
    "_vlb": _vlb,
    "_pfrag": _pfrag,
    "_poct": _poct,
    "_pint": _pint,
    "_popt_int": _popt_int,
    "_pseq_int": _pseq_int,
    "_pseq_str": _pseq_str,
    "_dvl": _dvl,
    "_dfrag": _dfrag,
    "_doct": _doct,
    "_dpseq_int": _dpseq_int,
    "_dpseq_str": _dpseq_str,
    "_fseq_int": _fseq_int,
    "_fseq_str": _fseq_str,
    "_fseq_map": _fseq_map,
    "_fopt_int": _fopt_int,
    "_fstrmap": _fstrmap,
    "_dfseq_int": _dfseq_int,
    "_dfseq_map": _dfseq_map,
    "_dfseq_str": _dfseq_str,
    "_dfstrmap": _dfstrmap,
    "_pbi": _pbi,
    "_vint": _vint,
    "_rv": _rv,
    "_pbseq_int": _pbseq_int,
    "_pbseq_str": _pbseq_str,
    "_pbopt_int": _pbopt_int,
    "_pbstrmap": _pbstrmap,
    "_dpbseq_int": _dpbseq_int,
    "_dpbseq_str": _dpbseq_str,
    "_dpbstrmap": _dpbstrmap,
}


class _Unsupported(Exception):
    """Raised by an emitter for a shape it does not specialize."""


# -- generated-source builders ---------------------------------------


class _Fn:
    """One generated function; collects indented statements."""

    def __init__(self, mod: "_Mod", name: str, params: str) -> None:
        self.mod = mod
        self.name = name
        self.lines: List[str] = [f"def {name}({params}):"]
        self.indent = 1

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def close(self) -> None:
        if len(self.lines) == 1:
            self.w("pass")
        self.mod.lines.extend(self.lines)
        self.mod.lines.append("")


class _Mod:
    """A generated module: deduplicated named constants + functions.

    ``render()`` is deterministic: constants are emitted in first-use
    order with repr-rendered literals, and all name counters are local
    to the module.
    """

    def __init__(self, title: str) -> None:
        self.title = title
        self.lines: List[str] = []
        self.consts: Dict[Tuple, str] = {}
        self.const_lines: List[str] = []
        self.n = 0

    def name(self, prefix: str) -> str:
        self.n += 1
        return f"{prefix}{self.n}"

    def const_bytes(self, value: bytes) -> str:
        key = ("b", value)
        got = self.consts.get(key)
        if got is None:
            got = f"_C{len(self.consts)}"
            self.consts[key] = got
            self.const_lines.append(f"{got} = {value!r}")
        return got

    def const_struct(self, fmt: str) -> str:
        key = ("S", fmt)
        got = self.consts.get(key)
        if got is None:
            got = f"_C{len(self.consts)}"
            self.consts[key] = got
            self.const_lines.append(f"{got} = _Struct({fmt!r})")
        return got

    def fn(self, prefix: str, params: str) -> _Fn:
        return _Fn(self, self.name(prefix), params)

    def render(self) -> str:
        out = [f"# generated kernel: {self.title}", ""]
        out.extend(self.const_lines)
        out.append("")
        out.extend(self.lines)
        return "\n".join(out)

    def compile(self) -> Dict[str, Any]:
        ns = dict(_RUNTIME)
        exec(compile(self.render(), f"<kernel {self.title}>", "exec"), ns)
        return ns


class _Size:
    """A size expression: constant octets + runtime ``len()`` terms."""

    __slots__ = ("const", "terms")

    def __init__(self, const: int = 0, terms: Tuple[str, ...] = ()) -> None:
        self.const = const
        self.terms = tuple(terms)

    def __add__(self, other: "_Size") -> "_Size":
        return _Size(self.const + other.const, self.terms + other.terms)

    @property
    def fixed(self) -> bool:
        return not self.terms

    def render(self) -> str:
        parts = [str(self.const)] if self.const or not self.terms else []
        parts.extend(self.terms)
        return " + ".join(parts)


class _Segs:
    """Encode segment stream: constants fused with fixed-width packs.

    Segments accumulate as (kind, payload); ``flush`` merges a run of
    constants and scalar packs into a single ``Struct.pack`` call (one
    C-level call per fixed-width run), while variable-length payloads
    are appended raw.  Rendered statements append to the parts list
    ``P`` via the bound local ``A``.
    """

    def __init__(self, fn: _Fn) -> None:
        self.fn = fn
        self.run: List[Tuple[str, Any]] = []  # ("c", bytes) | (fmt, expr)

    def const(self, data: bytes) -> None:
        if not data:
            return
        if self.run and self.run[-1][0] == "c":
            self.run[-1] = ("c", self.run[-1][1] + data)
        else:
            self.run.append(("c", data))

    def scalar(self, fmt: str, expr: str) -> None:
        self.run.append((fmt, expr))

    def raw(self, expr: str) -> None:
        self.flush()
        self.fn.w(f"A({expr})")

    def stmt(self, line: str) -> None:
        """Interleave a statement at the current wire position."""
        self.flush()
        self.fn.w(line)

    def flush(self) -> None:
        run, self.run = self.run, []
        if not run:
            return
        if len(run) == 1 and run[0][0] == "c":
            self.fn.w(f"A({self.fn.mod.const_bytes(run[0][1])})")
            return
        fmt = "<"
        args = []
        for kind, payload in run:
            if kind == "c":
                fmt += f"{len(payload)}s"
                args.append(self.fn.mod.const_bytes(payload))
            else:
                fmt += kind
                args.append(payload)
        sname = self.fn.mod.const_struct(fmt)
        self.fn.w(f"A({sname}.pack({', '.join(args)}))")


class _Off:
    """Compile-time wire offset: constant until a variable-length field
    forces a runtime base variable, then ``base + k``."""

    __slots__ = ("base", "k")

    def __init__(self, base: Optional[str] = None, k: int = 0) -> None:
        self.base = base
        self.k = k

    def advance(self, n: int) -> None:
        self.k += n

    def expr(self) -> str:
        if self.base is None:
            return str(self.k)
        if self.k:
            return f"{self.base} + {self.k}"
        return self.base

    def rebase(self, fn: _Fn, expr: str) -> None:
        name = fn.mod.name("o")
        fn.w(f"{name} = {expr}")
        self.base = name
        self.k = 0


class _DecRuns:
    """Decode-side fusion: consecutive fixed-width reads (constant wire
    bytes + scalar captures) collapse into one ``unpack_from`` whose
    constant captures are compared as a batch."""

    def __init__(self, fn: _Fn, off: _Off) -> None:
        self.fn = fn
        self.off = off
        self.run: List[Tuple[str, Any]] = []  # ("c", bytes) | (fmt, name)
        self.width = 0

    def const(self, data: bytes) -> None:
        if not data:
            return
        if self.run and self.run[-1][0] == "c":
            self.run[-1] = ("c", self.run[-1][1] + data)
        else:
            self.run.append(("c", data))
        self.width += len(data)

    def capture(self, fmt: str, name: str) -> None:
        self.run.append((fmt, name))
        self.width += struct.calcsize("<" + fmt)

    def flush(self) -> None:
        run, self.run = self.run, []
        width, self.width = self.width, 0
        if not run:
            return
        fn = self.fn
        start = self.off.expr()
        if len(run) == 1 and run[0][0] == "c":
            cname = fn.mod.const_bytes(run[0][1])
            if self.off.base is None:
                end = self.off.k + width
                fn.w(f"if data[{start}:{end}] != {cname}: return None")
            else:
                fn.w(f"if data[{start}:{start} + {width}] != {cname}: return None")
            self.off.advance(width)
            return
        fmt = "<"
        for kind, payload in run:
            fmt += f"{len(payload)}s" if kind == "c" else kind
        sname = fn.mod.const_struct(fmt)
        uname = fn.mod.name("u")
        fn.w(f"{uname} = {sname}.unpack_from(data, {start})")
        checks = []
        for index, (kind, payload) in enumerate(run):
            if kind == "c":
                checks.append(f"{uname}[{index}] != {fn.mod.const_bytes(payload)}")
            else:
                fn.w(f"{payload} = {uname}[{index}]")
        if checks:
            fn.w(f"if {' or '.join(checks)}: return None")
        self.off.advance(width)


class _FlatEmitter:
    """Emits flat-codec kernels (codec name ``"fb"``)."""

    codec_name = "fb"

    # -- encode ------------------------------------------------------

    def build(self, schema: Schema) -> _Mod:
        mod = _Mod(f"fb {schema.name}")
        self._elem_enc: Dict[str, str] = {}
        self._elem_dec: Dict[str, str] = {}
        self._emit_encode(mod, schema)
        self._emit_decode(mod, schema)
        return mod

    def _emit_encode(self, mod: _Mod, schema: Schema) -> None:
        fn = _Fn(mod, "encode", "V")
        size, emit = self._enc_dict(fn, schema, "V")
        fn.w("P = []")
        fn.w("A = P.append")
        segs = _Segs(fn)
        segs.const(b"FR\x01\x00")
        if size.fixed:
            segs.const(_I.pack(size.const))
        else:
            segs.scalar("I", size.render())
        segs.const(b"\x00" * 8)
        emit(segs)
        segs.flush()
        fn.w("return b''.join(P)")
        fn.close()

    def _enc_dict(
        self, fn: _Fn, schema: Schema, expr: str
    ) -> Tuple[_Size, Callable]:
        """Analyze a dict: write guards/bindings now, return the chunk
        size and an emitter producing tag+count+directory+values."""
        keys = schema.keys
        fn.w(f"if type({expr}) is not dict: return None")
        fn.w(f"if tuple({expr}.keys()) != {keys!r}: return None")
        entries = []  # (key, size, emit)
        for key, spec in schema.fields:
            size, emit = self._enc_field(fn, spec, f"{expr}[{key!r}]")
            entries.append((key, size, emit))
        total = _Size(5)
        for key, size, _emit in entries:
            total = total + _Size(6 + len(key.encode("utf-8"))) + size

        def emit(segs: _Segs) -> None:
            segs.const(b"\x08" + _I.pack(len(entries)))
            for key, size, _emit in entries:
                raw = key.encode("utf-8")
                segs.const(_H.pack(len(raw)) + raw)
                if size.fixed:
                    segs.const(_I.pack(size.const))
                else:
                    segs.scalar("I", size.render())
            for _key, _size, field_emit in entries:
                field_emit(segs)

        return total, emit

    def _enc_field(
        self, fn: _Fn, spec: Spec, expr: str
    ) -> Tuple[_Size, Callable]:
        mod = fn.mod
        kind = spec.kind
        if kind == "const_int":
            value = spec.value
            if not (_INT64_MIN <= value <= _INT64_MAX):
                raise _Unsupported("const outside int64")
            fn.w(f"if type({expr}) is not int or {expr} != {value}: return None")
            cell = b"\x03" + _Q.pack(value)
            return _Size(9), lambda segs: segs.const(cell)
        if kind == "int":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(
                f"if type({x}) is not int or not "
                f"({_INT64_MIN} <= {x} <= {_INT64_MAX}): return None"
            )
            return _Size(9), lambda segs: (
                segs.const(b"\x03"), segs.scalar("q", x)
            )
        if kind == "bool":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if {x} is not True and {x} is not False: return None")
            return _Size(1), lambda segs: segs.scalar(
                "1s", f"(b'\\x02' if {x} else b'\\x01')"
            )
        if kind == "f64":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not float: return None")
            return _Size(9), lambda segs: (
                segs.const(b"\x04"), segs.scalar("d", x)
            )
        if kind == "str":
            x = mod.name("v")
            r = mod.name("r")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not str: return None")
            fn.w(f"{r} = {x}.encode('utf-8')")
            return _Size(5, (f"len({r})",)), lambda segs: (
                segs.const(b"\x05"),
                segs.scalar("I", f"len({r})"),
                segs.raw(r),
            )
        if kind == "bytes":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not bytes: return None")
            return _Size(5, (f"len({x})",)), lambda segs: (
                segs.const(b"\x06"),
                segs.scalar("I", f"len({x})"),
                segs.raw(x),
            )
        if kind == "opt":
            if spec.inner.kind != "int":
                raise _Unsupported("opt of non-int")
            c = mod.name("c")
            fn.w(f"{c} = _fopt_int({expr})")
            fn.w(f"if {c} is None: return None")
            return _Size(0, (f"len({c})",)), lambda segs: segs.raw(c)
        if kind == "nested":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            return self._enc_dict(fn, spec.schema, x)
        if kind == "strmap":
            c = mod.name("c")
            fn.w(f"{c} = _fstrmap({expr})")
            fn.w(f"if {c} is None: return None")
            return _Size(0, (f"len({c})",)), lambda segs: segs.raw(c)
        if kind == "seq":
            elem = spec.elem.kind
            c = mod.name("c")
            if elem == "int":
                fn.w(f"{c} = _fseq_int({expr})")
            elif elem == "str":
                fn.w(f"{c} = _fseq_str({expr})")
            elif elem == "nested":
                ename = self._elem_encoder(mod, spec.elem.schema)
                fn.w(f"{c} = _fseq_map({ename}, {expr})")
            else:
                raise _Unsupported(f"seq of {elem}")
            fn.w(f"if {c} is None: return None")
            return _Size(0, (f"len({c})",)), lambda segs: segs.raw(c)
        raise _Unsupported(kind)

    def _elem_encoder(self, mod: _Mod, schema: Schema) -> str:
        got = self._elem_enc.get(schema.name)
        if got is not None:
            return got
        fn = mod.fn("_e", "x")
        self._elem_enc[schema.name] = fn.name
        size, emit = self._enc_dict(fn, schema, "x")
        fn.w("P = []")
        fn.w("A = P.append")
        segs = _Segs(fn)
        emit(segs)
        segs.flush()
        fn.w("return b''.join(P)")
        fn.close()
        return fn.name

    # -- decode ------------------------------------------------------

    def _emit_decode(self, mod: _Mod, schema: Schema) -> None:
        fn = _Fn(mod, "decode", "data")
        fn.w("if data[:4] != b'FR\\x01\\x00': return None")
        iu = mod.const_struct("<I")
        fn.w(f"rs = {iu}.unpack_from(data, 4)[0]")
        fn.w("if 16 + rs > len(data): return None")
        off = _Off(None, 16)
        runs = _DecRuns(fn, off)
        result = self._dec_dict(fn, schema, runs, off)
        runs.flush()
        fn.w(f"return {result}")
        fn.close()

    def _dec_dict(
        self, fn: _Fn, schema: Schema, runs: _DecRuns, off: _Off
    ) -> str:
        mod = fn.mod
        runs.const(b"\x08" + _I.pack(len(schema.fields)))
        dir_sizes: List[Optional[str]] = []
        field_sizes: List[_Size] = []
        analyzed = []
        probe = _SizeProbe(self)
        for key, spec in schema.fields:
            size = probe.size(spec)
            field_sizes.append(size)
            raw = key.encode("utf-8")
            runs.const(_H.pack(len(raw)) + raw)
            if size.fixed:
                runs.const(_I.pack(size.const))
                dir_sizes.append(None)
            else:
                s = mod.name("s")
                runs.capture("I", s)
                dir_sizes.append(s)
        parts = []
        for (key, spec), s in zip(schema.fields, dir_sizes):
            parts.append(
                f"{key!r}: " + self._dec_field(fn, spec, runs, off, s)
            )
        return "{" + ", ".join(parts) + "}"

    def _dec_field(
        self, fn: _Fn, spec: Spec, runs: _DecRuns, off: _Off, s: Optional[str]
    ) -> str:
        mod = fn.mod
        kind = spec.kind
        if kind == "const_int":
            runs.const(b"\x03" + _Q.pack(spec.value))
            return str(spec.value)
        if kind == "int":
            x = mod.name("x")
            runs.const(b"\x03")
            runs.capture("q", x)
            return x
        if kind == "bool":
            t = mod.name("t")
            x = mod.name("x")
            runs.capture("B", t)
            runs.flush()
            fn.w(f"if {t} == 2: {x} = True")
            fn.w(f"elif {t} == 1: {x} = False")
            fn.w("else: return None")
            return x
        if kind == "f64":
            x = mod.name("x")
            runs.const(b"\x04")
            runs.capture("d", x)
            return x
        if kind in ("str", "bytes"):
            runs.flush()
            iu = mod.const_struct("<I")
            tag = 5 if kind == "str" else 6
            l = mod.name("l")
            r = mod.name("r")
            start = off.expr()
            fn.w(f"if data[{start}] != {tag}: return None")
            fn.w(f"{l} = {iu}.unpack_from(data, {start} + 1)[0]")
            if s is not None:
                fn.w(f"if {s} != 5 + {l}: return None")
            fn.w(f"{r} = data[{start} + 5:{start} + 5 + {l}]")
            fn.w(f"if len({r}) != {l}: return None")
            off.rebase(fn, f"{start} + 5 + {l}")
            if kind == "str":
                x = mod.name("x")
                fn.w(f"{x} = {r}.decode('utf-8')")
                return x
            return r
        if kind == "opt":
            runs.flush()
            q = mod.const_struct("<q")
            x = mod.name("x")
            t = mod.name("t")
            nxt = mod.name("o")
            start = off.expr()
            fn.w(f"{t} = data[{start}]")
            fn.w(f"if {t} == 0:")
            fn.w(f"    if {s} != 1: return None")
            fn.w(f"    {x} = None")
            fn.w(f"    {nxt} = {start} + 1")
            fn.w(f"elif {t} == 3:")
            fn.w(f"    if {s} != 9: return None")
            fn.w(f"    {x} = {q}.unpack_from(data, {start} + 1)[0]")
            fn.w(f"    {nxt} = {start} + 9")
            fn.w("else: return None")
            off.base = nxt
            off.k = 0
            return x
        if kind == "nested":
            return self._dec_dict(fn, spec.schema, runs, off)
        if kind in ("seq", "strmap"):
            runs.flush()
            iu = mod.const_struct("<I")
            n = mod.name("n")
            x = mod.name("x")
            start = off.expr()
            tag = 8 if kind == "strmap" else 7
            fn.w(f"if data[{start}] != {tag}: return None")
            fn.w(f"{n} = {iu}.unpack_from(data, {start} + 1)[0]")
            if kind == "strmap":
                r = mod.name("r")
                nxt = mod.name("o")
                fn.w(f"{r} = _dfstrmap(data, {start} + 5, {n})")
                fn.w(f"if {r} is None: return None")
                fn.w(f"{x}, {nxt} = {r}")
                fn.w(f"if {nxt} - ({start}) != {s}: return None")
                off.base = nxt
                off.k = 0
                return x
            elem = spec.elem.kind
            if elem == "int":
                sz9 = mod.const_bytes(_SZ9)
                fn.w(f"if {s} != 5 + 13 * {n}: return None")
                fn.w(
                    f"if data[{start} + 5:{start} + 5 + 4 * {n}] != "
                    f"{sz9} * {n}: return None"
                )
                fn.w(f"{x} = _dfseq_int(data, {start} + 5 + 4 * {n}, {n})")
                fn.w(f"if {x} is None: return None")
                off.rebase(fn, f"{start} + 5 + 13 * {n}")
                return x
            if elem == "str":
                helper = "_dfseq_str"
                call = f"{helper}(data, {start} + 5, {n})"
            elif elem == "nested":
                dname = self._elem_decoder(mod, spec.elem.schema)
                call = f"_dfseq_map({dname}, data, {start} + 5, {n})"
            else:
                raise _Unsupported(f"seq of {elem}")
            r = mod.name("r")
            nxt = mod.name("o")
            fn.w(f"{r} = {call}")
            fn.w(f"if {r} is None: return None")
            fn.w(f"{x}, {nxt} = {r}")
            fn.w(f"if {nxt} - ({start}) != {s}: return None")
            off.base = nxt
            off.k = 0
            return x
        raise _Unsupported(kind)

    def _elem_decoder(self, mod: _Mod, schema: Schema) -> str:
        got = self._elem_dec.get(schema.name)
        if got is not None:
            return got
        fn = mod.fn("_d", "data, o0")
        self._elem_dec[schema.name] = fn.name
        off = _Off("o0", 0)
        runs = _DecRuns(fn, off)
        result = self._dec_dict(fn, schema, runs, off)
        runs.flush()
        fn.w(f"return {result}, {off.expr()}")
        fn.close()
        return fn.name


class _SizeProbe:
    """Computes a field's encoded-size expression shape (fixed or not)
    without emitting code; mirrors the encode-side size model."""

    def __init__(self, emitter) -> None:
        self.emitter = emitter

    def size(self, spec: Spec) -> _Size:
        kind = spec.kind
        if kind in ("int", "const_int", "f64"):
            return _Size(9)
        if kind == "bool":
            return _Size(1)
        if kind == "nested":
            total = _Size(5)
            for key, child in spec.schema.fields:
                child_size = self.size(child)
                total = total + _Size(6 + len(key.encode("utf-8"))) + child_size
            return total
        # str, bytes, opt, seq, strmap are runtime-sized
        return _Size(0, ("?",))


def _pstrmap(P: list, d) -> bool:
    """PER str→str table entries (tag + count emitted by the kernel)."""
    A = P.append
    for k, v in d.items():
        if type(k) is not str or type(v) is not str:
            return False
        kr = k.encode("utf-8")
        if len(kr) >= 0x80:
            return False
        A(_B1[len(kr)])
        A(kr)
        A(b"\x50")
        A(_poct(v.encode("utf-8")))
    return True


def _dpstrmap(data: bytes, o: int, n: int):
    """PER str→str table read; (dict, o) or None."""
    out = {}
    for _ in range(n):
        kl = data[o]
        if kl >= 0x80:
            return None
        kraw = data[o + 1:o + 1 + kl]
        if len(kraw) != kl:
            return None
        o += 1 + kl
        if data[o] & 0xF0 != 0x50:
            return None
        r = _doct(data, o + 1)
        if r is None:
            return None
        vraw, o = r
        out[kraw.decode("utf-8")] = vraw.decode("utf-8")
    return out, o


_RUNTIME["_pstrmap"] = _pstrmap
_RUNTIME["_dpstrmap"] = _dpstrmap


class _PerEmitter:
    """Emits PER-codec kernels (codec name ``"asn"``).

    Cell model: every dict-entry value is an *aligned cell* — the
    writer's lazy alignment means each cell self-pads before the next
    key's length determinant — so constant regions (tags, counts, key
    cells, constant ints) fold into literal bytes.  Only inside lists
    do elements pack nibble-tight; those go through the phase-tracking
    helpers or generated per-element functions threading ``(ph, pd)``.
    """

    codec_name = "asn"

    def build(self, schema: Schema) -> _Mod:
        mod = _Mod(f"asn {schema.name}")
        self._elem_enc: Dict[str, str] = {}
        self._elem_dec: Dict[str, str] = {}
        self._emit_encode(mod, schema)
        self._emit_decode(mod, schema)
        return mod

    # -- encode ------------------------------------------------------

    def _emit_encode(self, mod: _Mod, schema: Schema) -> None:
        fn = _Fn(mod, "encode", "V")
        emit = self._enc_dict(fn, schema, "V")
        fn.w("P = []")
        fn.w("A = P.append")
        segs = _Segs(fn)
        emit(segs)
        segs.flush()
        fn.w("return b''.join(P)")
        fn.close()

    def _enc_dict(self, fn: _Fn, schema: Schema, expr: str) -> Callable:
        count = len(schema.fields)
        if count >= 0x80:
            raise _Unsupported("dict too wide")
        fn.w(f"if type({expr}) is not dict: return None")
        fn.w(f"if tuple({expr}.keys()) != {schema.keys!r}: return None")
        entries = []
        for key, spec in schema.fields:
            kraw = key.encode("utf-8")
            if len(kraw) >= 0x80:
                raise _Unsupported("key too long")
            field_emit = self._enc_field(fn, spec, f"{expr}[{key!r}]")
            entries.append((kraw, field_emit))

        def emit(segs: _Segs) -> None:
            segs.const(b"\x80" + _B1[count])
            for kraw, field_emit in entries:
                segs.const(_B1[len(kraw)] + kraw)
                field_emit(segs)

        return emit

    def _enc_field(self, fn: _Fn, spec: Spec, expr: str) -> Callable:
        mod = fn.mod
        kind = spec.kind
        if kind == "const_int":
            value = spec.value
            fn.w(f"if type({expr}) is not int or {expr} != {value}: return None")
            cell = _pint(value)
            return lambda segs: segs.const(cell)
        if kind == "int":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not int: return None")
            return lambda segs: segs.raw(f"_pint({x})")
        if kind == "bool":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if {x} is not True and {x} is not False: return None")
            return lambda segs: segs.raw(f"(b'\\x20' if {x} else b'\\x10')")
        if kind == "f64":
            x = mod.name("v")
            d8 = mod.const_struct(">d")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not float: return None")
            return lambda segs: (
                segs.const(b"\x40"), segs.raw(f"{d8}.pack({x})")
            )
        if kind == "str":
            x = mod.name("v")
            r = mod.name("r")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not str: return None")
            fn.w(f"{r} = {x}.encode('utf-8')")
            return lambda segs: (
                segs.const(b"\x50"), segs.raw(f"_poct({r})")
            )
        if kind == "bytes":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not bytes: return None")
            return lambda segs: (
                segs.const(b"\x60"), segs.raw(f"_poct({x})")
            )
        if kind == "opt":
            if spec.inner.kind != "int":
                raise _Unsupported("opt of non-int")
            c = mod.name("c")
            fn.w(f"{c} = _popt_int({expr})")
            fn.w(f"if {c} is None: return None")
            return lambda segs: segs.raw(c)
        if kind == "nested":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            return self._enc_dict(fn, spec.schema, x)
        if kind == "strmap":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not dict: return None")
            return lambda segs: (
                segs.const(b"\x80"),
                segs.raw(f"_vlb(len({x}))"),
                segs.stmt(f"if not _pstrmap(P, {x}): return None"),
            )
        if kind == "seq":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not list: return None")
            elem = spec.elem.kind
            if elem == "int":
                tail = lambda segs: segs.stmt(
                    f"if not _pseq_int(P, {x}): return None"
                )
            elif elem == "str":
                tail = lambda segs: segs.stmt(
                    f"if not _pseq_str(P, {x}): return None"
                )
            elif elem == "nested":
                ename = self._elem_encoder(fn.mod, spec.elem.schema)
                ph = mod.name("ph")
                pd = mod.name("pd")
                it = mod.name("it")
                r = mod.name("r")

                def tail(segs: _Segs, ph=ph, pd=pd, it=it, r=r) -> None:
                    segs.stmt(f"{ph} = 0")
                    segs.stmt(f"{pd} = 0")
                    segs.stmt(f"for {it} in {x}:")
                    segs.stmt(f"    {r} = {ename}(P, {it}, {ph}, {pd})")
                    segs.stmt(f"    if {r} is None: return None")
                    segs.stmt(f"    {ph}, {pd} = {r}")
                    segs.stmt(f"if {ph}: A(_B1[{pd} << 4])")
            else:
                raise _Unsupported(f"seq of {elem}")
            return lambda segs: (
                segs.const(b"\x70"),
                segs.raw(f"_vlb(len({x}))"),
                tail(segs),
            )
        raise _Unsupported(kind)

    def _elem_encoder(self, mod: _Mod, schema: Schema) -> str:
        got = self._elem_enc.get(schema.name)
        if got is not None:
            return got
        if not schema.fields:
            raise _Unsupported("empty seq element")
        fn = mod.fn("_pe", "P, x, ph, pd")
        self._elem_enc[schema.name] = fn.name
        fn.w("if type(x) is not dict: return None")
        fn.w(f"if tuple(x.keys()) != {schema.keys!r}: return None")
        interior = schema.fields[:-1]
        last_key, last_spec = schema.fields[-1]
        emits = []
        for key, spec in interior:
            emits.append(
                (key.encode("utf-8"), self._enc_field(fn, spec, f"x[{key!r}]"))
            )
        last = self._enc_last(fn, last_spec, f"x[{last_key!r}]")
        fn.w("A = P.append")
        fn.w("if ph:")
        fn.w(f"    A(_B1[(pd << 4) | 8])")
        fn.w("else:")
        fn.w(f"    A({fn.mod.const_bytes(_B1[0x80])})")
        segs = _Segs(fn)
        segs.const(_B1[len(schema.fields)])
        for kraw, field_emit in emits:
            segs.const(_B1[len(kraw)] + kraw)
            field_emit(segs)
        lraw = last_key.encode("utf-8")
        segs.const(_B1[len(lraw)] + lraw)
        last(segs)
        fn.close()
        return fn.name

    def _enc_last(self, fn: _Fn, spec: Spec, expr: str) -> Callable:
        """The final field of a list element: its trailing pad nibble
        belongs to the next element, so it may end mid-byte and returns
        the (phase, pending-nibble) pair instead of self-padding."""
        mod = fn.mod
        kind = spec.kind
        x = mod.name("v")
        fn.w(f"{x} = {expr}")
        if kind == "int":
            fn.w(f"if type({x}) is not int: return None")
            m = mod.name("m")

            def emit(segs: _Segs) -> None:
                segs.stmt(f"if 0 <= {x} < 64:")
                segs.stmt(f"    A(_B1[0x34 | ({x} >> 4)])")
                segs.stmt(f"    return (4, {x} & 0xF)")
                segs.stmt(f"if -64 < {x} < 0:")
                segs.stmt(f"    {m} = -{x}")
                segs.stmt(f"    A(_B1[0x3C | ({m} >> 4)])")
                segs.stmt(f"    return (4, {m} & 0xF)")
                segs.stmt(f"A(_pint({x}))")
                segs.stmt("return (0, 0)")

            return emit
        if kind == "bool":
            fn.w(f"if {x} is not True and {x} is not False: return None")

            def emit(segs: _Segs) -> None:
                segs.stmt(f"return (4, 2 if {x} else 1)")

            return emit
        if kind == "str":
            r = mod.name("r")
            fn.w(f"if type({x}) is not str: return None")
            fn.w(f"{r} = {x}.encode('utf-8')")

            def emit(segs: _Segs) -> None:
                segs.const(b"\x50")
                segs.raw(f"_poct({r})")
                segs.stmt("return (0, 0)")

            return emit
        if kind == "bytes":
            fn.w(f"if type({x}) is not bytes: return None")

            def emit(segs: _Segs) -> None:
                segs.const(b"\x60")
                segs.raw(f"_poct({x})")
                segs.stmt("return (0, 0)")

            return emit
        if kind == "f64":
            d8 = mod.const_struct(">d")
            fn.w(f"if type({x}) is not float: return None")

            def emit(segs: _Segs) -> None:
                segs.const(b"\x40")
                segs.raw(f"{d8}.pack({x})")
                segs.stmt("return (0, 0)")

            return emit
        raise _Unsupported(f"element tail {kind}")

    # -- decode ------------------------------------------------------

    def _emit_decode(self, mod: _Mod, schema: Schema) -> None:
        fn = _Fn(mod, "decode", "data")
        off = _Off(None, 0)
        runs = _DecRuns(fn, off)
        result = self._dec_dict(fn, schema, runs, off)
        runs.flush()
        fn.w(f"return {result}")
        fn.close()

    def _mask(self, fn: _Fn, runs: _DecRuns, off: _Off, mask: int, want: int) -> None:
        runs.flush()
        fn.w(f"if data[{off.expr()}] & {mask:#x} != {want:#x}: return None")
        off.advance(1)

    def _dec_dict(
        self, fn: _Fn, schema: Schema, runs: _DecRuns, off: _Off
    ) -> str:
        runs.const(b"\x80" + _B1[len(schema.fields)])
        parts = []
        for key, spec in schema.fields:
            kraw = key.encode("utf-8")
            runs.const(_B1[len(kraw)] + kraw)
            parts.append(f"{key!r}: " + self._dec_field(fn, spec, runs, off))
        return "{" + ", ".join(parts) + "}"

    def _dec_field(
        self, fn: _Fn, spec: Spec, runs: _DecRuns, off: _Off
    ) -> str:
        mod = fn.mod
        kind = spec.kind
        if kind == "const_int":
            cell = _pint(spec.value)
            if -64 < spec.value < 64:
                runs.const(cell[:1])
                self._mask(fn, runs, off, 0xF0, cell[1])
            else:
                self._mask(fn, runs, off, 0xFC, cell[0] & 0xFC)
                runs.const(cell[1:])
            return str(spec.value)
        if kind == "int":
            return self._dec_int(fn, runs, off)
        if kind == "bool":
            runs.flush()
            t = mod.name("t")
            x = mod.name("x")
            fn.w(f"{t} = data[{off.expr()}] >> 4")
            fn.w(f"if {t} == 2: {x} = True")
            fn.w(f"elif {t} == 1: {x} = False")
            fn.w("else: return None")
            off.advance(1)
            return x
        if kind == "f64":
            self._mask(fn, runs, off, 0xF0, 0x40)
            d8 = mod.const_struct(">d")
            x = mod.name("x")
            fn.w(f"{x} = {d8}.unpack_from(data, {off.expr()})[0]")
            off.advance(8)
            return x
        if kind in ("str", "bytes"):
            want = 0x50 if kind == "str" else 0x60
            self._mask(fn, runs, off, 0xF0, want)
            r = mod.name("r")
            raw = mod.name("w")
            nxt = mod.name("o")
            fn.w(f"{r} = _doct(data, {off.expr()})")
            fn.w(f"if {r} is None: return None")
            fn.w(f"{raw}, {nxt} = {r}")
            off.base = nxt
            off.k = 0
            if kind == "str":
                x = mod.name("x")
                fn.w(f"{x} = {raw}.decode('utf-8')")
                return x
            return raw
        if kind == "opt":
            runs.flush()
            b = mod.name("b")
            x = mod.name("x")
            nxt = mod.name("o")
            start = off.expr()
            fn.w(f"{b} = data[{start}]")
            fn.w(f"if {b} & 0xF0 == 0:")
            fn.w(f"    {x} = None")
            fn.w(f"    {nxt} = {start} + 1")
            fn.w(f"elif {b} & 0xF4 == 0x34:")
            fn.w(f"    {x} = (({b} & 3) << 4) | (data[{start} + 1] >> 4)")
            fn.w(f"    if {b} & 8: {x} = -{x}")
            fn.w(f"    {nxt} = {start} + 2")
            fn.w(f"elif {b} & 0xF4 == 0x30:")
            self._dec_int_long(fn, b, x, nxt, f"{start} + 1", indent=1)
            fn.w("else: return None")
            off.base = nxt
            off.k = 0
            return x
        if kind == "nested":
            return self._dec_dict(fn, spec.schema, runs, off)
        if kind == "strmap":
            self._mask(fn, runs, off, 0xF0, 0x80)
            r = mod.name("r")
            n = mod.name("n")
            o = mod.name("o")
            x = mod.name("x")
            fn.w(f"{r} = _dvl(data, {off.expr()})")
            fn.w(f"if {r} is None: return None")
            fn.w(f"{n}, {o} = {r}")
            fn.w(f"{r} = _dpstrmap(data, {o}, {n})")
            fn.w(f"if {r} is None: return None")
            fn.w(f"{x}, {o} = {r}")
            off.base = o
            off.k = 0
            return x
        if kind == "seq":
            self._mask(fn, runs, off, 0xF0, 0x70)
            r = mod.name("r")
            n = mod.name("n")
            o = mod.name("o")
            x = mod.name("x")
            fn.w(f"{r} = _dvl(data, {off.expr()})")
            fn.w(f"if {r} is None: return None")
            fn.w(f"{n}, {o} = {r}")
            elem = spec.elem.kind
            if elem == "int":
                fn.w(f"{r} = _dpseq_int(data, {o}, {n})")
            elif elem == "str":
                fn.w(f"{r} = _dpseq_str(data, {o}, {n})")
            elif elem == "nested":
                dname = self._elem_decoder(mod, spec.elem.schema)
                ph = mod.name("ph")
                v = mod.name("e")
                fn.w(f"{x} = []")
                fn.w(f"{ph} = 0")
                fn.w(f"for _ in range({n}):")
                fn.w(f"    {r} = {dname}(data, {o}, {ph})")
                fn.w(f"    if {r} is None: return None")
                fn.w(f"    {v}, {o}, {ph} = {r}")
                fn.w(f"    {x}.append({v})")
                fn.w(f"if {ph}: {o} += 1")
                off.base = o
                off.k = 0
                return x
            else:
                raise _Unsupported(f"seq of {elem}")
            fn.w(f"if {r} is None: return None")
            fn.w(f"{x}, {o} = {r}")
            off.base = o
            off.k = 0
            return x
        raise _Unsupported(kind)

    def _dec_int(self, fn: _Fn, runs: _DecRuns, off: _Off) -> str:
        mod = fn.mod
        runs.flush()
        b = mod.name("b")
        x = mod.name("x")
        nxt = mod.name("o")
        start = off.expr()
        fn.w(f"{b} = data[{start}]")
        fn.w(f"if {b} & 0xF4 == 0x34:")
        fn.w(f"    {x} = (({b} & 3) << 4) | (data[{start} + 1] >> 4)")
        fn.w(f"    if {b} & 8: {x} = -{x}")
        fn.w(f"    {nxt} = {start} + 2")
        fn.w(f"elif {b} & 0xF4 == 0x30:")
        self._dec_int_long(fn, b, x, nxt, f"{start} + 1", indent=1)
        fn.w("else: return None")
        off.base = nxt
        off.k = 0
        return x

    def _dec_int_long(
        self, fn: _Fn, b: str, x: str, nxt: str, at: str, indent: int
    ) -> None:
        mod = fn.mod
        pad = "    " * indent
        r = mod.name("r")
        ln = mod.name("l")
        raw = mod.name("w")
        fn.w(f"{pad}{r} = _dvl(data, {at})")
        fn.w(f"{pad}if {r} is None: return None")
        fn.w(f"{pad}{ln}, {nxt} = {r}")
        fn.w(f"{pad}{raw} = data[{nxt}:{nxt} + {ln}]")
        fn.w(f"{pad}if len({raw}) != {ln}: return None")
        fn.w(f"{pad}{x} = int.from_bytes({raw}, 'big')")
        fn.w(f"{pad}if {b} & 8: {x} = -{x}")
        fn.w(f"{pad}{nxt} += {ln}")

    def _elem_decoder(self, mod: _Mod, schema: Schema) -> str:
        got = self._elem_dec.get(schema.name)
        if got is not None:
            return got
        if not schema.fields:
            raise _Unsupported("empty seq element")
        fn = mod.fn("_qe", "data, o, ph")
        self._elem_dec[schema.name] = fn.name
        fn.w("if ph:")
        fn.w("    if data[o] & 0xF != 8: return None")
        fn.w("else:")
        fn.w("    if data[o] != 0x80: return None")
        fn.w(f"if data[o + 1] != {len(schema.fields)}: return None")
        base = mod.name("o")
        fn.w(f"{base} = o + 2")
        off = _Off(base, 0)
        runs = _DecRuns(fn, off)
        parts = []
        for key, spec in schema.fields[:-1]:
            kraw = key.encode("utf-8")
            runs.const(_B1[len(kraw)] + kraw)
            parts.append(f"{key!r}: " + self._dec_field(fn, spec, runs, off))
        last_key, last_spec = schema.fields[-1]
        lraw = last_key.encode("utf-8")
        runs.const(_B1[len(lraw)] + lraw)
        runs.flush()
        kind = last_spec.kind
        start = off.expr()
        if kind == "int":
            b = mod.name("b")
            x = mod.name("x")
            nxt = mod.name("o")
            phx = mod.name("ph")
            fn.w(f"{b} = data[{start}]")
            fn.w(f"if {b} & 0xF4 == 0x34:")
            fn.w(f"    {x} = (({b} & 3) << 4) | (data[{start} + 1] >> 4)")
            fn.w(f"    if {b} & 8: {x} = -{x}")
            fn.w(f"    {nxt} = {start} + 1")
            fn.w(f"    {phx} = 4")
            fn.w(f"elif {b} & 0xF4 == 0x30:")
            self._dec_int_long(fn, b, x, nxt, f"{start} + 1", indent=1)
            fn.w(f"    {phx} = 0")
            fn.w("else: return None")
            parts.append(f"{last_key!r}: {x}")
            fn.w(f"return {{{', '.join(parts)}}}, {nxt}, {phx}")
        elif kind == "bool":
            t = mod.name("t")
            x = mod.name("x")
            fn.w(f"{t} = data[{start}] >> 4")
            fn.w(f"if {t} == 2: {x} = True")
            fn.w(f"elif {t} == 1: {x} = False")
            fn.w("else: return None")
            parts.append(f"{last_key!r}: {x}")
            fn.w(f"return {{{', '.join(parts)}}}, {start}, 4")
        elif kind in ("str", "bytes"):
            want = 0x50 if kind == "str" else 0x60
            r = mod.name("r")
            raw = mod.name("w")
            nxt = mod.name("o")
            fn.w(f"if data[{start}] & 0xF0 != {want:#x}: return None")
            fn.w(f"{r} = _doct(data, {start} + 1)")
            fn.w(f"if {r} is None: return None")
            fn.w(f"{raw}, {nxt} = {r}")
            if kind == "str":
                x = mod.name("x")
                fn.w(f"{x} = {raw}.decode('utf-8')")
                parts.append(f"{last_key!r}: {x}")
            else:
                parts.append(f"{last_key!r}: {raw}")
            fn.w(f"return {{{', '.join(parts)}}}, {nxt}, 0")
        elif kind == "f64":
            d8 = mod.const_struct(">d")
            x = mod.name("x")
            fn.w(f"if data[{start}] & 0xF0 != 0x40: return None")
            fn.w(f"{x} = {d8}.unpack_from(data, {start} + 1)[0]")
            parts.append(f"{last_key!r}: {x}")
            fn.w(f"return {{{', '.join(parts)}}}, {start} + 9, 0")
        else:
            raise _Unsupported(f"element tail {kind}")
        fn.close()
        return fn.name


class _PbEmitter:
    """Emits protobuf-codec kernels (codec name ``"pb"``)."""

    codec_name = "pb"

    def build(self, schema: Schema) -> _Mod:
        mod = _Mod(f"pb {schema.name}")
        self._elem_enc: Dict[str, str] = {}
        self._elem_dec: Dict[str, str] = {}
        self._emit_encode(mod, schema)
        self._emit_decode(mod, schema)
        return mod

    # -- encode ------------------------------------------------------

    def _emit_encode(self, mod: _Mod, schema: Schema) -> None:
        fn = _Fn(mod, "encode", "V")
        emit = self._enc_dict(fn, schema, "V")
        fn.w("P = []")
        fn.w("A = P.append")
        segs = _Segs(fn)
        emit(segs)
        segs.flush()
        fn.w("return b''.join(P)")
        fn.close()

    def _enc_dict(self, fn: _Fn, schema: Schema, expr: str) -> Callable:
        count = len(schema.fields)
        if count >= 0x80:
            raise _Unsupported("dict too wide")
        fn.w(f"if type({expr}) is not dict: return None")
        fn.w(f"if tuple({expr}.keys()) != {schema.keys!r}: return None")
        entries = []
        for key, spec in schema.fields:
            kraw = key.encode("utf-8")
            if len(kraw) >= 0x80:
                raise _Unsupported("key too long")
            field_emit = self._enc_field(fn, spec, f"{expr}[{key!r}]")
            entries.append((kraw, field_emit))

        def emit(segs: _Segs) -> None:
            segs.const(bytes((8, count)))
            for kraw, field_emit in entries:
                segs.const(_B1[len(kraw)] + kraw)
                field_emit(segs)

        return emit

    def _enc_field(self, fn: _Fn, spec: Spec, expr: str) -> Callable:
        mod = fn.mod
        kind = spec.kind
        if kind == "const_int":
            value = spec.value
            fn.w(f"if type({expr}) is not int or {expr} != {value}: return None")
            cell = _pbi(value)
            return lambda segs: segs.const(cell)
        if kind == "int":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not int: return None")
            return lambda segs: segs.raw(f"_pbi({x})")
        if kind == "bool":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if {x} is not True and {x} is not False: return None")
            return lambda segs: segs.scalar(
                "1s", f"(b'\\x02' if {x} else b'\\x01')"
            )
        if kind == "f64":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not float: return None")
            return lambda segs: (
                segs.const(b"\x04"), segs.scalar("d", x)
            )
        if kind == "str":
            x = mod.name("v")
            r = mod.name("r")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not str: return None")
            fn.w(f"{r} = {x}.encode('utf-8')")
            return lambda segs: (
                segs.const(b"\x05"),
                segs.raw(f"_vint(len({r}))"),
                segs.raw(r),
            )
        if kind == "bytes":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not bytes: return None")
            return lambda segs: (
                segs.const(b"\x06"),
                segs.raw(f"_vint(len({x}))"),
                segs.raw(x),
            )
        if kind == "opt":
            if spec.inner.kind != "int":
                raise _Unsupported("opt of non-int")
            c = mod.name("c")
            fn.w(f"{c} = _pbopt_int({expr})")
            fn.w(f"if {c} is None: return None")
            return lambda segs: segs.raw(c)
        if kind == "nested":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            return self._enc_dict(fn, spec.schema, x)
        if kind == "strmap":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not dict: return None")
            return lambda segs: (
                segs.const(b"\x08"),
                segs.raw(f"_vint(len({x}))"),
                segs.stmt(f"if not _pbstrmap(P, {x}): return None"),
            )
        if kind == "seq":
            x = mod.name("v")
            fn.w(f"{x} = {expr}")
            fn.w(f"if type({x}) is not list: return None")
            elem = spec.elem.kind
            if elem == "int":
                tail = lambda segs: segs.stmt(
                    f"if not _pbseq_int(P, {x}): return None"
                )
            elif elem == "str":
                tail = lambda segs: segs.stmt(
                    f"if not _pbseq_str(P, {x}): return None"
                )
            elif elem == "nested":
                ename = self._elem_encoder(mod, spec.elem.schema)
                it = mod.name("it")

                def tail(segs: _Segs, it=it) -> None:
                    segs.stmt(f"for {it} in {x}:")
                    segs.stmt(f"    if not {ename}(P, {it}): return None")
            else:
                raise _Unsupported(f"seq of {elem}")
            return lambda segs: (
                segs.const(b"\x07"),
                segs.raw(f"_vint(len({x}))"),
                tail(segs),
            )
        raise _Unsupported(kind)

    def _elem_encoder(self, mod: _Mod, schema: Schema) -> str:
        got = self._elem_enc.get(schema.name)
        if got is not None:
            return got
        fn = mod.fn("_be", "P, x")
        self._elem_enc[schema.name] = fn.name
        emit = self._enc_dict(fn, schema, "x")
        fn.w("A = P.append")
        segs = _Segs(fn)
        emit(segs)
        segs.flush()
        fn.w("return True")
        fn.close()
        return fn.name

    # -- decode ------------------------------------------------------

    def _emit_decode(self, mod: _Mod, schema: Schema) -> None:
        fn = _Fn(mod, "decode", "data")
        off = _Off(None, 0)
        runs = _DecRuns(fn, off)
        result = self._dec_dict(fn, schema, runs, off)
        runs.flush()
        fn.w(f"if {off.expr()} != len(data): return None")
        fn.w(f"return {result}")
        fn.close()

    def _dec_dict(
        self, fn: _Fn, schema: Schema, runs: _DecRuns, off: _Off
    ) -> str:
        runs.const(bytes((8, len(schema.fields))))
        parts = []
        for key, spec in schema.fields:
            kraw = key.encode("utf-8")
            runs.const(_B1[len(kraw)] + kraw)
            parts.append(f"{key!r}: " + self._dec_field(fn, spec, runs, off))
        return "{" + ", ".join(parts) + "}"

    def _dec_field(
        self, fn: _Fn, spec: Spec, runs: _DecRuns, off: _Off
    ) -> str:
        mod = fn.mod
        kind = spec.kind
        if kind == "const_int":
            runs.const(_pbi(spec.value))
            return str(spec.value)
        if kind == "int":
            runs.const(b"\x03")
            runs.flush()
            return self._dec_varint_int(fn, off)
        if kind == "bool":
            t = mod.name("t")
            x = mod.name("x")
            runs.capture("B", t)
            runs.flush()
            fn.w(f"if {t} == 2: {x} = True")
            fn.w(f"elif {t} == 1: {x} = False")
            fn.w("else: return None")
            return x
        if kind == "f64":
            x = mod.name("x")
            runs.const(b"\x04")
            runs.capture("d", x)
            return x
        if kind in ("str", "bytes"):
            tag = 5 if kind == "str" else 6
            runs.const(_B1[tag])
            runs.flush()
            ln = self._dec_varint(fn, off)
            raw = mod.name("w")
            start = off.expr()
            fn.w(f"{raw} = data[{start}:{start} + {ln}]")
            fn.w(f"if len({raw}) != {ln}: return None")
            off.rebase(fn, f"{start} + {ln}")
            if kind == "str":
                x = mod.name("x")
                fn.w(f"{x} = {raw}.decode('utf-8')")
                return x
            return raw
        if kind == "opt":
            runs.flush()
            t = mod.name("t")
            x = mod.name("x")
            nxt = mod.name("o")
            r = mod.name("r")
            z = mod.name("z")
            start = off.expr()
            fn.w(f"{t} = data[{start}]")
            fn.w(f"if {t} == 0:")
            fn.w(f"    {x} = None")
            fn.w(f"    {nxt} = {start} + 1")
            fn.w(f"elif {t} == 3:")
            fn.w(f"    {z} = data[{start} + 1]")
            fn.w(f"    if {z} < 0x80:")
            fn.w(f"        {nxt} = {start} + 2")
            fn.w(f"    else:")
            fn.w(f"        {r} = _rv(data, {start} + 1)")
            fn.w(f"        if {r} is None: return None")
            fn.w(f"        {z}, {nxt} = {r}")
            fn.w(f"    {x} = ({z} >> 1) ^ -({z} & 1)")
            fn.w("else: return None")
            off.base = nxt
            off.k = 0
            return x
        if kind == "nested":
            return self._dec_dict(fn, spec.schema, runs, off)
        if kind == "strmap":
            runs.const(b"\x08")
            runs.flush()
            n = self._dec_varint(fn, off)
            r = mod.name("r")
            x = mod.name("x")
            o = mod.name("o")
            fn.w(f"{r} = _dpbstrmap(data, {off.expr()}, {n})")
            fn.w(f"if {r} is None: return None")
            fn.w(f"{x}, {o} = {r}")
            off.base = o
            off.k = 0
            return x
        if kind == "seq":
            runs.const(b"\x07")
            runs.flush()
            n = self._dec_varint(fn, off)
            r = mod.name("r")
            x = mod.name("x")
            o = mod.name("o")
            elem = spec.elem.kind
            if elem == "int":
                fn.w(f"{r} = _dpbseq_int(data, {off.expr()}, {n})")
            elif elem == "str":
                fn.w(f"{r} = _dpbseq_str(data, {off.expr()}, {n})")
            elif elem == "nested":
                dname = self._elem_decoder(mod, spec.elem.schema)
                v = mod.name("e")
                fn.w(f"{x} = []")
                fn.w(f"{o} = {off.expr()}")
                fn.w(f"for _ in range({n}):")
                fn.w(f"    {r} = {dname}(data, {o})")
                fn.w(f"    if {r} is None: return None")
                fn.w(f"    {v}, {o} = {r}")
                fn.w(f"    {x}.append({v})")
                off.base = o
                off.k = 0
                return x
            else:
                raise _Unsupported(f"seq of {elem}")
            fn.w(f"if {r} is None: return None")
            fn.w(f"{x}, {o} = {r}")
            off.base = o
            off.k = 0
            return x
        raise _Unsupported(kind)

    def _dec_varint(self, fn: _Fn, off: _Off) -> str:
        """Inline one-byte fast path; returns the value's local name and
        leaves ``off`` rebased past the varint."""
        mod = fn.mod
        z = mod.name("z")
        nxt = mod.name("o")
        r = mod.name("r")
        start = off.expr()
        fn.w(f"{z} = data[{start}]")
        fn.w(f"if {z} < 0x80:")
        fn.w(f"    {nxt} = {start} + 1")
        fn.w("else:")
        fn.w(f"    {r} = _rv(data, {start})")
        fn.w(f"    if {r} is None: return None")
        fn.w(f"    {z}, {nxt} = {r}")
        off.base = nxt
        off.k = 0
        return z

    def _dec_varint_int(self, fn: _Fn, off: _Off) -> str:
        z = self._dec_varint(fn, off)
        x = fn.mod.name("x")
        fn.w(f"{x} = ({z} >> 1) ^ -({z} & 1)")
        return x

    def _elem_decoder(self, mod: _Mod, schema: Schema) -> str:
        got = self._elem_dec.get(schema.name)
        if got is not None:
            return got
        fn = mod.fn("_bd", "data, o0")
        self._elem_dec[schema.name] = fn.name
        off = _Off("o0", 0)
        runs = _DecRuns(fn, off)
        result = self._dec_dict(fn, schema, runs, off)
        runs.flush()
        fn.w(f"return {result}, {off.expr()}")
        fn.close()
        return fn.name


# -- kernel cache and dispatch ---------------------------------------

_EMITTERS = {
    "fb": _FlatEmitter(),
    "asn": _PerEmitter(),
    "pb": _PbEmitter(),
}


class Kernel:
    """A compiled (schema × codec) pair: generated source + entry points."""

    __slots__ = ("name", "source", "encode", "decode")

    def __init__(self, name: str, source: str, encode, decode) -> None:
        self.name = name
        self.source = source
        self.encode = encode
        self.decode = decode

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel {self.name}>"


#: ("env", codec, procedure, msg_class) | ("pay", codec, name) → Kernel|None
_KERNELS: Dict[Tuple, Optional[Kernel]] = {}


def build_kernel_source(codec_name: str, schema: Schema) -> Optional[str]:
    """Render the kernel source for a schema (fresh every call; the CI
    determinism gate diffs two renders).  None if unsupported."""
    try:
        return _EMITTERS[codec_name].build(schema).render()
    except _Unsupported:
        return None


def _build(codec_name: str, schema: Schema) -> Optional[Kernel]:
    try:
        mod = _EMITTERS[codec_name].build(schema)
        source = mod.render()
        ns = mod.compile()
    except _Unsupported:
        return None
    return Kernel(schema.name, source, ns["encode"], ns["decode"])


def envelope_kernel(codec_name: str, procedure: int, msg_class: int):
    key = ("env", codec_name, procedure, msg_class)
    try:
        return _KERNELS[key]
    except KeyError:
        pass
    sch = _schema.envelope_schema(procedure, msg_class)
    kern = _build(codec_name, sch) if sch is not None else None
    # Builds are deterministic, so a concurrent duplicate is identical.
    return _KERNELS.setdefault(key, kern)


def payload_kernel(codec_name: str, name: str):
    key = ("pay", codec_name, name)
    try:
        return _KERNELS[key]
    except KeyError:
        pass
    sch = _schema.payload_schema(name)
    kern = _build(codec_name, sch) if sch is not None else None
    return _KERNELS.setdefault(key, kern)


def clear_kernels() -> None:
    _KERNELS.clear()


# -- envelope probes (decode-side schema discovery) ------------------
# Each probe reads the constant envelope prefix straight off the wire
# to recover (procedure, msg_class) without a generic decode.

_ENV_FB = (
    b"\x08\x03\x00\x00\x00"
    b"\x01\x00p\x09\x00\x00\x00"
    b"\x01\x00c\x09\x00\x00\x00"
    b"\x01\x00v"
)
_PAIR = struct.Struct("<bqbq")


def _probe_fb(data):
    if len(data) < 60 or data[:4] != b"FR\x01\x00":
        return None
    if data[16:38] != _ENV_FB:
        return None
    t1, p, t2, c = _PAIR.unpack_from(data, 42)
    if t1 != 3 or t2 != 3:
        return None
    return p, c


def _probe_asn(data):
    if len(data) < 10 or data[0] != 0x80 or data[1] != 3:
        return None
    if data[2] != 1 or data[3] != 0x70:  # key "p"
        return None
    b = data[4]
    if b & 0xF4 != 0x34 or b & 8:
        return None
    p = ((b & 3) << 4) | (data[5] >> 4)
    if data[6] != 1 or data[7] != 0x63:  # key "c"
        return None
    b = data[8]
    if b & 0xF4 != 0x34 or b & 8:
        return None
    c = ((b & 3) << 4) | (data[9] >> 4)
    return p, c


def _probe_pb(data):
    if len(data) < 10 or data[0] != 8 or data[1] != 3:
        return None
    if data[2] != 1 or data[3] != 0x70 or data[4] != 3:
        return None
    z = data[5]
    if z & 1 or z >= 0x80:
        return None
    if data[6] != 1 or data[7] != 0x63 or data[8] != 3:
        return None
    z2 = data[9]
    if z2 & 1 or z2 >= 0x80:
        return None
    return z >> 1, z2 >> 1


_PROBES = {"fb": _probe_fb, "asn": _probe_asn, "pb": _probe_pb}


# -- codec-facing entry points ---------------------------------------


def kernel_encode(codec_name: str, tree) -> Optional[bytes]:
    """Encode via a specialized kernel, or None to use the interpreter."""
    if not ENABLED:
        return None
    try:
        if type(tree) is not dict or len(tree) != 3:
            return None
        p = tree.get("p")
        c = tree.get("c")
        if type(p) is not int or type(c) is not int:
            return None
        kern = envelope_kernel(codec_name, p, c)
        if kern is None:
            return None
        out = kern.encode(tree)
    except Exception:
        if _STRICT[0]:
            raise
        _enc_falls.incr()
        return None
    if out is None:
        _enc_falls.incr()
    else:
        _enc_hits.incr()
    return out


def kernel_decode(codec_name: str, data):
    """Decode via a specialized kernel, or None to use the interpreter."""
    if not ENABLED:
        return None
    try:
        pc = _PROBES[codec_name](data)
        if pc is None:
            return None
        kern = envelope_kernel(codec_name, pc[0], pc[1])
        if kern is None:
            return None
        out = kern.decode(data)
    except Exception:
        if _STRICT[0]:
            raise
        _dec_falls.incr()
        return None
    if out is None:
        _dec_falls.incr()
    else:
        _dec_hits.incr()
    return out


def payload_encode(codec_name: str, name: str, tree) -> Optional[bytes]:
    """Encode an E2SM payload via its named schema kernel."""
    if not ENABLED:
        return None
    try:
        kern = payload_kernel(codec_name, name)
        if kern is None:
            return None
        out = kern.encode(tree)
    except Exception:
        if _STRICT[0]:
            raise
        _enc_falls.incr()
        return None
    if out is None:
        _enc_falls.incr()
    else:
        _enc_hits.incr()
    return out


def payload_decode(codec_name: str, name: str, data):
    """Decode an E2SM payload via its named schema kernel."""
    if not ENABLED:
        return None
    try:
        kern = payload_kernel(codec_name, name)
        if kern is None:
            return None
        out = kern.decode(data)
    except Exception:
        if _STRICT[0]:
            raise
        _dec_falls.incr()
        return None
    if out is None:
        _dec_falls.incr()
    else:
        _dec_hits.incr()
    return out
