"""Declarative wire schemas for E2AP messages and E2SM payloads.

Every message shape in the SDK is described exactly once here as typed
fields; the layout compiler (:mod:`repro.core.codec.codegen`) turns
each (schema × codec) pair into a specialized encode/decode kernel with
precomputed offsets and fused field access.  The codecs' interpretive
walkers remain the differential-testing oracle, so a schema that drifts
from the dataclass ``to_value``/``from_value`` shape is caught by the
golden vectors and the property sweep, not by an interop break.

The schema language (DESIGN.md §11):

* :class:`Int` — arbitrary integer (kernels specialize the int64 and
  small-int ranges, deferring to the interpreter outside them)
* :class:`ConstInt` — integer whose value is fixed by the schema (the
  ``p``/``c`` envelope discriminators), folded into constant bytes
* :class:`Bool`, :class:`F64`, :class:`Str`, :class:`Bytes` — scalars
* :class:`Opt` — value may be ``None`` (optional IEs)
* :class:`Nested` — sub-struct with a fixed, ordered key set
* :class:`Seq` — homogeneous repeated group
* :class:`StrMap` — open string→string table (config dictionaries)

Field order is significant: it is the wire order for every codec.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Spec:
    """Base class of all field type specs."""

    __slots__ = ()
    kind = "?"

    def describe(self) -> str:
        return self.kind

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Int(Spec):
    """Arbitrary-precision integer field."""

    __slots__ = ()
    kind = "int"


class ConstInt(Spec):
    """Integer fixed to ``value`` by the schema (envelope discriminators)."""

    __slots__ = ("value",)
    kind = "const_int"

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def describe(self) -> str:
        return f"const_int({self.value})"

    def __repr__(self) -> str:
        return f"ConstInt({self.value})"


class Bool(Spec):
    __slots__ = ()
    kind = "bool"


class F64(Spec):
    __slots__ = ()
    kind = "f64"


class Str(Spec):
    __slots__ = ()
    kind = "str"


class Bytes(Spec):
    __slots__ = ()
    kind = "bytes"


class Opt(Spec):
    """``None`` or ``inner``; used for optional IEs."""

    __slots__ = ("inner",)
    kind = "opt"

    def __init__(self, inner: Spec) -> None:
        self.inner = inner

    def describe(self) -> str:
        return f"opt[{self.inner.describe()}]"


class Nested(Spec):
    """A sub-struct with the fixed field set of ``schema``."""

    __slots__ = ("schema",)
    kind = "nested"

    def __init__(self, schema: "Schema") -> None:
        self.schema = schema

    def describe(self) -> str:
        return self.schema.name


class Seq(Spec):
    """A list of ``elem``-shaped values."""

    __slots__ = ("elem",)
    kind = "seq"

    def __init__(self, elem: Spec) -> None:
        self.elem = elem

    def describe(self) -> str:
        return f"seq[{self.elem.describe()}]"


class StrMap(Spec):
    """An open ``str → str`` table (keys unknown at compile time)."""

    __slots__ = ()
    kind = "strmap"


class Schema:
    """An ordered, named collection of typed fields."""

    __slots__ = ("name", "fields")

    def __init__(self, name: str, fields: List[Tuple[str, Spec]]) -> None:
        self.name = name
        self.fields = tuple(fields)

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(key for key, _spec in self.fields)

    def describe(self) -> str:
        inner = ", ".join(f"{key}: {spec.describe()}" for key, spec in self.fields)
        return f"{self.name}{{{inner}}}"

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, {len(self.fields)} fields)"


# ---------------------------------------------------------------------------
# Shared information-element schemas (core/e2ap/ies.py, procedures.py)
# ---------------------------------------------------------------------------

CAUSE = Schema("Cause", [("k", Int()), ("v", Int()), ("d", Str())])

GLOBAL_E2_NODE_ID = Schema(
    "GlobalE2NodeId", [("p", Str()), ("n", Int()), ("k", Int())]
)

RAN_FUNCTION_ITEM = Schema(
    "RanFunctionItem",
    [("i", Int()), ("d", Bytes()), ("r", Int()), ("o", Str())],
)

RIC_REQUEST_ID = Schema("RicRequestId", [("r", Int()), ("i", Int())])

RIC_ACTION_DEFINITION = Schema(
    "RicActionDefinition",
    [("a", Int()), ("k", Int()), ("d", Bytes()), ("s", Bool())],
)

RIC_ACTION_ADMITTED = Schema("RicActionAdmitted", [("a", Int())])

RIC_ACTION_NOT_ADMITTED = Schema(
    "RicActionNotAdmitted", [("a", Int()), ("k", Int()), ("v", Int())]
)

TNL_INFORMATION = Schema("TnlInformation", [("a", Str()), ("p", Int())])


# ---------------------------------------------------------------------------
# E2AP message payload schemas, keyed (procedure, message class)
# ---------------------------------------------------------------------------

#: (procedure, class) → schema of the envelope's ``"v"`` payload.
_MESSAGE_SCHEMAS: Dict[Tuple[int, int], Schema] = {}

#: name → schema for inner (E2SM) payloads and other bare trees.
_PAYLOAD_SCHEMAS: Dict[str, Schema] = {}


def register_message_schema(key: Tuple[int, int], schema: Schema) -> Schema:
    """Associate ``schema`` with an E2AP (procedure, class) pair."""
    key = (int(key[0]), int(key[1]))
    if key in _MESSAGE_SCHEMAS:
        raise ValueError(f"duplicate message schema registration: {key}")
    _MESSAGE_SCHEMAS[key] = schema
    return schema


def register_payload_schema(schema: Schema) -> Schema:
    """Register a named bare-tree schema (E2SM payloads, triggers)."""
    if schema.name in _PAYLOAD_SCHEMAS:
        raise ValueError(f"duplicate payload schema registration: {schema.name}")
    _PAYLOAD_SCHEMAS[schema.name] = schema
    return schema


def message_schema(procedure: int, msg_class: int) -> Optional[Schema]:
    return _MESSAGE_SCHEMAS.get((int(procedure), int(msg_class)))


def payload_schema(name: str) -> Optional[Schema]:
    return _PAYLOAD_SCHEMAS.get(name)


def message_schema_keys() -> List[Tuple[int, int]]:
    return sorted(_MESSAGE_SCHEMAS)


def payload_schema_names() -> List[str]:
    return sorted(_PAYLOAD_SCHEMAS)


def envelope_schema(procedure: int, msg_class: int) -> Optional[Schema]:
    """Full-message schema: ``{"p": const, "c": const, "v": payload}``.

    The discriminators are :class:`ConstInt`, so kernels fold them into
    constant wire bytes and the decode side turns them into a cheap
    prefix comparison.
    """
    body = message_schema(procedure, msg_class)
    if body is None:
        return None
    return Schema(
        f"envelope_{int(procedure)}_{int(msg_class)}",
        [
            ("p", ConstInt(int(procedure))),
            ("c", ConstInt(int(msg_class))),
            ("v", Nested(body)),
        ],
    )


# Procedure codes are hard numbers here on purpose: the schema layer
# sits below core.e2ap and must not import it (messages.py imports the
# codecs, which import this module).  tests/test_codec_codegen.py
# asserts the numbers agree with ProcedureCode/MessageClass.

# E2_SETUP = 1
register_message_schema(
    (1, 0),
    Schema(
        "E2SetupRequest",
        [("n", Nested(GLOBAL_E2_NODE_ID)), ("f", Seq(Nested(RAN_FUNCTION_ITEM)))],
    ),
)
register_message_schema(
    (1, 1),
    Schema(
        "E2SetupResponse",
        [("r", Int()), ("a", Seq(Int())), ("j", Seq(Int()))],
    ),
)
register_message_schema(
    (1, 2),
    Schema("E2SetupFailure", [("c", Nested(CAUSE)), ("t", F64())]),
)

# ERROR_INDICATION = 2
register_message_schema(
    (2, 0),
    Schema("ErrorIndication", [("c", Nested(CAUSE)), ("f", Opt(Int()))]),
)

# RESET = 3
register_message_schema((3, 0), Schema("ResetRequest", [("c", Nested(CAUSE))]))
register_message_schema((3, 1), Schema("ResetResponse", []))

# RIC_CONTROL = 4
register_message_schema(
    (4, 0),
    Schema(
        "RicControlRequest",
        [
            ("q", Nested(RIC_REQUEST_ID)),
            ("f", Int()),
            ("h", Bytes()),
            ("m", Bytes()),
            ("k", Bool()),
        ],
    ),
)
register_message_schema(
    (4, 1),
    Schema(
        "RicControlAcknowledge",
        [("q", Nested(RIC_REQUEST_ID)), ("f", Int()), ("o", Bytes())],
    ),
)
register_message_schema(
    (4, 2),
    Schema(
        "RicControlFailure",
        [("q", Nested(RIC_REQUEST_ID)), ("f", Int()), ("c", Nested(CAUSE))],
    ),
)

# RIC_INDICATION = 5
register_message_schema(
    (5, 0),
    Schema(
        "RicIndication",
        [
            ("q", Nested(RIC_REQUEST_ID)),
            ("f", Int()),
            ("a", Int()),
            ("s", Int()),
            ("k", Int()),
            ("h", Bytes()),
            ("m", Bytes()),
        ],
    ),
)

# RIC_SERVICE_QUERY = 6
register_message_schema(
    (6, 0), Schema("RicServiceQuery", [("k", Seq(Int()))])
)

# RIC_SERVICE_UPDATE = 7
register_message_schema(
    (7, 0),
    Schema(
        "RicServiceUpdate",
        [
            ("a", Seq(Nested(RAN_FUNCTION_ITEM))),
            ("m", Seq(Nested(RAN_FUNCTION_ITEM))),
            ("r", Seq(Int())),
        ],
    ),
)
register_message_schema(
    (7, 1),
    Schema(
        "RicServiceUpdateAcknowledge", [("a", Seq(Int())), ("r", Seq(Int()))]
    ),
)
register_message_schema(
    (7, 2), Schema("RicServiceUpdateFailure", [("c", Nested(CAUSE))])
)

# RIC_SUBSCRIPTION = 8
register_message_schema(
    (8, 0),
    Schema(
        "RicSubscriptionRequest",
        [
            ("q", Nested(RIC_REQUEST_ID)),
            ("f", Int()),
            ("t", Bytes()),
            ("a", Seq(Nested(RIC_ACTION_DEFINITION))),
        ],
    ),
)
register_message_schema(
    (8, 1),
    Schema(
        "RicSubscriptionResponse",
        [
            ("q", Nested(RIC_REQUEST_ID)),
            ("f", Int()),
            ("a", Seq(Nested(RIC_ACTION_ADMITTED))),
            ("n", Seq(Nested(RIC_ACTION_NOT_ADMITTED))),
        ],
    ),
)
register_message_schema(
    (8, 2),
    Schema(
        "RicSubscriptionFailure",
        [("q", Nested(RIC_REQUEST_ID)), ("f", Int()), ("c", Nested(CAUSE))],
    ),
)

# RIC_SUBSCRIPTION_DELETE = 9
register_message_schema(
    (9, 0),
    Schema(
        "RicSubscriptionDeleteRequest",
        [("q", Nested(RIC_REQUEST_ID)), ("f", Int())],
    ),
)
register_message_schema(
    (9, 1),
    Schema(
        "RicSubscriptionDeleteResponse",
        [("q", Nested(RIC_REQUEST_ID)), ("f", Int())],
    ),
)
register_message_schema(
    (9, 2),
    Schema(
        "RicSubscriptionDeleteFailure",
        [("q", Nested(RIC_REQUEST_ID)), ("f", Int()), ("c", Nested(CAUSE))],
    ),
)

# E2_NODE_CONFIGURATION_UPDATE = 10
register_message_schema(
    (10, 0),
    Schema(
        "E2NodeConfigurationUpdate",
        [("n", Nested(GLOBAL_E2_NODE_ID)), ("c", StrMap())],
    ),
)
register_message_schema(
    (10, 1), Schema("E2NodeConfigurationUpdateAcknowledge", [])
)
register_message_schema(
    (10, 2),
    Schema("E2NodeConfigurationUpdateFailure", [("c", Nested(CAUSE))]),
)

# E2_CONNECTION_UPDATE = 11
register_message_schema(
    (11, 0),
    Schema(
        "E2ConnectionUpdate",
        [("a", Seq(Nested(TNL_INFORMATION))), ("r", Seq(Nested(TNL_INFORMATION)))],
    ),
)
register_message_schema(
    (11, 1),
    Schema(
        "E2ConnectionUpdateAcknowledge", [("c", Seq(Nested(TNL_INFORMATION)))]
    ),
)
register_message_schema(
    (11, 2),
    Schema("E2ConnectionUpdateFailure", [("c", Nested(CAUSE))]),
)


# ---------------------------------------------------------------------------
# E2SM payload schemas (sm/*.py) and other bare trees
# ---------------------------------------------------------------------------

register_payload_schema(Schema("periodic_trigger", [("period_ms", F64())]))

KPM_MEASUREMENT = Schema("KpmMeasurement", [("name", Str()), ("value", F64())])
register_payload_schema(
    Schema(
        "kpm_report",
        [
            ("style", Int()),
            ("measurements", Seq(Nested(KPM_MEASUREMENT))),
            ("granularity_ms", F64()),
            ("tstamp_ms", F64()),
        ],
    )
)
register_payload_schema(
    Schema("kpm_action", [("style", Int()), ("metrics", Seq(Str()))])
)

MAC_UE_STATS = Schema(
    "MacUeStats",
    [
        ("rnti", Int()),
        ("cqi", Int()),
        ("mcs_dl", Int()),
        ("mcs_ul", Int()),
        ("prbs_dl", Int()),
        ("prbs_ul", Int()),
        ("bytes_dl", Int()),
        ("bytes_ul", Int()),
        ("slice_id", Int()),
    ],
)
register_payload_schema(
    Schema(
        "mac_stats_report",
        [("ues", Seq(Nested(MAC_UE_STATS))), ("tstamp_ms", F64())],
    )
)

RLC_BEARER_STATS = Schema(
    "RlcBearerStats",
    [
        ("rnti", Int()),
        ("bearer_id", Int()),
        ("buffer_bytes", Int()),
        ("buffer_pkts", Int()),
        ("sojourn_ms", F64()),
        ("tx_pdus", Int()),
        ("tx_bytes", Int()),
        ("rx_pdus", Int()),
        ("rx_bytes", Int()),
        ("dropped", Int()),
    ],
)
register_payload_schema(
    Schema(
        "rlc_stats_report",
        [("bearers", Seq(Nested(RLC_BEARER_STATS))), ("tstamp_ms", F64())],
    )
)

PDCP_BEARER_STATS = Schema(
    "PdcpBearerStats",
    [
        ("rnti", Int()),
        ("bearer_id", Int()),
        ("tx_pkts", Int()),
        ("tx_bytes", Int()),
        ("rx_pkts", Int()),
        ("rx_bytes", Int()),
    ],
)
register_payload_schema(
    Schema(
        "pdcp_stats_report",
        [("bearers", Seq(Nested(PDCP_BEARER_STATS))), ("tstamp_ms", F64())],
    )
)

register_payload_schema(
    Schema(
        "ni_message",
        [("if", Str()), ("proc", Str()), ("pl", Bytes()), ("dir", Str())],
    )
)
register_payload_schema(
    Schema("ni_action", [("if", Str()), ("procs", Seq(Str()))])
)
register_payload_schema(
    Schema(
        "ni_policy",
        [("if", Str()), ("procs", Seq(Str())), ("verdict", Str())],
    )
)
register_payload_schema(Schema("ni_insert_header", [("call_id", Int())]))
register_payload_schema(Schema("hw_ping", [("seq", Int()), ("data", Bytes())]))
register_payload_schema(
    Schema("ni_resume", [("resume", Bool()), ("call_id", Int())])
)


def describe_all() -> str:
    """Deterministic dump of every registered schema (docs, debugging)."""
    lines = []
    for key in message_schema_keys():
        lines.append(f"e2ap {key}: {_MESSAGE_SCHEMAS[key].describe()}")
    for name in payload_schema_names():
        lines.append(f"payload {name}: {_PAYLOAD_SCHEMAS[name].describe()}")
    return "\n".join(lines)
