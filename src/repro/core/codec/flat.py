"""FlatBuffers-style codec: cheap encode, lazy zero-copy reads.

Reproduces the cost model the paper measures for Google FlatBuffers
(§4.3, §5.2, §5.3):

* **encode** is byte-aligned bulk writing (no bit twiddling), so it is
  much cheaper than the PER-style codec;
* **decode** does not exist as a pass — :meth:`FlatCodec.decode`
  returns a :class:`FlatView` that reads fields directly from the raw
  buffer on access ("reading directly from raw bytes", §5.3), which is
  what lets the server's subscription management look up the relevant
  identifiers without parsing the whole message;
* each message carries a fixed header plus fixed-width scalars and
  32-bit size words, giving the 30-40 B per-message overhead the paper
  observes relative to ASN.1 (§5.2).

Wire layout (all integers little-endian):

``message  = magic(2) version(1) reserved(1) root_size(4) pad(8) value``
``value    = tag(1) payload``
``int      = tag int64``                     (big ints: tag + varlen octets)
``float    = tag float64``
``str/bytes= tag size(4) raw``
``list     = tag count(4) sizes(4*count) values``
``dict     = tag count(4) directory values`` where directory entries are
``            keylen(2) key value_size(4)``

The sizes/directory let a reader locate any element without decoding
its siblings — the flat, offset-driven access pattern of FlatBuffers.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterator, List, Tuple

from repro.core.codec import base
from repro.core.codec.base import Codec, CodecError, validate_tree

_MAGIC = b"FR"
_VERSION = 1
_HEADER = struct.Struct("<2sBBI8x")  # magic, version, reserved, root size, pad
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")

_TAG_INTBIG = 15  # escape tag for ints outside int64 range


class FlatCodec(Codec):
    """Byte-aligned, offset-indexed codec (registry name ``"fb"``)."""

    name = "fb"

    def encode(self, value: Any) -> bytes:
        validate_tree(value)
        body = _encode_value(value)
        return _HEADER.pack(_MAGIC, _VERSION, 0, len(body)) + body

    def decode(self, data: bytes) -> Any:
        """Validate the header and return a lazy view (O(1) work).

        Scalars at the root are returned directly; dict/list roots come
        back as :class:`FlatView` / :class:`FlatListView`.
        """
        if len(data) < _HEADER.size:
            raise CodecError(f"flat message too short: {len(data)} B")
        magic, version, _reserved, root_size = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise CodecError(f"bad flat magic: {magic!r}")
        if version != _VERSION:
            raise CodecError(f"unsupported flat version: {version}")
        if _HEADER.size + root_size > len(data):
            raise CodecError("flat root size exceeds buffer")
        view = memoryview(data)
        return _lazy_value(view, _HEADER.size)


# -- encoding --------------------------------------------------------


def _encode_value(value: Any) -> bytes:
    if value is None:
        return bytes((base.TAG_NONE,))
    if value is True:
        return bytes((base.TAG_TRUE,))
    if value is False:
        return bytes((base.TAG_FALSE,))
    if isinstance(value, int):
        if -(1 << 63) <= value < (1 << 63):
            return bytes((base.TAG_INT,)) + _I64.pack(value)
        raw = _bigint_to_bytes(value)
        return bytes((_TAG_INTBIG,)) + _U32.pack(len(raw)) + raw
    if isinstance(value, float):
        return bytes((base.TAG_FLOAT,)) + _F64.pack(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return bytes((base.TAG_STR,)) + _U32.pack(len(raw)) + raw
    if isinstance(value, bytes):
        return bytes((base.TAG_BYTES,)) + _U32.pack(len(value)) + value
    if isinstance(value, list):
        encoded = [_encode_value(item) for item in value]
        parts = [bytes((base.TAG_LIST,)), _U32.pack(len(encoded))]
        parts.extend(_U32.pack(len(chunk)) for chunk in encoded)
        parts.extend(encoded)
        return b"".join(parts)
    if isinstance(value, dict):
        keys = [key.encode("utf-8") for key in value]
        encoded = [_encode_value(item) for item in value.values()]
        parts = [bytes((base.TAG_DICT,)), _U32.pack(len(encoded))]
        for key, chunk in zip(keys, encoded):
            parts.append(_U16.pack(len(key)))
            parts.append(key)
            parts.append(_U32.pack(len(chunk)))
        parts.extend(encoded)
        return b"".join(parts)
    raise CodecError(f"unsupported type: {type(value).__name__}")


def _bigint_to_bytes(value: int) -> bytes:
    sign = 1 if value < 0 else 0
    magnitude = -value if value < 0 else value
    octets = (magnitude.bit_length() + 7) // 8 or 1
    return bytes((sign,)) + magnitude.to_bytes(octets, "little")


# -- lazy reading ----------------------------------------------------


def _lazy_value(buf: memoryview, offset: int) -> Any:
    """Decode a scalar in place, or wrap a container in a lazy view.

    Corruption surfaces lazily (a flipped size word is only hit when
    the field is touched); every low-level error is normalized to
    :class:`CodecError` so consumers see one failure type.
    """
    try:
        return _lazy_value_unchecked(buf, offset)
    except CodecError:
        raise
    except (IndexError, ValueError, UnicodeDecodeError, OverflowError,
            MemoryError, struct.error) as exc:
        raise CodecError(f"corrupt flat buffer: {exc}") from exc


def _lazy_value_unchecked(buf: memoryview, offset: int) -> Any:
    tag = buf[offset]
    if tag == base.TAG_NONE:
        return None
    if tag == base.TAG_TRUE:
        return True
    if tag == base.TAG_FALSE:
        return False
    if tag == base.TAG_INT:
        return _I64.unpack_from(buf, offset + 1)[0]
    if tag == _TAG_INTBIG:
        size = _U32.unpack_from(buf, offset + 1)[0]
        raw = bytes(buf[offset + 5:offset + 5 + size])
        magnitude = int.from_bytes(raw[1:], "little")
        return -magnitude if raw[0] else magnitude
    if tag == base.TAG_FLOAT:
        return _F64.unpack_from(buf, offset + 1)[0]
    if tag == base.TAG_STR:
        size = _U32.unpack_from(buf, offset + 1)[0]
        return bytes(buf[offset + 5:offset + 5 + size]).decode("utf-8")
    if tag == base.TAG_BYTES:
        size = _U32.unpack_from(buf, offset + 1)[0]
        return bytes(buf[offset + 5:offset + 5 + size])
    if tag == base.TAG_LIST:
        return FlatListView(buf, offset)
    if tag == base.TAG_DICT:
        return FlatView(buf, offset)
    raise CodecError(f"unknown flat tag: {tag}")


class FlatListView:
    """Lazy list over a flat buffer; items decode on access."""

    __slots__ = ("_buf", "_offsets")

    def __init__(self, buf: memoryview, offset: int) -> None:
        count = _U32.unpack_from(buf, offset + 1)[0]
        sizes_at = offset + 5
        cursor = sizes_at + 4 * count
        offsets: List[int] = []
        for index in range(count):
            offsets.append(cursor)
            cursor += _U32.unpack_from(buf, sizes_at + 4 * index)[0]
        self._buf = buf
        self._offsets = offsets

    def __len__(self) -> int:
        return len(self._offsets)

    def __getitem__(self, index: int) -> Any:
        return _lazy_value(self._buf, self._offsets[index])

    def __iter__(self) -> Iterator[Any]:
        for offset in self._offsets:
            yield _lazy_value(self._buf, offset)

    def to_list(self) -> List[Any]:
        """Materialize every element (recursively plain)."""
        return [base.materialize(item) for item in self]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, FlatListView)):
            return base.materialize(self.to_list()) == base.materialize(
                other.to_list() if isinstance(other, FlatListView) else list(other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"FlatListView(len={len(self)})"


class FlatView:
    """Lazy, read-only mapping over an encoded flat dict.

    Construction only parses the fixed-size field directory; values are
    decoded when accessed, and string/bytes payloads slice the original
    buffer — the zero-copy behaviour the paper credits for FlatBuffers'
    4x CPU advantage at the controller (§5.3).
    """

    __slots__ = ("_buf", "_fields")

    def __init__(self, buf: memoryview, offset: int) -> None:
        count = _U32.unpack_from(buf, offset + 1)[0]
        cursor = offset + 5
        directory: List[Tuple[str, int]] = []  # (key, value size) in order
        for _ in range(count):
            key_len = _U16.unpack_from(buf, cursor)[0]
            cursor += 2
            key = bytes(buf[cursor:cursor + key_len]).decode("utf-8")
            cursor += key_len
            size = _U32.unpack_from(buf, cursor)[0]
            cursor += 4
            directory.append((key, size))
        fields: Dict[str, int] = {}
        for key, size in directory:
            fields[key] = cursor
            cursor += size
        self._buf = buf
        self._fields = fields

    def __getitem__(self, key: str) -> Any:
        return _lazy_value(self._buf, self._fields[key])

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._fields:
            return self[key]
        return default

    def __contains__(self, key: object) -> bool:
        return key in self._fields

    def keys(self) -> Iterator[str]:
        return iter(self._fields)

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def items(self) -> Iterator[Tuple[str, Any]]:
        for key in self._fields:
            yield key, self[key]

    def values(self) -> Iterator[Any]:
        for key in self._fields:
            yield self[key]

    def to_dict(self) -> Dict[str, Any]:
        """Materialize the whole table into plain Python objects."""
        return {key: base.materialize(value) for key, value in self.items()}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (dict, FlatView)):
            mine = self.to_dict()
            theirs = other.to_dict() if isinstance(other, FlatView) else base.materialize(other)
            return mine == theirs
        return NotImplemented

    def __repr__(self) -> str:
        return f"FlatView(keys={list(self._fields)!r})"


base.register_codec(FlatCodec())
