"""FlatBuffers-style codec: cheap encode, lazy zero-copy reads.

Reproduces the cost model the paper measures for Google FlatBuffers
(§4.3, §5.2, §5.3):

* **encode** is byte-aligned bulk writing (no bit twiddling), so it is
  much cheaper than the PER-style codec;
* **decode** does not exist as a pass — :meth:`FlatCodec.decode`
  returns a :class:`FlatView` that reads fields directly from the raw
  buffer on access ("reading directly from raw bytes", §5.3), which is
  what lets the server's subscription management look up the relevant
  identifiers without parsing the whole message;
* each message carries a fixed header plus fixed-width scalars and
  32-bit size words, giving the 30-40 B per-message overhead the paper
  observes relative to ASN.1 (§5.2).

Wire layout (all integers little-endian):

``message  = magic(2) version(1) reserved(1) root_size(4) pad(8) value``
``value    = tag(1) payload``
``int      = tag int64``                     (big ints: tag + varlen octets)
``float    = tag float64``
``str/bytes= tag size(4) raw``
``list     = tag count(4) sizes(4*count) values``
``dict     = tag count(4) directory values`` where directory entries are
``            keylen(2) key value_size(4)``

The sizes/directory let a reader locate any element without decoding
its siblings — the flat, offset-driven access pattern of FlatBuffers.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterator, List, Tuple

from repro.core.codec import base
from repro.core.codec import codegen as _codegen
from repro.core.codec.base import Codec, CodecError
from repro.metrics import counters

_MAGIC = b"FR"
_VERSION = 1
_HEADER = struct.Struct("<2sBBI8x")  # magic, version, reserved, root size, pad
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")

_TAG_INTBIG = 15  # escape tag for ints outside int64 range

_INT64_MIN = -(1 << 63)
_INT64_MAX = 1 << 63

# Single-byte tag cells, preallocated so scalar encodes never build a
# fresh one-byte object.
_TAGB = tuple(bytes((tag,)) for tag in range(16))  # repro-lint: disable=RL007 — one-time tag-cell preallocation at import

#: Encoded ``tag + int64`` cells for recently seen in-range ints.  E2AP
#: traffic repeats the same small identifiers (request ids, function
#: ids, UE counts) constantly; the cap bounds memory on adversarial
#: value streams.
_INT_CELLS: Dict[int, bytes] = {}
_INT_CELLS_MAX = 1 << 16

#: ``keylen(2) + key`` directory prefixes per field name; field-name
#: vocabularies are tiny (one/two-letter E2AP keys), so this stays hot.
_KEY_PREFIX: Dict[str, bytes] = {}
_KEY_PREFIX_MAX = 1 << 12

#: Raw key octets → interned field-name strings for the lazy reader;
#: directory parsing then skips UTF-8 decoding for every repeated key.
_KEY_INTERN: Dict[bytes, str] = {}
_KEY_INTERN_MAX = 1 << 12


class _LruCache:
    """Insertion-ordered LRU with a hard cap and an eviction counter.

    ``get`` refreshes recency; ``put`` evicts the least recently used
    entry once the cap is reached.  Bounds the directory/route caches so
    a pathological mix of message layouts cannot grow them without
    limit; the eviction counters make such a mix visible in metrics.
    """

    __slots__ = ("_data", "_cap", "_evictions")

    def __init__(self, cap: int, counter_name: str) -> None:
        self._data: Dict[Any, Any] = {}
        self._cap = cap
        # Caller-supplied name: every construction site below passes a
        # literal declared in repro.metrics.names.
        self._evictions = counters.get_counter(counter_name)  # repro-lint: disable=RL005

    def get(self, key: Any) -> Any:
        data = self._data
        value = data.get(key)
        if value is not None:
            del data[key]
            data[key] = value
        return value

    def put(self, key: Any, value: Any) -> None:
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self._cap:
            del data[next(iter(data))]
            self._evictions.incr()
        data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

#: Parsed dict directories keyed on their raw octets (count word
#: included).  E2AP traffic re-sends the same tables with the same
#: field sizes every period, so the per-message directory walk
#: collapses to one slice and a dict hit.  The cached field table maps
#: key → offset *relative to the value area* and is shared, read-only,
#: by every view that hits it.  Only directories whose field names are
#: all one octet (the entire E2AP vocabulary) are cached: their length
#: is then exactly ``7 * count``, so the lookup slice is exact, and a
#: byte-equal hit proves the layout — the directory walk is a pure
#: function of those bytes.
_DIR_CACHE_MAX = 1 << 10
_DIR_CACHE_FIELDS = 18  # bounds speculative-key size to ~128 octets
_DIR_CACHE = _LruCache(_DIR_CACHE_MAX, "codec.flat.dir_cache.evictions")

#: Same idea for list size-prefix blocks: count word + size words →
#: relative element offsets.  List blocks are fixed-width, so the key
#: is exact (no window needed); the item cap bounds key size.
_LIST_DIR_CACHE = _LruCache(_DIR_CACHE_MAX, "codec.flat.list_cache.evictions")
_LIST_CACHE_ITEMS = 64

#: Envelope window → ``(p_rel, c_rel, v_rel)`` route plan, derived from
#: :data:`_DIR_CACHE` once per distinct envelope layout.  Saves the
#: three per-call field-dict lookups on the batched ingest path.
_ROUTE_CACHE = _LruCache(_DIR_CACHE_MAX, "codec.flat.route_cache.evictions")

#: Two adjacent ``tag + int64`` cells in one unpack; the encoder always
#: lays consecutive int fields out back to back, so paired scalars
#: (procedure + class, requestor + instance) read with one struct call.
_PAIR = struct.Struct("<bqbq")


class FlatCodec(Codec):
    """Byte-aligned, offset-indexed codec (registry name ``"fb"``)."""

    name = "fb"

    def encode(self, value: Any) -> bytes:
        if _codegen.ENABLED:
            out = _codegen.kernel_encode("fb", value)
            if out is not None:
                return out
        return self.encode_interpretive(value)

    def decode(self, data) -> Any:
        """Decode via a generated kernel when one matches, else lazily.

        Kernel-decoded envelopes come back as plain materialized dicts
        (the kernel's fused unpacks beat lazy access for shapes whose
        fields the caller touches anyway); everything else returns the
        interpretive lazy view.  Buffer-protocol inputs (memoryview /
        bytearray) skip the kernels — which index raw ``bytes`` — and
        take the lazy interpretive lane without a ``bytes()`` copy.
        """
        if _codegen.ENABLED and type(data) is bytes:
            out = _codegen.kernel_decode("fb", data)
            if out is not None:
                return out
        return self.decode_interpretive(data)

    def encode_interpretive(self, value: Any) -> bytes:
        """The original field-walking encoder (differential-test oracle)."""
        body = _encode_value(value, 0)
        return _HEADER.pack(_MAGIC, _VERSION, 0, len(body)) + body

    def decode_interpretive(self, data: bytes) -> Any:
        """Validate the header and return a lazy view (O(1) work).

        Scalars at the root are returned directly; dict/list roots come
        back as :class:`FlatView` / :class:`FlatListView`.
        """
        if len(data) < _HEADER.size:
            raise CodecError(f"flat message too short: {len(data)} B")
        magic, version, _reserved, root_size = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise CodecError(f"bad flat magic: {magic!r}")
        if version != _VERSION:
            raise CodecError(f"unsupported flat version: {version}")
        if _HEADER.size + root_size > len(data):
            raise CodecError("flat root size exceeds buffer")
        # Lazy access works on the bytes object directly: containers
        # are located by offset (never sliced), and scalar/string reads
        # slice exactly the octets they return, so no memoryview
        # indirection is needed to stay zero-copy.
        return _lazy_value(data, _HEADER.size)

    def decode_route(self, data) -> Tuple[int, int, Any]:
        """One-pass envelope read for the server's batched ingest.

        Returns ``(procedure, msg_class, body)`` — the three things the
        server routes on — touching the buffer once: header check, one
        directory-cache hit for the ``{p, c, v}`` envelope, two int
        reads, one lazy view over the body.  Anything unexpected
        (cold directory, long keys, non-dict root) falls back to the
        generic :meth:`decode` walk, which also warms the cache.
        """
        if type(data) is not bytes:
            # Non-bytes buffers would need their cache windows
            # materialized anyway (bytearray slices are unhashable);
            # the generic lazy walk handles them without copying.
            tree = self.decode(data)
            return tree["p"], tree["c"], tree["v"]
        try:
            off = _HEADER.size
            if (
                len(data) > off + 5
                and data[:2] == _MAGIC
                and data[2] == _VERSION
                and data[off] == base.TAG_DICT
            ):
                count = _U32.unpack_from(data, off + 1)[0]
                if count <= _DIR_CACHE_FIELDS:
                    window = data[off + 1:off + 5 + 7 * count]
                    plan = _ROUTE_CACHE.get(window)
                    if plan is None:
                        fields = _DIR_CACHE.get(window)
                        if (
                            fields is not None
                            and "p" in fields
                            and "c" in fields
                            and "v" in fields
                        ):
                            plan = (fields["p"], fields["c"], fields["v"])
                            _ROUTE_CACHE.put(window, plan)
                    if plan is not None:
                        value_base = off + 5 + 7 * count
                        p_rel, c_rel, v_rel = plan
                        p_off = value_base + p_rel
                        if c_rel == p_rel + 9:
                            tag_p, proc, tag_c, cls = _PAIR.unpack_from(data, p_off)
                        else:
                            tag_p = data[p_off]
                            tag_c = data[value_base + c_rel]
                            proc = _I64.unpack_from(data, p_off + 1)[0]
                            cls = _I64.unpack_from(data, value_base + c_rel + 1)[0]
                        if tag_p == base.TAG_INT and tag_c == base.TAG_INT:
                            v_off = value_base + v_rel
                            body: Any = None
                            if data[v_off] == base.TAG_DICT:
                                v_count = _U32.unpack_from(data, v_off + 1)[0]
                                if v_count <= _DIR_CACHE_FIELDS:
                                    v_fields = _DIR_CACHE.get(
                                        data[v_off + 1:v_off + 5 + 7 * v_count]
                                    )
                                    if v_fields is not None:
                                        # Bypass FlatView.__init__: the
                                        # directory is already parsed, so
                                        # fill the slots directly.
                                        body = FlatView.__new__(FlatView)
                                        body._buf = data
                                        body._base = v_off + 5 + 7 * v_count
                                        body._fields = v_fields
                            if body is None:
                                body = _lazy_value(data, v_off)
                            return proc, cls, body
        except (KeyError, IndexError, struct.error):
            pass
        tree = self.decode(data)
        return tree["p"], tree["c"], tree["v"]


# -- encoding --------------------------------------------------------


def _encode_value(value: Any, depth: int) -> bytes:
    """Encode one value; validation is folded into the single walk."""
    if value is None:
        return _TAGB[base.TAG_NONE]
    if value is True:
        return _TAGB[base.TAG_TRUE]
    if value is False:
        return _TAGB[base.TAG_FALSE]
    kind = type(value)
    if kind is int or (kind is not bool and isinstance(value, int)):
        cell = _INT_CELLS.get(value)
        if cell is not None:
            return cell
        if _INT64_MIN <= value < _INT64_MAX:
            cell = _TAGB[base.TAG_INT] + _I64.pack(value)
            if len(_INT_CELLS) < _INT_CELLS_MAX:
                _INT_CELLS[int(value)] = cell
            return cell
        raw = _bigint_to_bytes(value)
        return _TAGB[_TAG_INTBIG] + _U32.pack(len(raw)) + raw
    if kind is float:
        return _TAGB[base.TAG_FLOAT] + _F64.pack(value)
    if kind is str:
        raw = value.encode("utf-8")
        return _TAGB[base.TAG_STR] + _U32.pack(len(raw)) + raw
    if kind is bytes:
        return _TAGB[base.TAG_BYTES] + _U32.pack(len(value)) + value
    if kind is list or isinstance(value, list):
        if depth >= 64 and value:
            raise CodecError("value tree deeper than 64 levels")
        child = depth + 1
        encoded = [_encode_value(item, child) for item in value]
        parts = [_TAGB[base.TAG_LIST], _U32.pack(len(encoded))]
        parts.extend(_U32.pack(len(chunk)) for chunk in encoded)
        parts.extend(encoded)
        return b"".join(parts)
    if kind is dict or isinstance(value, dict):
        if depth >= 64 and value:
            raise CodecError("value tree deeper than 64 levels")
        child = depth + 1
        encoded = [_encode_value(item, child) for item in value.values()]
        parts = [_TAGB[base.TAG_DICT], _U32.pack(len(encoded))]
        append = parts.append
        for key, chunk in zip(value.keys(), encoded):
            prefix = _KEY_PREFIX.get(key)
            if prefix is None:
                if not isinstance(key, str):
                    raise CodecError(f"non-string dict key: {key!r}")
                raw = key.encode("utf-8")
                prefix = _U16.pack(len(raw)) + raw
                if len(_KEY_PREFIX) < _KEY_PREFIX_MAX:
                    _KEY_PREFIX[key] = prefix
            append(prefix)
            append(_U32.pack(len(chunk)))
        parts.extend(encoded)
        return b"".join(parts)
    if isinstance(value, (float, str, bytes)):
        # subclass instances reach here; encode via the base type
        if isinstance(value, float):
            return _TAGB[base.TAG_FLOAT] + _F64.pack(value)
        if isinstance(value, str):
            raw = str(value).encode("utf-8")
            return _TAGB[base.TAG_STR] + _U32.pack(len(raw)) + raw
        return _TAGB[base.TAG_BYTES] + _U32.pack(len(value)) + bytes(value)  # repro-lint: disable=RL007 — bytes subclass normalized once for the wire
    raise CodecError(f"unsupported type: {type(value).__name__}")


def _bigint_to_bytes(value: int) -> bytes:
    sign = 1 if value < 0 else 0
    magnitude = -value if value < 0 else value
    octets = (magnitude.bit_length() + 7) // 8 or 1
    return bytes((sign,)) + magnitude.to_bytes(octets, "little")  # repro-lint: disable=RL007 — one-byte sign cell on the cold bigint path


# -- lazy reading ----------------------------------------------------


def _lazy_value(buf: bytes, offset: int) -> Any:
    """Decode a scalar in place, or wrap a container in a lazy view.

    Corruption surfaces lazily (a flipped size word is only hit when
    the field is touched); every low-level error is normalized to
    :class:`CodecError` so consumers see one failure type.
    """
    try:
        return _lazy_value_unchecked(buf, offset)
    except CodecError:
        raise
    except (IndexError, ValueError, UnicodeDecodeError, OverflowError,
            MemoryError, struct.error) as exc:
        raise CodecError(f"corrupt flat buffer: {exc}") from exc


def _lazy_value_unchecked(buf: bytes, offset: int) -> Any:
    # Tags are tested hottest-first: E2AP headers are dominated by int
    # scalars, octet-string payloads, and nested tables.
    tag = buf[offset]
    if tag == base.TAG_INT:
        return _I64.unpack_from(buf, offset + 1)[0]
    if tag == base.TAG_BYTES:
        size = _U32.unpack_from(buf, offset + 1)[0]
        return buf[offset + 5:offset + 5 + size]
    if tag == base.TAG_DICT:
        return FlatView(buf, offset)
    if tag == base.TAG_STR:
        size = _U32.unpack_from(buf, offset + 1)[0]
        # str(buf, enc) decodes any buffer-protocol slice (memoryview
        # slices have no .decode()).
        return str(buf[offset + 5:offset + 5 + size], "utf-8")
    if tag == base.TAG_LIST:
        return FlatListView(buf, offset)
    if tag == base.TAG_NONE:
        return None
    if tag == base.TAG_TRUE:
        return True
    if tag == base.TAG_FALSE:
        return False
    if tag == base.TAG_FLOAT:
        return _F64.unpack_from(buf, offset + 1)[0]
    if tag == _TAG_INTBIG:
        size = _U32.unpack_from(buf, offset + 1)[0]
        raw = buf[offset + 5:offset + 5 + size]
        magnitude = int.from_bytes(raw[1:], "little")
        return -magnitude if raw[0] else magnitude
    raise CodecError(f"unknown flat tag: {tag}")


class FlatListView:
    """Lazy list over a flat buffer; items decode on access.

    Element offsets are kept relative to the value area and shared via
    :data:`_LIST_DIR_CACHE` when the same size-prefix block repeats.
    """

    __slots__ = ("_buf", "_base", "_rels")

    def __init__(self, buf: bytes, offset: int) -> None:
        count = _U32.unpack_from(buf, offset + 1)[0]
        sizes_at = offset + 5
        base_at = sizes_at + 4 * count
        cacheable = count <= _LIST_CACHE_ITEMS
        if cacheable:
            block = buf[offset + 1:base_at]
            if type(block) is not bytes:
                # Mutable-buffer slices are unhashable; the cache key
                # must be an immutable, bounded (≤ 260 B) copy.
                block = bytes(block)  # repro-lint: disable=RL007
            rels = _LIST_DIR_CACHE.get(block)
            if rels is None:
                acc = 0
                offsets: List[int] = []
                for (size,) in _U32.iter_unpack(block[4:]):
                    offsets.append(acc)
                    acc += size
                rels = tuple(offsets)
                if len(rels) != count:
                    raise CodecError(
                        f"flat list sizes truncated: {len(rels)} < {count}"
                    )
                _LIST_DIR_CACHE.put(block, rels)
        else:
            acc = 0
            offsets = []
            for index in range(count):
                offsets.append(acc)
                acc += _U32.unpack_from(buf, sizes_at + 4 * index)[0]
            rels = tuple(offsets)
        self._buf = buf
        self._base = base_at
        self._rels = rels

    def __len__(self) -> int:
        return len(self._rels)

    def __getitem__(self, index: int) -> Any:
        buf = self._buf
        offset = self._base + self._rels[index]
        tag = buf[offset]
        if tag == base.TAG_INT:
            return _I64.unpack_from(buf, offset + 1)[0]
        if tag == base.TAG_DICT:
            return FlatView(buf, offset)
        return _lazy_value(buf, offset)

    def __iter__(self) -> Iterator[Any]:
        buf = self._buf
        base = self._base
        for rel in self._rels:
            yield _lazy_value(buf, base + rel)

    def to_list(self) -> List[Any]:
        """Materialize every element (recursively plain)."""
        return [base.materialize(item) for item in self]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, FlatListView)):
            return base.materialize(self.to_list()) == base.materialize(
                other.to_list() if isinstance(other, FlatListView) else list(other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"FlatListView(len={len(self)})"


class FlatView:
    """Lazy, read-only mapping over an encoded flat dict.

    Construction only parses the fixed-size field directory; values are
    decoded when accessed, and string/bytes payloads slice the original
    buffer — the zero-copy behaviour the paper credits for FlatBuffers'
    4x CPU advantage at the controller (§5.3).
    """

    __slots__ = ("_buf", "_base", "_fields")

    def __init__(self, buf: bytes, offset: int) -> None:
        count = _U32.unpack_from(buf, offset + 1)[0]
        cursor = offset + 5
        # Speculative exact-length key assuming one-octet field names;
        # a hit does no per-field work at all.  Dicts with longer
        # names simply never match and take the full parse below.
        if count <= _DIR_CACHE_FIELDS:
            window = buf[offset + 1:cursor + 7 * count]
            if type(window) is not bytes:
                # Mutable-buffer slices are unhashable; the cache key
                # must be an immutable, bounded (≤ 131 B) copy.
                window = bytes(window)  # repro-lint: disable=RL007
            fields = _DIR_CACHE.get(window)
            if fields is not None:
                self._buf = buf
                self._base = cursor + 7 * count
                self._fields = fields
                return
        unpack_u16 = _U16.unpack_from
        unpack_u32 = _U32.unpack_from
        intern = _KEY_INTERN
        keys_list: List[str] = []
        sizes: List[int] = []
        for _ in range(count):
            key_len = unpack_u16(buf, cursor)[0]
            cursor += 2
            raw = buf[cursor:cursor + key_len]
            if type(raw) is not bytes:
                raw = bytes(raw)  # repro-lint: disable=RL007 — intern key must be hashable
            key = intern.get(raw)
            if key is None:
                key = raw.decode("utf-8")
                if len(intern) < _KEY_INTERN_MAX:
                    intern[raw] = key
            cursor += key_len
            sizes.append(unpack_u32(buf, cursor)[0])
            cursor += 4
            keys_list.append(key)
        fields: Dict[str, int] = {}
        rel = 0
        for key, size in zip(keys_list, sizes):
            fields[key] = rel
            rel += size
        if count <= _DIR_CACHE_FIELDS and cursor - offset - 5 == 7 * count:
            _DIR_CACHE.put(window, fields)
        self._buf = buf
        self._base = cursor
        self._fields = fields

    def __getitem__(self, key: str) -> Any:
        # The three hottest tags are read inline: every E2AP header
        # access is an int, bytes payload, or nested table, and the
        # two extra call frames of the generic path cost more than the
        # reads themselves on the indication hot path.
        buf = self._buf
        offset = self._base + self._fields[key]
        tag = buf[offset]
        if tag == base.TAG_INT:
            return _I64.unpack_from(buf, offset + 1)[0]
        if tag == base.TAG_BYTES:
            size = _U32.unpack_from(buf, offset + 1)[0]
            return buf[offset + 5:offset + 5 + size]
        if tag == base.TAG_DICT:
            count = _U32.unpack_from(buf, offset + 1)[0]
            # Mutable-buffer slices are unhashable cache keys; those
            # buffers take the full FlatView parse below instead.
            if count <= _DIR_CACHE_FIELDS and type(buf) is bytes:
                sub = _DIR_CACHE.get(buf[offset + 1:offset + 5 + 7 * count])
                if sub is not None:
                    view = FlatView.__new__(FlatView)
                    view._buf = buf
                    view._base = offset + 5 + 7 * count
                    view._fields = sub
                    return view
            return FlatView(buf, offset)
        return _lazy_value(buf, offset)

    def int_pair(self, key_a: str, key_b: str) -> Tuple[int, int]:
        """Read two int fields, fused into one unpack when adjacent.

        The encoder lays fields out in directory order, so pairs that
        travel together (``r``/``i`` of a request id) are one struct
        call apart; non-adjacent or non-int layouts fall back to two
        ordinary reads.
        """
        fields = self._fields
        value_base = self._base
        buf = self._buf
        a_off = value_base + fields[key_a]
        if value_base + fields[key_b] == a_off + 9:
            tag_a, val_a, tag_b, val_b = _PAIR.unpack_from(buf, a_off)
            if tag_a == base.TAG_INT and tag_b == base.TAG_INT:
                return val_a, val_b
        return self[key_a], self[key_b]

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._fields:
            return self[key]
        return default

    def __contains__(self, key: object) -> bool:
        return key in self._fields

    def keys(self) -> Iterator[str]:
        return iter(self._fields)

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def items(self) -> Iterator[Tuple[str, Any]]:
        buf = self._buf
        base = self._base
        for key, rel in self._fields.items():
            yield key, _lazy_value(buf, base + rel)

    def values(self) -> Iterator[Any]:
        buf = self._buf
        base = self._base
        for rel in self._fields.values():
            yield _lazy_value(buf, base + rel)

    def to_dict(self) -> Dict[str, Any]:
        """Materialize the whole table into plain Python objects."""
        return {key: base.materialize(value) for key, value in self.items()}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (dict, FlatView)):
            mine = self.to_dict()
            theirs = other.to_dict() if isinstance(other, FlatView) else base.materialize(other)
            return mine == theirs
        return NotImplemented

    def __repr__(self) -> str:
        return f"FlatView(keys={list(self._fields)!r})"


base.register_codec(FlatCodec())
