"""FlexRIC SDK core: E2AP abstraction, codecs, transport, agent and server.

This package is the paper's primary contribution.  It mirrors the
structure of the C SDK described in Sections 3-4:

* :mod:`repro.core.e2ap` — intermediate representation of E2AP
  procedures, independent of encoding and transport (§4.3).
* :mod:`repro.core.codec` — pluggable encoding schemes: an ASN.1
  aligned-PER-style codec, a FlatBuffers-style codec and a
  Protobuf-style codec used by the FlexRAN baseline (§4.3, §5.2).
* :mod:`repro.core.transport` — the transport wrapper that abstracts
  SCTP; here a message-framed TCP transport plus an in-process loopback.
* :mod:`repro.core.agent` — the agent library (§4.1): generic RAN
  function API and multi-controller support.
* :mod:`repro.core.server` — the server library (§4.2): event-driven
  message multiplexing, RAN management/RANDB, subscription management,
  and the iApp interface.
"""
