"""In-process loopback transport.

Connects agents and controllers living in the same interpreter with
zero I/O, preserving message boundaries and the event-callback flow of
the TCP transport.  Used by the discrete-event experiments (where
simulated time must not depend on socket scheduling) and by most tests.

Delivery model: ``send`` enqueues the message on a per-transport
dispatch queue which is drained immediately unless a dispatch is
already running.  This keeps callback nesting flat — a request/response
ping-pong of any depth uses O(1) stack — while remaining fully
synchronous and deterministic.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, Optional, Sequence, Tuple

from repro.core.transport.base import (
    DisconnectReason,
    Endpoint,
    Listener,
    Transport,
    TransportEvents,
)
from repro.metrics.trace import TRACER as _TRACER


class _InProcEndpoint(Endpoint):
    """One side of an in-process connection pair."""

    def __init__(self, transport: "InProcTransport", peer_label: str, events: TransportEvents) -> None:
        self._transport = transport
        self._peer_label = peer_label
        self._events = events
        self._other: Optional["_InProcEndpoint"] = None
        self._closed = False
        #: optional hook: bytes sent through this endpoint, for
        #: signaling-rate accounting (Fig. 7b) without packet capture.
        self.bytes_sent = 0
        self.messages_sent = 0

    def _attach(self, other: "_InProcEndpoint") -> None:
        self._other = other

    def send(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionError("endpoint closed")
        if self._other is None or self._other._closed:
            raise ConnectionError("peer closed")
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(f"send expects bytes, got {type(data).__name__}")
        self.bytes_sent += len(data)
        self.messages_sent += 1
        other = self._other
        tracer = _TRACER
        if tracer.enabled:
            # Time only the hand-off (the transport's own cost); the
            # drain below runs the receiver's decode/dispatch, which
            # record their own spans.
            start = time.perf_counter()
            self._transport._queue.append(
                lambda: other._events.on_message(other, bytes(data))
            )
            tracer.record("send", start, tracer.adopt_corr(), node=self._peer_label)
            self._transport._drain()
            return
        self._transport._enqueue(lambda: other._events.on_message(other, bytes(data)))

    def send_many(self, batch: Sequence[bytes]) -> None:
        if not batch:
            return
        if self._closed:
            raise ConnectionError("endpoint closed")
        if self._other is None or self._other._closed:
            raise ConnectionError("peer closed")
        frozen = []
        for data in batch:
            if not isinstance(data, (bytes, bytearray)):
                raise TypeError(f"send expects bytes, got {type(data).__name__}")
            self.bytes_sent += len(data)
            frozen.append(bytes(data))
        self.messages_sent += len(frozen)
        other = self._other

        def deliver() -> None:
            for data in frozen:
                other._events.on_message(other, data)

        # One queue entry for the batch mirrors the TCP transport's
        # single coalesced write; delivery stays one message at a time.
        tracer = _TRACER
        if tracer.enabled:
            start = time.perf_counter()
            self._transport._queue.append(deliver)
            tracer.record("send", start, tracer.adopt_corr(), node=self._peer_label)
            self._transport._drain()
            return
        self._transport._enqueue(deliver)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        other = self._other
        if other is not None and not other._closed:
            # The peer observes an orderly EOF, exactly like TCP.
            reason = DisconnectReason(DisconnectReason.EOF)
            self._transport._enqueue(lambda: other._signal_disconnect(reason))

    def _signal_disconnect(self, reason: Optional[DisconnectReason] = None) -> None:
        if not self._closed:
            self._closed = True
            self._events.on_disconnected(
                self, reason or DisconnectReason(DisconnectReason.EOF)
            )

    @property
    def peer(self) -> str:
        return self._peer_label

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"_InProcEndpoint(peer={self._peer_label!r}, {state})"


class _InProcListener(Listener):
    def __init__(self, transport: "InProcTransport", address: str) -> None:
        self._transport = transport
        self._address = address

    def close(self) -> None:
        self._transport._listeners.pop(self._address, None)

    @property
    def address(self) -> str:
        return self._address


class InProcTransport(Transport):
    """Loopback transport with named listening addresses.

    Example:
        >>> t = InProcTransport()
        >>> got = []
        >>> _ = t.listen("ric", TransportEvents(on_message=lambda e, d: got.append(d)))
        >>> conn = t.connect("ric", TransportEvents())
        >>> conn.send(b"ping")
        >>> got
        [b'ping']
    """

    name = "inproc"

    def __init__(self) -> None:
        self._listeners: Dict[str, TransportEvents] = {}
        self._queue: Deque[Callable[[], None]] = deque()
        self._dispatching = False

    def listen(self, address: str, events: TransportEvents) -> Listener:
        if address in self._listeners:
            raise OSError(f"address already in use: {address!r}")
        self._listeners[address] = events
        return _InProcListener(self, address)

    def connect(self, address: str, events: TransportEvents) -> Endpoint:
        server_events = self._listeners.get(address)
        if server_events is None:
            raise ConnectionError(f"nothing listening on {address!r}")
        client = _InProcEndpoint(self, peer_label=address, events=events)
        server = _InProcEndpoint(self, peer_label=f"{address}#client", events=server_events)
        client._attach(server)
        server._attach(client)
        self._enqueue(lambda: server_events.on_connected(server))
        self._enqueue(lambda: events.on_connected(client))
        self._drain()
        return client

    # -- dispatch ----------------------------------------------------

    def _enqueue(self, thunk: Callable[[], None]) -> None:
        self._queue.append(thunk)
        self._drain()

    def _drain(self) -> None:
        if self._dispatching:
            return
        self._dispatching = True
        try:
            while self._queue:
                self._queue.popleft()()
        finally:
            self._dispatching = False
