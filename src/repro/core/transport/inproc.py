"""In-process loopback transport.

Connects agents and controllers living in the same interpreter with
zero I/O, preserving message boundaries and the event-callback flow of
the TCP transport.  Used by the discrete-event experiments (where
simulated time must not depend on socket scheduling) and by most tests.

Delivery model (default, ``shards=0``): ``send`` enqueues the message
on a per-transport dispatch queue which is drained immediately unless
a dispatch is already running.  This keeps callback nesting flat — a
request/response ping-pong of any depth uses O(1) stack — while
remaining fully synchronous and deterministic.

Sharded mode (``shards>=2``) mirrors the TCP transport's multi-loop
ingest: each shard owns a queue and a worker thread, connections are
assigned to shards round-robin at connect time (both ends of a pair
share a shard, preserving per-connection ordering), and a worker
drains everything queued per wakeup and delivers consecutive frames
for the same endpoint as one ``on_messages`` batch.  ``shards=1`` is
an alias for the synchronous single-loop default so the two transports
expose the same knob with the same "1 == today's behaviour" contract.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.overload import OverloadConfig, QueuePressure, TrafficClass
from repro.metrics.counters import discard_counter, get_counter
from repro.core.transport.base import (
    DisconnectReason,
    Endpoint,
    Listener,
    Transport,
    TransportEvents,
)
from repro.metrics.trace import TRACER as _TRACER


def _freeze(data) -> bytes:
    """Pin a send payload to immutable ``bytes`` for the dispatch queue.

    The queue (and the shard workers in sharded mode) hold the payload
    after ``send`` returns, so mutable buffer-protocol inputs
    (``bytearray``, writable ``memoryview``) must be copied — exactly
    once, counted in ``bytes.copied``.  Immutable ``bytes`` pass
    through untouched: the zero-copy fast path.
    """
    if type(data) is bytes:
        return data
    if isinstance(data, (bytes, bytearray, memoryview)):
        get_counter("bytes.copied").incr()
        return bytes(data)  # repro-lint: disable=RL007 — queue outlives the caller's buffer
    raise TypeError(f"send expects a bytes-like object, got {type(data).__name__}")


class _InProcEndpoint(Endpoint):
    """One side of an in-process connection pair."""

    def __init__(self, transport: "InProcTransport", peer_label: str, events: TransportEvents) -> None:
        self._transport = transport
        self._peer_label = peer_label
        self._events = events
        self._other: Optional["_InProcEndpoint"] = None
        self._closed = False
        #: index of the dispatch shard this connection is pinned to
        #: (0 in the synchronous single-loop mode).
        self.shard = 0
        #: per-connection label for drop accounting (assigned at
        #: connect time; both ends of a pair share it).
        self.conn_label = peer_label
        #: optional hook: bytes sent through this endpoint, for
        #: signaling-rate accounting (Fig. 7b) without packet capture.
        self.bytes_sent = 0
        self.messages_sent = 0

    def _attach(self, other: "_InProcEndpoint") -> None:
        self._other = other

    def send(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionError("endpoint closed")
        if self._other is None or self._other._closed:
            raise ConnectionError("peer closed")
        payload = _freeze(data)
        self.bytes_sent += len(payload)
        self.messages_sent += 1
        other = self._other
        if self._transport._sharded:
            self._transport._post_messages(self.shard, other, [payload])
            return
        tracer = _TRACER
        if tracer.enabled:
            # Time only the hand-off (the transport's own cost); the
            # drain below runs the receiver's decode/dispatch, which
            # record their own spans.
            start = time.perf_counter()
            self._transport._queue.append(
                lambda: other._events.on_message(other, payload)
            )
            self._transport._dispatch_pressure.note_depth(len(self._transport._queue))
            tracer.record("send", start, tracer.adopt_corr(), node=self._peer_label)
            self._transport._drain()
            return
        self._transport._enqueue(lambda: other._events.on_message(other, payload))

    def send_many(self, batch: Sequence[bytes]) -> None:
        if not batch:
            return
        if self._closed:
            raise ConnectionError("endpoint closed")
        if self._other is None or self._other._closed:
            raise ConnectionError("peer closed")
        frozen = []
        for data in batch:
            payload = _freeze(data)
            self.bytes_sent += len(payload)
            frozen.append(payload)
        self.messages_sent += len(frozen)
        other = self._other
        if self._transport._sharded:
            self._transport._post_messages(self.shard, other, frozen)
            return

        def deliver() -> None:
            other._events.deliver(other, frozen)

        # One queue entry for the batch mirrors the TCP transport's
        # single coalesced write; a receiver without the batch hook
        # still sees one message at a time.
        tracer = _TRACER
        if tracer.enabled:
            start = time.perf_counter()
            self._transport._queue.append(deliver)
            self._transport._dispatch_pressure.note_depth(len(self._transport._queue))
            tracer.record("send", start, tracer.adopt_corr(), node=self._peer_label)
            self._transport._drain()
            return
        self._transport._enqueue(deliver)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        discard_counter(f"overload.conn.{self.conn_label}.drops")
        other = self._other
        if other is not None and not other._closed:
            # The peer observes an orderly EOF, exactly like TCP.
            reason = DisconnectReason(DisconnectReason.EOF)
            if self._transport._sharded:
                self._transport._post_control(
                    self.shard, lambda: other._signal_disconnect(reason)
                )
            else:
                self._transport._enqueue(lambda: other._signal_disconnect(reason))

    def _signal_disconnect(self, reason: Optional[DisconnectReason] = None) -> None:
        if not self._closed:
            self._closed = True
            # Conn-scoped drop accounting dies with the link (mirrors
            # the TCP close path): per-class aggregates keep the total.
            discard_counter(f"overload.conn.{self.conn_label}.drops")
            self._events.on_disconnected(
                self, reason or DisconnectReason(DisconnectReason.EOF)
            )

    @property
    def peer(self) -> str:
        return self._peer_label

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"_InProcEndpoint(peer={self._peer_label!r}, {state})"


class _InProcListener(Listener):
    def __init__(self, transport: "InProcTransport", address: str) -> None:
        self._transport = transport
        self._address = address

    def close(self) -> None:
        self._transport._listeners.pop(self._address, None)

    @property
    def address(self) -> str:
        return self._address


#: queue item: (target endpoint, frames) for traffic or (None, thunk)
#: for control events (connects/disconnects), which must stay ordered
#: with the traffic around them.
_ShardItem = Tuple[Optional[_InProcEndpoint], object]


class _InProcShard:
    """One dispatch loop of the sharded in-process transport."""

    def __init__(self, transport: "InProcTransport", index: int) -> None:
        self.index = index
        self.queue: Deque[_ShardItem] = deque()
        self.cond = threading.Condition()
        self.running = True
        self.busy = False
        #: True only while the worker is parked in ``cond.wait`` (set
        #: under the lock just before checking the queue).  Senders
        #: append lock-free and only take the lock to wake an idle
        #: worker, so the steady-state send path costs one deque
        #: append instead of a full Condition cycle.
        self.idle = False
        self.rx_messages = 0
        self.connections = 0
        #: depth/high-watermark accounting, and — when the transport
        #: carries an :class:`OverloadConfig` — the bounded shed/
        #: degrade policy (DESIGN.md §13).
        self.pressure = QueuePressure(
            f"inproc.shard.{index}", transport._overload, transport._classify
        )
        self.thread = threading.Thread(
            target=transport._shard_run,
            args=(self,),
            name=f"inproc-shard-{index}",
            daemon=True,
        )
        self.thread.start()


class InProcTransport(Transport):
    """Loopback transport with named listening addresses.

    Example:
        >>> t = InProcTransport()
        >>> got = []
        >>> _ = t.listen("ric", TransportEvents(on_message=lambda e, d: got.append(d)))
        >>> conn = t.connect("ric", TransportEvents())
        >>> conn.send(b"ping")
        >>> got
        [b'ping']
    """

    name = "inproc"

    def __init__(
        self,
        shards: int = 0,
        overload: Optional[OverloadConfig] = None,
        classify: Optional[Callable[[bytes], TrafficClass]] = None,
    ) -> None:
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        if overload is not None and classify is None:
            raise ValueError("overload policy requires a frame classifier")
        self._listeners: Dict[str, TransportEvents] = {}
        self._queue: Deque[Callable[[], None]] = deque()
        self._dispatching = False
        #: bounded-queue policy; None keeps today's unbounded behaviour
        #: (depth gauges stay on either way).
        self._overload = overload
        self._classify = classify
        #: depth accounting for the synchronous dispatch queue — the
        #: deepest it gets is the nesting of request/response ping-pong
        #: plus enqueued connect/disconnect thunks.
        self._dispatch_pressure = QueuePressure("inproc.dispatch")
        # shards in {0, 1}: the synchronous deterministic single loop
        # (today's behaviour); shards >= 2: threaded multi-loop ingest.
        self._sharded = shards >= 2
        self._shards: List[_InProcShard] = (
            [_InProcShard(self, index) for index in range(shards)] if self._sharded else []
        )
        self._rr = itertools.count()
        self._conn_seq = itertools.count(1)
        self._stopped = False

    @property
    def shards(self) -> int:
        return len(self._shards) if self._sharded else 1

    def listen(self, address: str, events: TransportEvents) -> Listener:
        if address in self._listeners:
            raise OSError(f"address already in use: {address!r}")
        self._listeners[address] = events
        return _InProcListener(self, address)

    def connect(self, address: str, events: TransportEvents) -> Endpoint:
        server_events = self._listeners.get(address)
        if server_events is None:
            raise ConnectionError(f"nothing listening on {address!r}")
        client = _InProcEndpoint(self, peer_label=address, events=events)
        server = _InProcEndpoint(self, peer_label=f"{address}#client", events=server_events)
        client._attach(server)
        server._attach(client)
        conn_label = f"{address}:{next(self._conn_seq)}"
        client.conn_label = conn_label
        server.conn_label = conn_label
        if self._sharded:
            # Both ends share one shard: every event of the connection
            # flows through one FIFO, preserving per-link ordering.
            shard = next(self._rr) % len(self._shards)
            client.shard = shard
            server.shard = shard
            self._shards[shard].connections += 1
            self._post_control(shard, lambda: server_events.on_connected(server))
            self._post_control(shard, lambda: events.on_connected(client))
            return client
        self._enqueue(lambda: server_events.on_connected(server))
        self._enqueue(lambda: events.on_connected(client))
        self._drain()
        return client

    # -- synchronous dispatch (shards in {0, 1}) ---------------------

    def _enqueue(self, thunk: Callable[[], None]) -> None:
        self._queue.append(thunk)
        self._dispatch_pressure.note_depth(len(self._queue))
        self._drain()

    def _drain(self) -> None:
        if self._dispatching:
            return
        self._dispatching = True
        try:
            while self._queue:
                self._queue.popleft()()
        finally:
            self._dispatching = False
            self._dispatch_pressure.note_depth(0)

    # -- sharded dispatch (shards >= 2) ------------------------------

    def _post_messages(self, shard_index: int, target: _InProcEndpoint, frames: List[bytes]) -> None:
        shard = self._shards[shard_index]
        tracer = _TRACER
        start = time.perf_counter() if tracer.enabled else 0.0
        pressure = shard.pressure
        if pressure.bounded:
            # Shed/degrade policy over the tracked frame depth: under
            # the high watermark this is one comparison; under
            # pressure indications are shed oldest-first and control
            # frames always pass (DESIGN.md §13).
            frames = pressure.admit(frames, pressure.frame_depth, target.conn_label)
            if not frames:
                if start:
                    tracer.record("send", start, tracer.adopt_corr())
                return
        # deque.append is atomic under the GIL, so the hot path is
        # lock-free; the Condition is only taken to wake a worker that
        # declared itself idle (it re-checks the queue under the lock
        # before waiting, so a missed-stale ``idle`` read cannot lose a
        # wakeup — the worker sees the appended item instead).
        shard.queue.append((target, frames))
        if pressure.bounded:
            pressure.add_frames(len(frames))
        else:
            pressure.note_depth(len(shard.queue))
        if shard.idle:
            with shard.cond:
                shard.cond.notify()
        if start:
            tracer.record("send", start, tracer.adopt_corr())

    def _post_control(self, shard_index: int, thunk: Callable[[], None]) -> None:
        shard = self._shards[shard_index]
        shard.queue.append((None, thunk))
        with shard.cond:
            shard.cond.notify()

    #: empty drains tolerated (yielding the GIL each time) before the
    #: worker parks on its Condition.  During a burst the sender refills
    #: the queue within a few yields, so the steady state never pays a
    #: lock/notify cycle; a genuinely idle shard parks and costs no CPU.
    _IDLE_SPINS = 32

    def _shard_run(self, shard: _InProcShard) -> None:
        queue = shard.queue
        pop = queue.popleft
        spins = 0
        while True:
            # ``busy`` is raised before draining so quiesce() cannot
            # observe "queue empty, worker idle" while frames sit in
            # the worker's local batch.
            shard.busy = True
            items: List[_ShardItem] = []
            try:
                while True:
                    items.append(pop())
            except IndexError:
                pass
            if items:
                spins = 0
                try:
                    self._dispatch_items(shard, items)
                finally:
                    pressure = shard.pressure
                    if pressure.bounded:
                        # Frames leave the tracked depth only after
                        # delivery: a slow consumer keeps the depth
                        # high, which is what arriving bursts must
                        # observe for backpressure to mean anything.
                        drained = sum(
                            len(payload)
                            for target, payload in items
                            if target is not None
                        )
                        if drained:
                            pressure.add_frames(-drained)
                    else:
                        pressure.note_depth(len(queue))
                continue
            shard.busy = False
            if spins < self._IDLE_SPINS and shard.running:
                spins += 1
                time.sleep(0)  # yield: let senders refill the queue
                continue
            spins = 0
            with shard.cond:
                shard.cond.notify_all()
                shard.idle = True
                if not queue:
                    if not shard.running:
                        shard.idle = False
                        return
                    shard.cond.wait(timeout=0.1)
                shard.idle = False

    def _dispatch_items(self, shard: _InProcShard, items: List[_ShardItem]) -> None:
        index = 0
        total = len(items)
        while index < total:
            target, payload = items[index]
            if target is None:
                payload()  # control thunk
                index += 1
                continue
            # Coalesce consecutive frames for the same endpoint into
            # one batch; a control event in between breaks the run, so
            # traffic never overtakes a connect/disconnect signal.
            batch: List[bytes] = list(payload)
            index += 1
            while index < total and items[index][0] is target:
                batch.extend(items[index][1])
                index += 1
            if target._closed:
                continue
            shard.rx_messages += len(batch)
            target._events.deliver(target, batch)

    def quiesce(self, timeout: float = 5.0) -> bool:
        """Wait until every shard queue is drained and idle.

        The scale harness and tests use this as the inproc equivalent
        of "all in-flight frames delivered".  Returns False on timeout.
        Synchronous mode is always quiescent (dispatch is inline).
        """
        if not self._sharded:
            return True
        deadline = time.monotonic() + timeout
        for shard in self._shards:
            with shard.cond:
                while shard.queue or shard.busy:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    shard.cond.wait(timeout=min(remaining, 0.05))
        return True

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop shard workers (idempotent; no-op in synchronous mode).

        Loud teardown: a worker that fails to join within ``timeout_s``
        is counted (``transport.stop.stuck``) and raised; frames left
        in a stopped shard's queue are counted in
        ``transport.stop.undrained`` and raise under ``REPRO_ANALYSIS=1``
        (the flaky-teardown source this sweep fixes — previously both
        conditions hid behind the daemon flag until interpreter exit).
        """
        if self._stopped or not self._sharded:
            self._stopped = True
            return
        self._stopped = True
        for shard in self._shards:
            with shard.cond:
                shard.running = False
                shard.cond.notify_all()
        stuck: List[str] = []
        undrained = 0
        for shard in self._shards:
            shard.thread.join(timeout=timeout_s)
            if shard.thread.is_alive():
                get_counter("transport.stop.stuck").incr()
                stuck.append(shard.thread.name)
                continue
            # Worker exited: its queue is stable, so any frames still
            # in it were posted after the drain-on-exit and are lost.
            while True:
                try:
                    target, payload = shard.queue.popleft()
                except IndexError:
                    break
                if target is not None:
                    undrained += len(payload)
            shard.pressure.discard_gauges()
        if undrained:
            get_counter("transport.stop.undrained").incr(undrained)
        if stuck:
            raise RuntimeError(
                f"inproc transport stop: shard thread(s) stuck after "
                f"{timeout_s}s: {', '.join(stuck)}"
            )
        if undrained and os.environ.get("REPRO_ANALYSIS") == "1":
            raise RuntimeError(
                f"inproc transport stop: {undrained} ingest frame(s) left "
                f"undrained at teardown"
            )

    def start(self) -> None:
        """Shard workers start at construction; kept for API symmetry."""

    def shard_stats(self) -> List[dict]:
        """Per-shard load/traffic snapshot for the scale harness."""
        if not self._sharded:
            return [{"shard": 0, "connections": 0, "rx_messages": 0}]
        return [
            {
                "shard": shard.index,
                "connections": shard.connections,
                "rx_messages": shard.rx_messages,
            }
            for shard in self._shards
        ]
