"""Deterministic fault-injection transport wrapper.

Real SD-RAN testbeds lose E2 links constantly — SCTP associations flap,
middleboxes corrupt frames, peers vanish silently.  The reproduction's
lifecycle-resilience layer (agent reconnect, server-side subscription
resync, liveness probing) is tested against exactly that weather, and
:class:`FaultyTransport` is the weather machine: it decorates any
:class:`~repro.core.transport.base.Transport` and injects frame drops,
duplication, reordering, corruption, truncation, delayed delivery, and
forced link kills on a seeded, reproducible schedule.

Faults are applied on the *send* path, before the inner transport sees
the bytes, so the same chaos plan works over the in-process loopback
and over real TCP sockets.  All decisions come from one
``random.Random(seed)``: a fixed seed over a single-threaded transport
(inproc, or TCP driven by ``step``) replays bit-identically, which is
what lets the chaos suite assert exact reconnect counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.transport.base import (
    DisconnectReason,
    Endpoint,
    Listener,
    Transport,
    TransportEvents,
)
from repro.metrics.counters import get_counter


@dataclass
class FaultSpec:
    """Fault schedule; all rates are per-message probabilities.

    Attributes are read at every send, so a test may mutate the spec
    mid-run (e.g. flip ``drop_rate`` to 1.0 to simulate a silent death
    that TCP never reports).
    """

    drop_rate: float = 0.0        # frame silently discarded
    dup_rate: float = 0.0         # frame delivered twice
    reorder_rate: float = 0.0     # frame held back, overtaken by the next
    corrupt_rate: float = 0.0     # one byte flipped
    truncate_rate: float = 0.0    # frame cut to a random prefix
    delay_rate: float = 0.0       # frame parked until flush_delayed()
    #: force-kill the link after every N messages offered to send
    #: (0 disables).  The killing message is delivered first, then the
    #: link dies — both sides observe a disconnect, like a mid-stream
    #: network cut.
    disconnect_every: int = 0

    def validate(self) -> None:
        for name in ("drop_rate", "dup_rate", "reorder_rate",
                     "corrupt_rate", "truncate_rate", "delay_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of [0,1]: {value}")
        if self.disconnect_every < 0:
            raise ValueError(f"disconnect_every must be >= 0: {self.disconnect_every}")


class _FaultyEndpoint(Endpoint):
    """Send-side fault applicator wrapping one inner endpoint."""

    def __init__(
        self,
        transport: "FaultyTransport",
        inner: Endpoint,
        events: TransportEvents,
    ) -> None:
        self._transport = transport
        self._inner = inner
        self._events = events
        self._killed = False
        self._held: Optional[bytes] = None      # reorder buffer (1 deep)
        self._delayed: List[bytes] = []
        self.messages_offered = 0

    # -- Endpoint ----------------------------------------------------

    def send(self, data: bytes) -> None:
        if self.closed:
            raise ConnectionError("endpoint closed")
        spec = self._transport.spec
        rng = self._transport.rng
        self.messages_offered += 1
        kill_after = (
            spec.disconnect_every > 0
            and self.messages_offered % spec.disconnect_every == 0
        )
        self._apply(bytes(data), spec, rng)
        if kill_after:
            self._kill("disconnect_every schedule")

    def send_many(self, batch: Sequence[bytes]) -> None:
        # Per-message fault decisions trump write coalescing here; the
        # chaos harness is about failure envelopes, not throughput.
        for data in batch:
            if self.closed:
                raise ConnectionError("endpoint closed")
            self.send(data)

    def _apply(self, data: bytes, spec: FaultSpec, rng: random.Random) -> None:
        if spec.drop_rate and rng.random() < spec.drop_rate:
            get_counter("faulty.drop").incr()
            return
        if spec.corrupt_rate and data and rng.random() < spec.corrupt_rate:
            get_counter("faulty.corrupt").incr()
            position = rng.randrange(len(data))
            corrupted = bytearray(data)
            corrupted[position] ^= 0xFF
            data = bytes(corrupted)
        if spec.truncate_rate and data and rng.random() < spec.truncate_rate:
            get_counter("faulty.truncate").incr()
            data = data[: rng.randrange(len(data))]
        if spec.delay_rate and rng.random() < spec.delay_rate:
            get_counter("faulty.delay").incr()
            self._delayed.append(data)
            return
        if spec.reorder_rate and self._held is None and rng.random() < spec.reorder_rate:
            get_counter("faulty.reorder").incr()
            self._held = data
            return
        self._deliver(data)
        if spec.dup_rate and rng.random() < spec.dup_rate:
            get_counter("faulty.dup").incr()
            self._deliver(data)
        if self._held is not None:
            held, self._held = self._held, None
            self._deliver(held)

    def _deliver(self, data: bytes) -> None:
        try:
            self._inner.send(data)
        except (ConnectionError, OSError):
            # The inner link died under us (possibly from an earlier
            # injected kill); the disconnect callback carries the news.
            pass

    def flush_delayed(self) -> int:
        """Release every parked frame in order; returns the count.

        Also releases a frame still held back by the reorder buffer —
        at end of run there is no later frame to overtake it.
        """
        released = 0
        while self._delayed and not self.closed:
            self._deliver(self._delayed.pop(0))
            released += 1
        if self._held is not None and not self.closed:
            held, self._held = self._held, None
            self._deliver(held)
            released += 1
        return released

    def _kill(self, detail: str) -> None:
        """Cut the link: both sides observe a disconnect."""
        if self._killed:
            return
        self._killed = True
        self._delayed.clear()
        self._held = None
        get_counter("faulty.kill").incr()
        self._transport.kills += 1
        self._transport._wrappers.pop(id(self._inner), None)
        reason = DisconnectReason(DisconnectReason.INJECTED, detail)
        if not self._inner.closed:
            self._inner.close()        # peer sees the cut via the inner transport
        self._events.on_disconnected(self, reason)

    def kill(self, detail: str = "manual kill") -> None:
        """Test hook: cut this link now."""
        self._kill(detail)

    def close(self) -> None:
        self._killed = True
        self._delayed.clear()
        self._held = None
        self._transport._wrappers.pop(id(self._inner), None)
        if not self._inner.closed:
            self._inner.close()

    @property
    def peer(self) -> str:
        return self._inner.peer

    @property
    def shard(self) -> int:
        """Shard index of the wrapped endpoint (0 for unsharded)."""
        return getattr(self._inner, "shard", 0)

    @property
    def closed(self) -> bool:
        return self._killed or self._inner.closed

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"_FaultyEndpoint(peer={self.peer!r}, {state})"


class FaultyTransport(Transport):
    """Decorator injecting seeded faults into any inner transport.

    Example:
        >>> from repro.core.transport.inproc import InProcTransport
        >>> chaos = FaultyTransport(InProcTransport(), FaultSpec(drop_rate=1.0), seed=1)
        >>> got = []
        >>> _ = chaos.listen("ric", TransportEvents(on_message=lambda e, d: got.append(d)))
        >>> chaos.connect("ric", TransportEvents()).send(b"doomed")
        >>> got
        []
    """

    name = "faulty"

    def __init__(
        self,
        inner: Transport,
        spec: Optional[FaultSpec] = None,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.spec = spec or FaultSpec()
        self.spec.validate()
        self.rng = random.Random(seed)
        self.kills = 0
        self._wrappers: Dict[int, _FaultyEndpoint] = {}
        self.name = f"faulty+{inner.name}" if inner.name else "faulty"

    # -- Transport ---------------------------------------------------

    def listen(self, address: str, events: TransportEvents) -> Listener:
        return self.inner.listen(address, self._wrap_events(events))

    def connect(self, address: str, events: TransportEvents) -> Endpoint:
        wrapped = self._wrap_events(events)
        inner_endpoint = self.inner.connect(address, wrapped)
        return self._wrapper(inner_endpoint, events)

    # -- plumbing ----------------------------------------------------

    def _wrapper(self, inner: Endpoint, events: TransportEvents) -> _FaultyEndpoint:
        wrapper = self._wrappers.get(id(inner))
        if wrapper is None:
            wrapper = _FaultyEndpoint(self, inner, events)
            self._wrappers[id(inner)] = wrapper
        return wrapper

    def _wrap_events(self, user: TransportEvents) -> TransportEvents:
        """Translate inner-endpoint callbacks to wrapper callbacks.

        Identity matters: the server keys connection state by endpoint
        identity, so every callback must surface the *same* wrapper
        object for the same inner endpoint.
        """

        def on_connected(inner: Endpoint) -> None:
            user.on_connected(self._wrapper(inner, user))

        def on_message(inner: Endpoint, data: bytes) -> None:
            user.on_message(self._wrapper(inner, user), data)

        def on_disconnected(inner: Endpoint, reason=None) -> None:
            wrapper = self._wrappers.pop(id(inner), None)
            if wrapper is None:
                return
            if wrapper._killed:
                # Local side already saw the injected kill callback.
                return
            wrapper._killed = True
            user.on_disconnected(wrapper, reason)

        wrapped = TransportEvents(
            on_connected=on_connected,
            on_message=on_message,
            on_disconnected=on_disconnected,
        )
        if user.on_messages is not None:
            # Batch deliveries from a sharded inner transport surface
            # the same wrapper endpoint and stay batched; faults were
            # already applied per message on the send side.
            wrapped.on_messages = lambda inner, batch: user.on_messages(
                self._wrapper(inner, user), batch
            )
        return wrapped

    def endpoints(self) -> List[_FaultyEndpoint]:
        """Live wrappers (diagnostics / targeted kills in tests)."""
        return list(self._wrappers.values())

    def flush_delayed(self) -> int:
        """Release parked frames on every link; returns total count."""
        return sum(endpoint.flush_delayed() for endpoint in self.endpoints())

    # Pass-throughs so chaos runs can drive TCP inner transports.

    def start(self) -> None:
        start = getattr(self.inner, "start", None)
        if start is not None:
            start()

    def stop(self) -> None:
        stop = getattr(self.inner, "stop", None)
        if stop is not None:
            stop()

    def step(self, timeout: float = 0.0) -> int:
        step = getattr(self.inner, "step", None)
        return step(timeout) if step is not None else 0

    def quiesce(self, timeout: float = 5.0) -> bool:
        quiesce = getattr(self.inner, "quiesce", None)
        return quiesce(timeout) if quiesce is not None else True

    def shard_stats(self) -> List[dict]:
        stats = getattr(self.inner, "shard_stats", None)
        return stats() if stats is not None else []
