"""Transport interface shared by TCP and in-process implementations."""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional, Sequence


@dataclass(frozen=True)
class DisconnectReason:
    """Why a connection ended, as observed by the local side.

    Transports pass one of these to ``on_disconnected`` so the layer
    above can tell a deliberate local teardown from a peer reset or an
    injected fault — the distinction drives the agent's reconnect
    state machine (reconnect on network death, never on local close).
    """

    code: str
    detail: str = ""

    #: codes every transport maps onto.
    EOF = "eof"                  # orderly close by the peer
    RESET = "econnreset"         # peer reset the connection
    ERROR = "error"              # other socket/OS error
    LOCAL = "local"              # local close()/shutdown
    PROTOCOL = "protocol"        # framing/protocol violation
    INJECTED = "injected"        # fault-injection kill (FaultyTransport)
    KEEPALIVE = "keepalive"      # liveness probe declared the peer dead
    CONNECT_TIMEOUT = "connect_timeout"  # bounded connect() gave up

    def __str__(self) -> str:
        return f"{self.code}({self.detail})" if self.detail else self.code


class ConnectTimeout(ConnectionError):
    """A bounded ``Transport.connect`` gave up on a silent peer.

    Distinguished from a refused connection so the agent's reconnect
    path can count black-holed addresses separately; carries the
    matching :class:`DisconnectReason` for callers that propagate one.
    """

    def __init__(self, message: str, reason: Optional[DisconnectReason] = None) -> None:
        super().__init__(message)
        self.reason = reason or DisconnectReason(
            DisconnectReason.CONNECT_TIMEOUT, message
        )


def _adapt_disconnect(callback: Optional[Callable]) -> Callable:
    """Normalize an ``on_disconnected`` callback to two arguments.

    Historic callbacks take ``(endpoint)``; resilience-aware ones take
    ``(endpoint, reason)``.  Both keep working: the adapter inspects
    the signature once at registration time, never per event.
    """
    if callback is None:
        return lambda endpoint, reason=None: None
    try:
        inspect.signature(callback).bind(None, None)
    except TypeError:
        return lambda endpoint, reason=None: callback(endpoint)
    except ValueError:  # builtins without introspectable signatures
        pass
    return callback


class Endpoint(ABC):
    """One side of an established connection.

    ``send`` preserves message boundaries (SCTP semantics): the peer's
    ``on_message`` receives exactly the bytes of one ``send``.
    """

    @abstractmethod
    def send(self, data: bytes) -> None:
        """Queue one message for delivery; raises if closed."""

    def send_many(self, batch: Sequence[bytes]) -> None:
        """Queue several messages; boundaries are preserved per item.

        Default is a ``send`` loop; stream transports override it to
        coalesce the batch into one write so a burst of messages pays
        one syscall instead of one per message.
        """
        for data in batch:
            self.send(data)

    @abstractmethod
    def close(self) -> None:
        """Tear the connection down; the peer sees ``on_disconnected``."""

    @property
    @abstractmethod
    def peer(self) -> str:
        """Human-readable peer address (diagnostics only)."""

    @property
    @abstractmethod
    def closed(self) -> bool:
        """True once the connection is no longer usable."""


class TransportEvents:
    """Callback bundle a user passes to ``listen``/``connect``.

    All callbacks are optional; unset ones are ignored.  Callbacks run
    on the transport's dispatch context (the caller of ``step`` for
    in-process, the owning shard's I/O thread for TCP), mirroring the
    single-threaded event-driven design of the SDK (§4.4).

    ``on_messages`` is the receive-side batch hook: a transport that
    drained several complete frames in one wakeup hands them over as
    one call, letting the receiver amortize per-frame overhead (lock
    acquisition, CPU accounting, trace spans).  Receivers that do not
    set it get the classic per-frame ``on_message`` stream; transports
    route through :meth:`deliver` so both kinds keep working.
    """

    def __init__(
        self,
        on_connected: Optional[Callable[[Endpoint], None]] = None,
        on_message: Optional[Callable[[Endpoint, bytes], None]] = None,
        on_disconnected: Optional[Callable] = None,
        on_messages: Optional[Callable[[Endpoint, Sequence[bytes]], None]] = None,
    ) -> None:
        self.on_connected = on_connected or (lambda endpoint: None)
        self.on_message = on_message or (lambda endpoint, data: None)
        self.on_messages = on_messages
        # ``on_disconnected`` receives ``(endpoint, reason)``; one-arg
        # callbacks are adapted so pre-resilience code keeps working.
        self.on_disconnected = _adapt_disconnect(on_disconnected)

    def deliver(self, endpoint: Endpoint, batch: Sequence[bytes]) -> None:
        """Hand a drained batch to the receiver, batched if supported.

        Per-connection ordering is preserved either way: the batch is
        in arrival order and ``on_message`` fallback iterates it.
        """
        if not batch:
            return
        if self.on_messages is not None:
            self.on_messages(endpoint, batch)
            return
        for data in batch:
            self.on_message(endpoint, data)


class Listener(ABC):
    """Handle for a listening address."""

    @abstractmethod
    def close(self) -> None:
        """Stop accepting new connections (existing ones survive)."""

    @property
    @abstractmethod
    def address(self) -> str:
        """The bound address, e.g. ``"127.0.0.1:36421"``."""


class Transport(ABC):
    """Factory for listeners and outgoing connections."""

    #: registry-style name, e.g. ``"tcp"`` or ``"inproc"``.
    name: str = ""

    @abstractmethod
    def listen(self, address: str, events: TransportEvents) -> Listener:
        """Accept connections on ``address``.

        ``address`` format is transport-specific (``host:port`` for
        TCP, any opaque string for in-process).
        """

    @abstractmethod
    def connect(self, address: str, events: TransportEvents) -> Endpoint:
        """Open a connection to a listening ``address``.

        Raises ``ConnectionError`` if nothing listens there.
        """
