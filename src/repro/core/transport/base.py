"""Transport interface shared by TCP and in-process implementations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence


class Endpoint(ABC):
    """One side of an established connection.

    ``send`` preserves message boundaries (SCTP semantics): the peer's
    ``on_message`` receives exactly the bytes of one ``send``.
    """

    @abstractmethod
    def send(self, data: bytes) -> None:
        """Queue one message for delivery; raises if closed."""

    def send_many(self, batch: Sequence[bytes]) -> None:
        """Queue several messages; boundaries are preserved per item.

        Default is a ``send`` loop; stream transports override it to
        coalesce the batch into one write so a burst of messages pays
        one syscall instead of one per message.
        """
        for data in batch:
            self.send(data)

    @abstractmethod
    def close(self) -> None:
        """Tear the connection down; the peer sees ``on_disconnected``."""

    @property
    @abstractmethod
    def peer(self) -> str:
        """Human-readable peer address (diagnostics only)."""

    @property
    @abstractmethod
    def closed(self) -> bool:
        """True once the connection is no longer usable."""


class TransportEvents:
    """Callback bundle a user passes to ``listen``/``connect``.

    All callbacks are optional; unset ones are ignored.  Callbacks run
    on the transport's dispatch context (the caller of ``step`` for
    in-process, the I/O thread for TCP), mirroring the single-threaded
    event-driven design of the SDK (§4.4).
    """

    def __init__(
        self,
        on_connected: Optional[Callable[[Endpoint], None]] = None,
        on_message: Optional[Callable[[Endpoint, bytes], None]] = None,
        on_disconnected: Optional[Callable[[Endpoint], None]] = None,
    ) -> None:
        self.on_connected = on_connected or (lambda endpoint: None)
        self.on_message = on_message or (lambda endpoint, data: None)
        self.on_disconnected = on_disconnected or (lambda endpoint: None)


class Listener(ABC):
    """Handle for a listening address."""

    @abstractmethod
    def close(self) -> None:
        """Stop accepting new connections (existing ones survive)."""

    @property
    @abstractmethod
    def address(self) -> str:
        """The bound address, e.g. ``"127.0.0.1:36421"``."""


class Transport(ABC):
    """Factory for listeners and outgoing connections."""

    #: registry-style name, e.g. ``"tcp"`` or ``"inproc"``.
    name: str = ""

    @abstractmethod
    def listen(self, address: str, events: TransportEvents) -> Listener:
        """Accept connections on ``address``.

        ``address`` format is transport-specific (``host:port`` for
        TCP, any opaque string for in-process).
        """

    @abstractmethod
    def connect(self, address: str, events: TransportEvents) -> Endpoint:
        """Open a connection to a listening ``address``.

        Raises ``ConnectionError`` if nothing listens there.
        """
