"""Length-prefixed message framing over a byte stream.

TCP is a byte stream; E2AP (via SCTP) is message-oriented.  The framer
restores message boundaries with a 4-byte big-endian length prefix.
A maximum message size guards against corrupt prefixes taking the
receiver down.
"""

from __future__ import annotations

import struct
from typing import Iterator, List

_LEN = struct.Struct(">I")

#: Hard cap on one E2AP message; generous versus the paper's 1500 B
#: MTU experiments yet small enough to catch stream corruption.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class FramingError(Exception):
    """Raised when the byte stream violates the framing protocol."""


def frame_message(payload: bytes) -> bytes:
    """Prefix ``payload`` with its length."""
    if len(payload) > MAX_MESSAGE_BYTES:
        raise FramingError(f"message too large: {len(payload)} B")
    return _LEN.pack(len(payload)) + payload


class Framer:
    """Incremental deframer: feed stream chunks, get whole messages.

    Example:
        >>> f = Framer()
        >>> chunks = f.feed(frame_message(b"hi") + frame_message(b"yo"))
        >>> chunks
        [b'hi', b'yo']
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> List[bytes]:
        """Absorb ``chunk``; return every now-complete message."""
        self._buffer.extend(chunk)
        messages: List[bytes] = []
        while True:
            if len(self._buffer) < _LEN.size:
                return messages
            (length,) = _LEN.unpack_from(self._buffer, 0)
            if length > MAX_MESSAGE_BYTES:
                raise FramingError(f"frame length {length} exceeds cap")
            end = _LEN.size + length
            if len(self._buffer) < end:
                return messages
            messages.append(bytes(self._buffer[_LEN.size:end]))
            del self._buffer[:end]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)
