"""Length-prefixed message framing over a byte stream.

TCP is a byte stream; E2AP (via SCTP) is message-oriented.  The framer
restores message boundaries with a 4-byte big-endian length prefix.
A maximum message size guards against corrupt prefixes taking the
receiver down.

The deframer is cursor-based: complete frames are sliced out through a
``memoryview`` while a read cursor advances over the receive buffer, so
a chunk carrying many small frames costs one pass instead of one
buffer-shifting ``del`` per frame.  Consumed bytes are reclaimed only
when the cursor crosses a compaction threshold or the buffer drains,
keeping the amortized cost per frame O(frame size).
"""

from __future__ import annotations

import struct
import time
from typing import Iterable, List

from repro.metrics.trace import TRACER as _TRACER

_LEN = struct.Struct(">I")

#: Hard cap on one E2AP message; generous versus the paper's 1500 B
#: MTU experiments yet small enough to catch stream corruption.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Default receive-side frame cap.  Tighter than the send-side cap: a
#: corrupt length prefix must be rejected before the receive buffer is
#: asked to hold it, or a single flipped bit OOMs the process.
DEFAULT_MAX_FRAME_LEN = 16 * 1024 * 1024

#: Consumed-prefix size beyond which the receive buffer is compacted.
#: Below this the dead bytes are cheaper to carry than to move.
_COMPACT_THRESHOLD = 1 << 16


class FramingError(Exception):
    """Raised when the byte stream violates the framing protocol."""


def frame_message(payload: bytes) -> bytes:
    """Prefix ``payload`` with its length.

    ``payload`` may be any buffer-protocol object (``bytes``,
    ``bytearray``, ``memoryview``): the join below copies it into the
    frame exactly once with no intermediate ``bytes()`` materialization.

    With tracing enabled a ``frame`` span is recorded, adopting the
    correlation of the message encoded just before.
    """
    if len(payload) > MAX_MESSAGE_BYTES:
        raise FramingError(f"message too large: {len(payload)} B")
    tracer = _TRACER
    if tracer.enabled:
        start = time.perf_counter()
        frame = b"".join((_LEN.pack(len(payload)), payload))
        tracer.record("frame", start, tracer.adopt_corr())
        return frame
    return b"".join((_LEN.pack(len(payload)), payload))


def frame_messages(payloads: Iterable[bytes]) -> bytes:
    """Concatenate the frames of several payloads into one buffer.

    The receiver's :class:`Framer` splits them back into individual
    messages, so a batch costs one syscall on stream transports while
    message boundaries survive intact.
    """
    tracer = _TRACER
    start = time.perf_counter() if tracer.enabled else 0.0
    parts: List[bytes] = []
    for payload in payloads:
        if len(payload) > MAX_MESSAGE_BYTES:
            raise FramingError(f"message too large: {len(payload)} B")
        parts.append(_LEN.pack(len(payload)))
        parts.append(payload)
    wire = b"".join(parts)
    if start:
        tracer.record("frame", start, tracer.adopt_corr())
    return wire


class Framer:
    """Incremental deframer: feed stream chunks, get whole messages.

    Example:
        >>> f = Framer()
        >>> chunks = f.feed(frame_message(b"hi") + frame_message(b"yo"))
        >>> chunks
        [b'hi', b'yo']
    """

    def __init__(self, max_frame_len: int = DEFAULT_MAX_FRAME_LEN) -> None:
        if max_frame_len <= 0:
            raise ValueError(f"max_frame_len must be positive, got {max_frame_len}")
        self.max_frame_len = min(max_frame_len, MAX_MESSAGE_BYTES)
        self._buffer = bytearray()
        self._pos = 0  # read cursor: bytes before it are consumed

    def feed(self, chunk) -> List[bytes]:
        """Absorb ``chunk``; return every now-complete message.

        ``chunk`` may be any buffer-protocol object; it is appended to
        the receive buffer without an intermediate ``bytes()`` copy.

        With tracing enabled the deframe pass is recorded as a
        ``frame`` span (procedure ``deframe``); the bytes are not yet
        decodable, so it carries no correlation — stitching places it
        by time window instead.
        """
        tracer = _TRACER
        trace_start = time.perf_counter() if tracer.enabled else 0.0
        buffer = self._buffer
        buffer.extend(chunk)
        pos = self._pos
        limit = len(buffer)
        header = _LEN.size
        messages: List[bytes] = []
        # One memoryview for the whole pass; slicing it copies each
        # frame exactly once (into the immutable bytes handed out).
        view = memoryview(buffer)
        try:
            while limit - pos >= header:
                (length,) = _LEN.unpack_from(buffer, pos)
                if length > self.max_frame_len:
                    raise FramingError(
                        f"frame length {length} exceeds cap {self.max_frame_len}"
                    )
                end = pos + header + length
                if end > limit:
                    break
                # The one necessary copy: the frame must outlive the
                # mutable receive buffer it is sliced from.
                messages.append(bytes(view[pos + header:end]))  # repro-lint: disable=RL007
                pos = end
        finally:
            view.release()
        if pos == limit:
            # Buffer fully drained: reset in O(1).
            buffer.clear()
            self._pos = 0
        elif pos >= _COMPACT_THRESHOLD:
            del buffer[:pos]
            self._pos = 0
        else:
            self._pos = pos
        if trace_start:
            tracer.record("frame", trace_start, procedure="deframe")
        return messages

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer) - self._pos
