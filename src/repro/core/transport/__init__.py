"""Transport abstraction (§4.3 point 1).

O-RAN mandates SCTP for E2; FlexRIC wraps the transport behind an
interface so deployments can swap it.  SCTP's relevant property for
E2AP is *ordered, reliable message boundaries*; this package provides:

* :class:`~repro.core.transport.base.Transport` — the interface,
* :class:`~repro.core.transport.tcp.TcpTransport` — message framing
  over TCP sockets (the SCTP stand-in; see DESIGN.md substitutions),
* :class:`~repro.core.transport.inproc.InProcTransport` — a loopback
  transport for deterministic simulations and tests,
* :class:`~repro.core.transport.faulty.FaultyTransport` — a seeded
  fault-injection decorator (drops, dups, reordering, corruption,
  forced kills) for chaos-testing the lifecycle-resilience layer.
"""

from repro.core.transport.base import (
    ConnectTimeout,
    DisconnectReason,
    Endpoint,
    Listener,
    Transport,
    TransportEvents,
)
from repro.core.transport.faulty import FaultSpec, FaultyTransport
from repro.core.transport.framing import Framer, frame_message, frame_messages
from repro.core.transport.inproc import InProcTransport
from repro.core.transport.tcp import TcpTransport

__all__ = [
    "ConnectTimeout",
    "DisconnectReason",
    "Endpoint",
    "Listener",
    "Transport",
    "TransportEvents",
    "FaultSpec",
    "FaultyTransport",
    "Framer",
    "frame_message",
    "frame_messages",
    "InProcTransport",
    "TcpTransport",
]
