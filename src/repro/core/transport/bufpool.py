"""Pooled frame assembly: reusable buffers with refcounted leases.

The sync send paths used to materialize one fresh ``bytes`` object per
frame (``len-prefix + payload``), so a fan-out of the same indication
to N connections allocated N frames and the allocator dominated the
profile at high rates.  :class:`BufferPool` keeps size-classed
``bytearray`` buffers on a freelist and assembles frames into them
through ``memoryview`` slices — no intermediate ``bytes`` — and
:class:`FrameLease` adds a refcount so one assembled frame can be
handed to several senders and returns to the pool only after the last
one releases it.

Safety contract: a lease's buffer is recycled at refcount zero, so a
lease may only be passed to consumers that are *done with the bytes
when their call returns* (``socket.sendall`` copies into the kernel
buffer; the inproc queue must NOT hold a lease view across dispatch).
Callers that need the data to outlive the send take ``lease.tobytes()``
(counted — it is exactly the copy the pool exists to avoid).

Instrumented: ``bufpool.lease.hit`` (buffer reused from the freelist),
``bufpool.lease.miss`` (fresh allocation), ``bufpool.lease.oversize``
(payload above the largest size class: served unpooled).
"""

from __future__ import annotations

import struct
import threading
from typing import Dict, List, Sequence

from repro.metrics.counters import get_counter

_LEN = struct.Struct(">I")

#: size classes (frame capacity in bytes).  Powers of two from a tiny
#: control frame up to 1 MiB; larger frames are served unpooled.
_SIZE_CLASSES = (256, 1024, 4096, 16384, 65536, 262144, 1048576)

#: buffers kept per size class; excess releases are dropped to the GC.
_MAX_FREE_PER_CLASS = 32


def _size_class(needed: int) -> int:
    """Smallest size class holding ``needed`` bytes, or -1 if oversize."""
    for index, cap in enumerate(_SIZE_CLASSES):
        if needed <= cap:
            return index
    return -1


class FrameLease:
    """One assembled wire frame inside a pooled buffer.

    ``view`` is a read-only :class:`memoryview` of exactly the framed
    bytes.  ``retain()`` before handing the lease to an additional
    consumer; every consumer (including the creator) calls
    ``release()`` when its send has returned.  The buffer goes back to
    the pool's freelist when the count reaches zero.
    """

    __slots__ = ("pool", "buffer", "length", "_refs", "_lock", "_class")

    def __init__(self, pool: "BufferPool", buffer: bytearray, length: int, size_class: int) -> None:
        self.pool = pool
        self.buffer = buffer
        self.length = length
        self._refs = 1
        self._lock = threading.Lock()
        self._class = size_class

    @property
    def view(self) -> memoryview:
        return memoryview(self.buffer)[: self.length].toreadonly()

    def tobytes(self) -> bytes:
        """Materialize an owned copy (counted: this defeats the pool)."""
        get_counter("bytes.copied").incr()
        return bytes(self.buffer[: self.length])  # repro-lint: disable=RL007 — explicit, counted materialization

    def retain(self) -> "FrameLease":
        with self._lock:
            if self._refs <= 0:
                raise RuntimeError("retain() on a released FrameLease")
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            if self._refs <= 0:
                raise RuntimeError("release() on an already-released FrameLease")
            self._refs -= 1
            live = self._refs
        if live == 0:
            self.pool._recycle(self)


class BufferPool:
    """Size-classed freelist of frame-assembly buffers (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: Dict[int, List[bytearray]] = {i: [] for i in range(len(_SIZE_CLASSES))}
        self._hit = get_counter("bufpool.lease.hit")
        self._miss = get_counter("bufpool.lease.miss")
        self._oversize = get_counter("bufpool.lease.oversize")

    def _acquire(self, needed: int) -> "tuple[bytearray, int]":
        index = _size_class(needed)
        if index < 0:
            # Above the largest class: serve a one-shot buffer that is
            # never pooled (recycle drops it), loudly counted.
            self._oversize.incr()
            return bytearray(needed), -1
        with self._lock:
            free = self._free[index]
            buffer = free.pop() if free else None
        if buffer is None:
            self._miss.incr()
            buffer = bytearray(_SIZE_CLASSES[index])
        else:
            self._hit.incr()
        return buffer, index

    def _recycle(self, lease: FrameLease) -> None:
        if lease._class < 0:
            return  # oversize one-shot buffer: let the GC have it
        with self._lock:
            free = self._free[lease._class]
            if len(free) < _MAX_FREE_PER_CLASS:
                free.append(lease.buffer)

    def frame(self, payload) -> FrameLease:
        """Assemble ``[len][payload]`` into a pooled buffer.

        ``payload`` may be any buffer-protocol object (``bytes``,
        ``bytearray``, ``memoryview``); it is copied exactly once, into
        the pooled buffer, with no intermediate ``bytes``.
        """
        size = len(payload)
        total = _LEN.size + size
        buffer, index = self._acquire(total)
        view = memoryview(buffer)
        _LEN.pack_into(buffer, 0, size)
        view[_LEN.size : total] = payload
        return FrameLease(self, buffer, total, index)

    def frame_many(self, payloads: Sequence) -> FrameLease:
        """Assemble a coalesced batch of frames into one pooled buffer."""
        total = sum(_LEN.size + len(p) for p in payloads)
        buffer, index = self._acquire(total)
        view = memoryview(buffer)
        offset = 0
        for payload in payloads:
            size = len(payload)
            _LEN.pack_into(buffer, offset, size)
            offset += _LEN.size
            view[offset : offset + size] = payload
            offset += size
        return FrameLease(self, buffer, total, index)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "free_buffers": sum(len(v) for v in self._free.values()),
                "hits": self._hit.value,
                "misses": self._miss.value,
                "oversize": self._oversize.value,
            }


#: process-wide default pool shared by the transports.
DEFAULT_POOL = BufferPool()
