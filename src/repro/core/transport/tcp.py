"""Message-framed transport over TCP sockets (the SCTP stand-in).

Each :class:`TcpTransport` owns one or more ``selectors``-based I/O
*shards*.  A shard is the single-threaded, event-driven loop the
paper's server library uses (§4.4) — its own selector, its own wake
pipe, its own thread — and connections are pinned to exactly one shard
for their lifetime, which is what preserves per-connection message
ordering.  With ``shards=1`` (the default) the transport is exactly
the historic single-loop implementation; with ``shards=N`` accepted
and outgoing connections are spread round-robin/least-loaded across N
independent loops so one busy E2 node no longer stalls every other
node's traffic.

Sharded loops additionally drain a readable socket until ``EAGAIN``
and deliver every completed frame of the wakeup as one batch through
``TransportEvents.on_messages`` (when the receiver registered it), so
a burst costs the server one lock acquisition and one trace span
instead of per-frame overhead — the receive-side mirror of the
``send_many`` coalescing.

The loops run either inline (:meth:`step`, for tests) or on background
threads (:meth:`start`), which is how the RTT experiments drive real
sockets on localhost exactly as the paper measured.
"""

from __future__ import annotations

import errno
import itertools
import select
import selectors
import socket
import struct
import threading
import time
from typing import Callable, List, Optional, Sequence

from repro.core.overload import OverloadConfig, QueuePressure, TrafficClass
from repro.core.transport.base import (
    ConnectTimeout,
    DisconnectReason,
    Endpoint,
    Listener,
    Transport,
    TransportEvents,
)
from repro.core.transport.bufpool import DEFAULT_POOL
from repro.core.transport.framing import (
    MAX_MESSAGE_BYTES,
    Framer,
    FramingError,
    frame_messages,
)
from repro.metrics.counters import discard_counter, get_counter
from repro.metrics.trace import TRACER as _TRACER

_LEN = struct.Struct(">I")

#: iovecs per ``sendmsg`` call — conservative versus any platform's
#: IOV_MAX (Linux: 1024) while still coalescing a whole batch of small
#: frames into a handful of syscalls.
_IOV_BATCH = 64

#: scatter-gather send support (absent on some exotic platforms; the
#: coalesced-``bytes`` join path stays as the fallback).
_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")

#: Kernel support for SO_REUSEPORT connection spreading.  Module-level
#: (not inlined into the constructor) so tests and the multiprocess
#: supervisor can probe — and monkeypatch — the same fact the
#: transport acts on.
_HAS_REUSEPORT = hasattr(socket, "SO_REUSEPORT")


def reuseport_available() -> bool:
    """Can this kernel spread accepts across SO_REUSEPORT listeners?"""
    return _HAS_REUSEPORT


def _classify_oserror(exc: OSError) -> DisconnectReason:
    """Map a socket error onto a close-cause bucket.

    Recorded per bucket in ``repro.metrics`` counters so a flapping
    testbed shows *why* links die (peer resets versus silent EOFs),
    not just that they do.
    """
    if exc.errno in (errno.ECONNRESET, errno.EPIPE):
        return DisconnectReason(DisconnectReason.RESET, str(exc))
    return DisconnectReason(DisconnectReason.ERROR, str(exc))


def _parse_address(address: str) -> tuple:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"address must be host:port, got {address!r}")
    return host, int(port)


class _TcpEndpoint(Endpoint):
    def __init__(
        self,
        transport: "TcpTransport",
        sock: socket.socket,
        events: TransportEvents,
        shard: int,
    ) -> None:
        self._transport = transport
        self._sock = sock
        self._events = events
        self._framer = Framer()
        self._send_lock = threading.Lock()
        self._closed = False
        #: index of the I/O shard this connection is pinned to.
        self.shard = shard
        try:
            self._peer = "%s:%d" % sock.getpeername()[:2]
        except OSError:
            self._peer = "?"
        self.bytes_sent = 0
        self.messages_sent = 0

    def send(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionError("endpoint closed")
        if len(data) > MAX_MESSAGE_BYTES:
            raise FramingError(f"message too large: {len(data)} B")
        tracer = _TRACER
        # Frame into a pooled buffer: ``data`` may be any buffer-
        # protocol object and is copied exactly once (into the pooled
        # frame); sendall copies into the kernel buffer before the
        # lease's buffer can be recycled.
        if tracer.enabled:
            frame_start = time.perf_counter()
            lease = DEFAULT_POOL.frame(data)
            tracer.record("frame", frame_start, tracer.adopt_corr())
        else:
            lease = DEFAULT_POOL.frame(data)
        trace_start = time.perf_counter() if tracer.enabled else 0.0
        # sendall under a lock: POSIX sockets are thread-safe but frame
        # interleaving from concurrent senders must still be prevented.
        try:
            with self._send_lock:
                self._sock.sendall(lease.view)
        except OSError as exc:
            raise self._send_failed(exc)
        finally:
            lease.release()
        if trace_start:
            tracer.record("send", trace_start, tracer.adopt_corr(), node=self._peer)
        self.bytes_sent += len(data)
        self.messages_sent += 1

    def send_many(self, batch: Sequence[bytes]) -> None:
        if not batch:
            return
        if self._closed:
            raise ConnectionError("endpoint closed")
        tracer = _TRACER
        if _HAS_SENDMSG:
            # Scatter-gather: the kernel walks [prefix, payload] iovec
            # pairs straight out of the callers' buffers — no coalesced
            # ``bytes`` materialization at all.
            wire = None
            if tracer.enabled:
                frame_start = time.perf_counter()
                iov = self._build_iov(batch)
                tracer.record("frame", frame_start, tracer.adopt_corr())
            else:
                iov = self._build_iov(batch)
        else:  # pragma: no cover - platforms without sendmsg
            # One coalesced write: the peer's framer restores message
            # boundaries.
            iov = None
            wire = frame_messages(batch)
        trace_start = time.perf_counter() if tracer.enabled else 0.0
        try:
            with self._send_lock:
                if iov is not None:
                    vectored = get_counter("tcp.send.vectored")
                    for start in range(0, len(iov), 2 * _IOV_BATCH):
                        self._sendmsg_all(iov[start:start + 2 * _IOV_BATCH])
                        vectored.incr()
                else:  # pragma: no cover - platforms without sendmsg
                    self._sock.sendall(wire)
        except OSError as exc:
            raise self._send_failed(exc)
        if trace_start:
            tracer.record("send", trace_start, tracer.adopt_corr(), node=self._peer)
        self.bytes_sent += sum(len(data) for data in batch)
        self.messages_sent += len(batch)

    @staticmethod
    def _build_iov(batch: Sequence[bytes]) -> List[bytes]:
        """Interleave length prefixes with payloads for ``sendmsg``."""
        iov: List[bytes] = []
        for payload in batch:
            if len(payload) > MAX_MESSAGE_BYTES:
                raise FramingError(f"message too large: {len(payload)} B")
            iov.append(_LEN.pack(len(payload)))
            iov.append(payload)
        return iov

    def _sendmsg_all(self, buffers: List[bytes]) -> None:
        """``sendmsg`` with partial-send continuation.

        A short write leaves the tail of an iovec (or whole iovecs)
        unsent; the remainder is re-submitted from where the kernel
        stopped.  A full socket buffer waits briefly for writability —
        abandoning mid-frame would corrupt the stream for the peer.
        """
        sock = self._sock
        remaining: List[memoryview] = [memoryview(b) for b in buffers]
        index = 0
        while index < len(remaining):
            try:
                sent = sock.sendmsg(remaining[index:])
            except (BlockingIOError, InterruptedError):
                _readable, writable, _err = select.select([], [sock], [], 5.0)
                if not writable:
                    raise OSError(errno.ETIMEDOUT, "send stalled: socket unwritable for 5s")
                continue
            while index < len(remaining) and sent >= len(remaining[index]):
                sent -= len(remaining[index])
                index += 1
            if sent and index < len(remaining):
                remaining[index] = remaining[index][sent:]

    def _send_failed(self, exc: OSError) -> ConnectionError:
        """Account for a send-side death and tear the endpoint down."""
        reason = _classify_oserror(exc)
        get_counter(f"tcp.close.{reason.code}").incr()
        self._transport._close_endpoint(self, notify_local=True, reason=reason)
        return ConnectionError(f"send failed: {exc}")

    def close(self) -> None:
        self._transport._close_endpoint(
            self,
            notify_local=False,
            reason=DisconnectReason(DisconnectReason.LOCAL),
        )

    @property
    def peer(self) -> str:
        return self._peer

    @property
    def closed(self) -> bool:
        return self._closed


class _TcpListener(Listener):
    """One listening address, possibly backed by several sockets.

    With ``SO_REUSEPORT`` sharding every shard owns its own accept
    socket bound to the same port and the kernel spreads incoming
    connections across them; otherwise a single socket on shard 0
    accepts and hands connections to the least-loaded shard.
    """

    def __init__(self, transport: "TcpTransport", socks: List[socket.socket], events: TransportEvents) -> None:
        self._transport = transport
        self._socks = socks
        self._events = events
        host, port = socks[0].getsockname()[:2]
        self._address = f"{host}:{port}"

    def close(self) -> None:
        self._transport._close_listener(self)

    @property
    def address(self) -> str:
        return self._address

    @property
    def port(self) -> int:
        return int(self._address.rpartition(":")[2])


class _Shard:
    """One independent selector loop: selector + wake pipe + thread."""

    def __init__(
        self,
        index: int,
        overload: Optional["OverloadConfig"] = None,
        classify: Optional[Callable[[bytes], TrafficClass]] = None,
    ) -> None:
        self.index = index
        self.selector = selectors.DefaultSelector()
        self.lock = threading.Lock()
        #: shed/degrade accounting for this loop's ingest.  TCP's real
        #: queue is the kernel socket buffer, so "depth" here is the
        #: size of the batch one wakeup drained — the loop's view of
        #: how far behind it is running.
        self.pressure = QueuePressure(f"tcp.shard.{index}", overload, classify)
        self.thread: Optional[threading.Thread] = None
        #: sock -> endpoint, for teardown; len() is the load metric.
        self.endpoints: dict = {}
        #: messages delivered through this shard (single-writer: the
        #: shard's own dispatch context), for balance diagnostics.
        self.rx_messages = 0
        self.wake_recv, self.wake_send = socket.socketpair()
        self.wake_recv.setblocking(False)
        self.selector.register(self.wake_recv, selectors.EVENT_READ, ("wake", None))
        self._closed = False

    def wake(self) -> None:
        try:
            self.wake_send.send(b"x")
        except OSError:
            pass

    def drain_wake(self) -> None:
        try:
            while self.wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def close(self) -> None:
        """Release the wake pipe and selector (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with self.lock:
            try:
                self.selector.unregister(self.wake_recv)
            except (KeyError, ValueError):
                pass
            for sock in (self.wake_recv, self.wake_send):
                try:
                    sock.close()
                except OSError:
                    pass
            self.selector.close()


class TcpTransport(Transport):
    """Framed-TCP transport with one or more owned selector loops."""

    name = "tcp"

    #: bytes read per recv call.
    RECV_SIZE = 256 * 1024
    #: per-wakeup drain cap (sharded mode): a connection bursting more
    #: than this yields the shard loop so its neighbours stay live; the
    #: level-triggered selector re-arms it on the next poll.
    MAX_DRAIN_BYTES = 1024 * 1024

    def __init__(
        self,
        shards: int = 1,
        connect_timeout_s: float = 5.0,
        reuseport: bool = False,
        overload: Optional[OverloadConfig] = None,
        classify: Optional[Callable[[bytes], TrafficClass]] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if overload is not None and classify is None:
            raise ValueError("overload policy requires a frame classifier")
        self._overload = overload
        self._classify = classify
        self._shards = [_Shard(index, overload, classify) for index in range(shards)]
        #: sharded loops batch-drain sockets; the single-loop transport
        #: keeps the historic one-recv/one-callback behaviour exactly.
        self._batched = shards > 1
        self.connect_timeout_s = connect_timeout_s
        self._reuseport = reuseport and reuseport_available()
        if reuseport and not self._reuseport:
            # Loud degradation (satellite of DESIGN.md §14): without
            # SO_REUSEPORT a shards>1 request quietly collapses to one
            # accept socket spreading to shards in userspace — callers
            # watching this counter know the kernel is not helping.
            get_counter("tcp.reuseport.unavailable").incr()
        self._rr = itertools.count()
        self._listeners: List[_TcpListener] = []
        self._running = False
        self._stopped = False

    @property
    def shards(self) -> int:
        return len(self._shards)

    # -- public API --------------------------------------------------

    def listen(self, address: str, events: TransportEvents) -> _TcpListener:
        host, port = _parse_address(address)
        if self._reuseport:
            # Reuseport bind even with one shard: a single-shard worker
            # process must still share its port with sibling workers
            # (the multiprocess ingest mode of DESIGN.md §14).
            socks = self._listen_reuseport(host, port)
        else:
            socks = [self._bind(host, port, reuseport=False)]
        listener = _TcpListener(self, socks, events)
        for index, sock in enumerate(socks):
            # Single-socket mode accepts on shard 0 and spreads the
            # connections; reuseport mode pins each accept socket to
            # its own shard (the kernel does the spreading).
            shard = self._shards[index % len(self._shards)]
            with shard.lock:
                shard.selector.register(sock, selectors.EVENT_READ, ("accept", listener))
            shard.wake()
        self._listeners.append(listener)
        return listener

    def _bind(self, host: str, port: int, reuseport: bool) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(64)
        sock.setblocking(False)
        return sock

    def _listen_reuseport(self, host: str, port: int) -> List[socket.socket]:
        """One accept socket per shard on the same port (§SO_REUSEPORT)."""
        first = self._bind(host, port, reuseport=True)
        bound_port = first.getsockname()[1]  # resolve an ephemeral port
        socks = [first]
        try:
            for _ in range(1, len(self._shards)):
                socks.append(self._bind(host, bound_port, reuseport=True))
        except OSError:
            for sock in socks:
                sock.close()
            raise
        return socks

    def connect(self, address: str, events: TransportEvents) -> _TcpEndpoint:
        host, port = _parse_address(address)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Bounded connect: a black-holed address must not stall the
        # caller for the OS default (minutes); the reconnect path
        # treats the timeout like any other refused attempt.
        sock.settimeout(self.connect_timeout_s if self.connect_timeout_s > 0 else None)
        try:
            sock.connect((host, port))
        except socket.timeout:
            sock.close()
            get_counter("tcp.connect.timeout").incr()
            raise ConnectTimeout(
                f"connect to {address} timed out after {self.connect_timeout_s}s"
            )
        except OSError:
            sock.close()
            raise
        sock.setblocking(False)
        shard = self._pick_shard()
        endpoint = _TcpEndpoint(self, sock, events, shard.index)
        with shard.lock:
            shard.endpoints[sock] = endpoint
            shard.selector.register(sock, selectors.EVENT_READ, ("conn", endpoint))
        shard.wake()
        events.on_connected(endpoint)
        return endpoint

    def adopt(self, sock: socket.socket, events: TransportEvents) -> _TcpEndpoint:
        """Take ownership of an already-connected socket.

        The accept-and-hand-off fallback path: when ``SO_REUSEPORT`` is
        unavailable the multiprocess supervisor accepts centrally and
        passes raw fds to worker processes, which adopt them here as if
        they had arrived through a local listener.
        """
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP fd in tests
            pass
        shard = self._pick_shard()
        endpoint = _TcpEndpoint(self, sock, events, shard.index)
        # Announce the endpoint BEFORE the shard can read from it: the
        # peer has typically already sent its first frame (E2 setup) by
        # the time the fd arrives here, so registering with the selector
        # first would race delivery against on_connected and the server
        # would drop frames from an endpoint it has never seen.
        events.on_connected(endpoint)
        with shard.lock:
            shard.endpoints[sock] = endpoint
            shard.selector.register(sock, selectors.EVENT_READ, ("conn", endpoint))
        shard.wake()
        return endpoint

    def start(self) -> None:
        """Run every shard loop on a daemon thread until :meth:`stop`."""
        if self._running:
            return
        self._running = True
        self._stopped = False
        for shard in self._shards:
            shard.thread = threading.Thread(
                target=self._run,
                args=(shard,),
                name=f"tcp-transport-{shard.index}",
                daemon=True,
            )
            shard.thread.start()

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop every loop thread and close every socket (idempotent).

        Teardown is *loud*: a shard thread that fails to join within
        ``timeout_s`` is counted in ``transport.stop.stuck`` and
        reported with :class:`RuntimeError` after the remaining
        resources are released — stuck shards previously hid behind
        daemon threads until interpreter exit and surfaced only as
        flaky teardown under ``REPRO_ANALYSIS=1``.
        """
        if self._stopped:
            return
        self._stopped = True
        self._running = False
        for shard in self._shards:
            shard.wake()
        stuck: List[str] = []
        for shard in self._shards:
            if shard.thread is not None:
                shard.thread.join(timeout=timeout_s)
                if shard.thread.is_alive():
                    get_counter("transport.stop.stuck").incr()
                    stuck.append(shard.thread.name)
                shard.thread = None
        for listener in list(self._listeners):
            self._close_listener(listener)
        for shard in self._shards:
            with shard.lock:
                for sock, endpoint in list(shard.endpoints.items()):
                    endpoint._closed = True
                    discard_counter(f"overload.conn.{endpoint._peer}.drops")
                    self._unregister(shard, sock)
                    sock.close()
                shard.endpoints.clear()
            # Conn-scoped pressure gauges die with the loop that owned
            # them — a later transport on the same scope starts clean.
            shard.pressure.discard_gauges()
            # The self-pipe: left open across stop() it leaks two fds
            # per create/stop cycle (chaos suites cycle transports).
            shard.close()
        if stuck:
            raise RuntimeError(
                f"tcp transport stop: shard thread(s) stuck after "
                f"{timeout_s}s: {', '.join(stuck)}"
            )

    def step(self, timeout: float = 0.0) -> int:
        """Process pending I/O inline; returns the number of events.

        Polls every shard once (tests drive multi-shard transports the
        same way as the historic single loop).
        """
        return sum(self._poll(shard, timeout) for shard in self._shards)

    def shard_stats(self) -> List[dict]:
        """Per-shard load/traffic snapshot for the scale harness."""
        return [
            {
                "shard": shard.index,
                "connections": len(shard.endpoints),
                "rx_messages": shard.rx_messages,
            }
            for shard in self._shards
        ]

    # -- internals ---------------------------------------------------

    def _pick_shard(self) -> _Shard:
        """Least-loaded shard, round-robin among ties."""
        n = len(self._shards)
        if n == 1:
            return self._shards[0]
        start = next(self._rr) % n
        best = self._shards[start]
        best_load = len(best.endpoints)
        for offset in range(1, n):
            shard = self._shards[(start + offset) % n]
            load = len(shard.endpoints)
            if load < best_load:
                best, best_load = shard, load
        return best

    def _run(self, shard: _Shard) -> None:
        while self._running:
            self._poll(shard, timeout=0.1)

    def _poll(self, shard: _Shard, timeout: float) -> int:
        try:
            events = shard.selector.select(timeout)
        except OSError:
            return 0
        for key, _mask in events:
            kind, owner = key.data
            if kind == "wake":
                shard.drain_wake()
            elif kind == "accept":
                self._accept(shard, key.fileobj, owner)
            else:
                self._read(shard, owner)
        return len(events)

    def _accept(self, shard: _Shard, sock: socket.socket, listener: _TcpListener) -> None:
        try:
            conn, _addr = sock.accept()
        except OSError:
            return
        conn.setblocking(False)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Reuseport accept sockets keep their connection on the
        # accepting shard; the single accept socket spreads them.
        target = shard if self._reuseport and len(self._shards) > 1 else self._pick_shard()
        endpoint = _TcpEndpoint(self, conn, listener._events, target.index)
        with target.lock:
            target.endpoints[conn] = endpoint
            target.selector.register(conn, selectors.EVENT_READ, ("conn", endpoint))
        if target is not shard:
            target.wake()
        listener._events.on_connected(endpoint)

    def _read(self, shard: _Shard, endpoint: _TcpEndpoint) -> None:
        if self._batched:
            self._read_batched(shard, endpoint)
            return
        tracer = _TRACER
        trace_start = time.perf_counter() if tracer.enabled else 0.0
        try:
            chunk = endpoint._sock.recv(self.RECV_SIZE)
        except BlockingIOError:
            return
        except OSError as exc:
            reason = _classify_oserror(exc)
            get_counter(f"tcp.close.{reason.code}").incr()
            self._close_endpoint(endpoint, notify_local=True, reason=reason)
            return
        if not chunk:
            get_counter("tcp.close.eof").incr()
            self._close_endpoint(
                endpoint,
                notify_local=True,
                reason=DisconnectReason(DisconnectReason.EOF),
            )
            return
        if trace_start:
            # The recv syscall only; deframe and decode have their own
            # spans (no correlation yet — the bytes are still opaque).
            tracer.record("recv", trace_start, node=endpoint._peer)
        try:
            messages = endpoint._framer.feed(chunk)
        except FramingError as exc:
            # Corrupt/oversize length prefix: kill the link instead of
            # letting the receive buffer grow towards the bogus length.
            get_counter("tcp.close.framing").incr()
            self._close_endpoint(
                endpoint,
                notify_local=True,
                reason=DisconnectReason(DisconnectReason.PROTOCOL, str(exc)),
            )
            return
        shard.rx_messages += len(messages)
        for message in messages:
            endpoint._events.on_message(endpoint, message)

    def _read_batched(self, shard: _Shard, endpoint: _TcpEndpoint) -> None:
        """Drain the socket until EAGAIN, deliver one frame batch.

        Everything the wakeup completed reaches the receiver as one
        ``on_messages`` call (or an ``on_message`` loop for receivers
        without the batch hook); a terminal condition found mid-drain
        (EOF, reset, framing violation) is reported only *after* the
        frames completed before it were delivered, preserving the
        per-connection ordering guarantee.
        """
        tracer = _TRACER
        trace_start = time.perf_counter() if tracer.enabled else 0.0
        drained = 0
        terminal: Optional[DisconnectReason] = None
        # Placeholder only: every terminal path below overwrites it
        # with the specific close-cause name before it is used.
        terminal_counter = "tcp.close.error"
        pressure = shard.pressure
        drain_budget = self.MAX_DRAIN_BYTES
        if pressure.degraded:
            # Degraded loop: take smaller bites per wakeup so the
            # selector re-arms sooner and a flooding connection cannot
            # monopolize the shard while neighbours starve.
            drain_budget //= 4
        messages: List[bytes] = []
        while drained < drain_budget:
            try:
                chunk = endpoint._sock.recv(self.RECV_SIZE)
            except BlockingIOError:
                break
            except OSError as exc:
                terminal = _classify_oserror(exc)
                terminal_counter = f"tcp.close.{terminal.code}"
                break
            if not chunk:
                terminal = DisconnectReason(DisconnectReason.EOF)
                terminal_counter = "tcp.close.eof"
                break
            drained += len(chunk)
            try:
                messages.extend(endpoint._framer.feed(chunk))
            except FramingError as exc:
                terminal = DisconnectReason(DisconnectReason.PROTOCOL, str(exc))
                terminal_counter = "tcp.close.framing"
                break
        if trace_start and drained:
            tracer.record("recv", trace_start, node=endpoint._peer)
        if messages:
            if pressure.bounded:
                # The drained batch *is* the queue (frames already left
                # the kernel buffer), so admit against depth 0: keep
                # all control frames and the newest indications up to
                # the configured budget, shedding the oldest first.
                pressure.note_depth(len(messages))
                messages = pressure.admit(messages, 0, endpoint._peer)
            if messages:
                shard.rx_messages += len(messages)
                endpoint._events.deliver(endpoint, messages)
            if pressure.bounded:
                # The batch was fully delivered: put the depth gauge
                # back to zero or it reads "len(last batch)" forever
                # (the stale-depth leak of the §14 bugfix sweep).
                pressure.note_depth(0)
        if terminal is not None:
            get_counter(terminal_counter).incr()
            self._close_endpoint(endpoint, notify_local=True, reason=terminal)

    def _close_endpoint(
        self,
        endpoint: _TcpEndpoint,
        notify_local: bool,
        reason: Optional[DisconnectReason] = None,
    ) -> None:
        if endpoint._closed:
            return
        endpoint._closed = True
        sock = endpoint._sock
        shard = self._shards[endpoint.shard]
        with shard.lock:
            shard.endpoints.pop(sock, None)
            self._unregister(shard, sock)
        # Unregister conn-scoped instruments with the link (PR 3's
        # dead-link gauge discipline): per-connection drop counters for
        # a dead peer otherwise accumulate forever under churn.
        discard_counter(f"overload.conn.{endpoint._peer}.drops")
        try:
            sock.close()
        except OSError:
            pass
        if notify_local:
            endpoint._events.on_disconnected(
                endpoint, reason or DisconnectReason(DisconnectReason.ERROR)
            )

    def _close_listener(self, listener: _TcpListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)
        for index, sock in enumerate(listener._socks):
            shard = self._shards[index % len(self._shards)]
            with shard.lock:
                self._unregister(shard, sock)
            try:
                sock.close()
            except OSError:
                pass

    def _unregister(self, shard: _Shard, sock: socket.socket) -> None:
        try:
            shard.selector.unregister(sock)
        except (KeyError, ValueError, OSError):
            pass
