"""Message-framed transport over TCP sockets (the SCTP stand-in).

Each :class:`TcpTransport` owns one ``selectors``-based I/O loop that
multiplexes every listener and connection created through it — the
single-threaded, event-driven structure the paper's server library uses
(§4.4).  The loop runs either inline (:meth:`step`, for tests) or on a
background thread (:meth:`start`), which is how the RTT experiments
drive real sockets on localhost exactly as the paper measured.
"""

from __future__ import annotations

import errno
import selectors
import socket
import threading
import time
from typing import Dict, Optional, Sequence

from repro.core.transport.base import (
    DisconnectReason,
    Endpoint,
    Listener,
    Transport,
    TransportEvents,
)
from repro.core.transport.framing import Framer, FramingError, frame_message, frame_messages
from repro.metrics.counters import get_counter
from repro.metrics.trace import TRACER as _TRACER


def _classify_oserror(exc: OSError) -> DisconnectReason:
    """Map a socket error onto a close-cause bucket.

    Recorded per bucket in ``repro.metrics`` counters so a flapping
    testbed shows *why* links die (peer resets versus silent EOFs),
    not just that they do.
    """
    if exc.errno in (errno.ECONNRESET, errno.EPIPE):
        return DisconnectReason(DisconnectReason.RESET, str(exc))
    return DisconnectReason(DisconnectReason.ERROR, str(exc))


def _parse_address(address: str) -> tuple:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"address must be host:port, got {address!r}")
    return host, int(port)


class _TcpEndpoint(Endpoint):
    def __init__(self, transport: "TcpTransport", sock: socket.socket, events: TransportEvents) -> None:
        self._transport = transport
        self._sock = sock
        self._events = events
        self._framer = Framer()
        self._send_lock = threading.Lock()
        self._closed = False
        try:
            self._peer = "%s:%d" % sock.getpeername()[:2]
        except OSError:
            self._peer = "?"
        self.bytes_sent = 0
        self.messages_sent = 0

    def send(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionError("endpoint closed")
        frame = frame_message(data)
        tracer = _TRACER
        trace_start = time.perf_counter() if tracer.enabled else 0.0
        # sendall under a lock: POSIX sockets are thread-safe but frame
        # interleaving from concurrent senders must still be prevented.
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as exc:
            raise self._send_failed(exc)
        if trace_start:
            tracer.record("send", trace_start, tracer.adopt_corr(), node=self._peer)
        self.bytes_sent += len(data)
        self.messages_sent += 1

    def send_many(self, batch: Sequence[bytes]) -> None:
        if not batch:
            return
        if self._closed:
            raise ConnectionError("endpoint closed")
        # One coalesced write: the peer's framer restores boundaries.
        wire = frame_messages(batch)
        tracer = _TRACER
        trace_start = time.perf_counter() if tracer.enabled else 0.0
        try:
            with self._send_lock:
                self._sock.sendall(wire)
        except OSError as exc:
            raise self._send_failed(exc)
        if trace_start:
            tracer.record("send", trace_start, tracer.adopt_corr(), node=self._peer)
        self.bytes_sent += sum(len(data) for data in batch)
        self.messages_sent += len(batch)

    def _send_failed(self, exc: OSError) -> ConnectionError:
        """Account for a send-side death and tear the endpoint down."""
        reason = _classify_oserror(exc)
        get_counter(f"tcp.close.{reason.code}").incr()
        self._transport._close_endpoint(self, notify_local=True, reason=reason)
        return ConnectionError(f"send failed: {exc}")

    def close(self) -> None:
        self._transport._close_endpoint(
            self,
            notify_local=False,
            reason=DisconnectReason(DisconnectReason.LOCAL),
        )

    @property
    def peer(self) -> str:
        return self._peer

    @property
    def closed(self) -> bool:
        return self._closed


class _TcpListener(Listener):
    def __init__(self, transport: "TcpTransport", sock: socket.socket, events: TransportEvents) -> None:
        self._transport = transport
        self._sock = sock
        self._events = events
        host, port = sock.getsockname()[:2]
        self._address = f"{host}:{port}"

    def close(self) -> None:
        self._transport._close_listener(self)

    @property
    def address(self) -> str:
        return self._address

    @property
    def port(self) -> int:
        return int(self._address.rpartition(":")[2])


class TcpTransport(Transport):
    """Framed-TCP transport with an owned selector loop."""

    name = "tcp"

    #: bytes read per recv call.
    RECV_SIZE = 256 * 1024

    def __init__(self) -> None:
        self._selector = selectors.DefaultSelector()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._endpoints: Dict[socket.socket, _TcpEndpoint] = {}
        # Self-pipe so start/stop and registration wake the loop.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, ("wake", None))

    # -- public API --------------------------------------------------

    def listen(self, address: str, events: TransportEvents) -> _TcpListener:
        host, port = _parse_address(address)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(64)
        sock.setblocking(False)
        listener = _TcpListener(self, sock, events)
        with self._lock:
            self._selector.register(sock, selectors.EVENT_READ, ("accept", listener))
        self._wake()
        return listener

    def connect(self, address: str, events: TransportEvents) -> _TcpEndpoint:
        host, port = _parse_address(address)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.connect((host, port))
        sock.setblocking(False)
        endpoint = _TcpEndpoint(self, sock, events)
        with self._lock:
            self._endpoints[sock] = endpoint
            self._selector.register(sock, selectors.EVENT_READ, ("conn", endpoint))
        self._wake()
        events.on_connected(endpoint)
        return endpoint

    def start(self) -> None:
        """Run the I/O loop on a daemon thread until :meth:`stop`."""
        if self._running:
            return
        self._running = True
        self._thread = threading.Thread(target=self._run, name="tcp-transport", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the loop thread and close every socket."""
        self._running = False
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            for sock, endpoint in list(self._endpoints.items()):
                endpoint._closed = True
                self._unregister(sock)
                sock.close()
            self._endpoints.clear()
            for key in list(self._selector.get_map().values()):
                kind, owner = key.data
                if kind == "accept":
                    self._selector.unregister(key.fileobj)
                    key.fileobj.close()

    def step(self, timeout: float = 0.0) -> int:
        """Process pending I/O inline; returns the number of events."""
        return self._poll(timeout)

    # -- internals ---------------------------------------------------

    def _run(self) -> None:
        while self._running:
            self._poll(timeout=0.1)

    def _poll(self, timeout: float) -> int:
        events = self._selector.select(timeout)
        for key, _mask in events:
            kind, owner = key.data
            if kind == "wake":
                try:
                    while self._wake_recv.recv(4096):
                        pass
                except BlockingIOError:
                    pass
            elif kind == "accept":
                self._accept(owner)
            else:
                self._read(owner)
        return len(events)

    def _accept(self, listener: _TcpListener) -> None:
        try:
            sock, _addr = listener._sock.accept()
        except OSError:
            return
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        endpoint = _TcpEndpoint(self, sock, listener._events)
        with self._lock:
            self._endpoints[sock] = endpoint
            self._selector.register(sock, selectors.EVENT_READ, ("conn", endpoint))
        listener._events.on_connected(endpoint)

    def _read(self, endpoint: _TcpEndpoint) -> None:
        tracer = _TRACER
        trace_start = time.perf_counter() if tracer.enabled else 0.0
        try:
            chunk = endpoint._sock.recv(self.RECV_SIZE)
        except BlockingIOError:
            return
        except OSError as exc:
            reason = _classify_oserror(exc)
            get_counter(f"tcp.close.{reason.code}").incr()
            self._close_endpoint(endpoint, notify_local=True, reason=reason)
            return
        if not chunk:
            get_counter("tcp.close.eof").incr()
            self._close_endpoint(
                endpoint,
                notify_local=True,
                reason=DisconnectReason(DisconnectReason.EOF),
            )
            return
        if trace_start:
            # The recv syscall only; deframe and decode have their own
            # spans (no correlation yet — the bytes are still opaque).
            tracer.record("recv", trace_start, node=endpoint._peer)
        try:
            messages = endpoint._framer.feed(chunk)
        except FramingError as exc:
            # Corrupt/oversize length prefix: kill the link instead of
            # letting the receive buffer grow towards the bogus length.
            get_counter("tcp.close.framing").incr()
            self._close_endpoint(
                endpoint,
                notify_local=True,
                reason=DisconnectReason(DisconnectReason.PROTOCOL, str(exc)),
            )
            return
        for message in messages:
            endpoint._events.on_message(endpoint, message)

    def _close_endpoint(
        self,
        endpoint: _TcpEndpoint,
        notify_local: bool,
        reason: Optional[DisconnectReason] = None,
    ) -> None:
        if endpoint._closed:
            return
        endpoint._closed = True
        sock = endpoint._sock
        with self._lock:
            self._endpoints.pop(sock, None)
            self._unregister(sock)
        try:
            sock.close()
        except OSError:
            pass
        if notify_local:
            endpoint._events.on_disconnected(
                endpoint, reason or DisconnectReason(DisconnectReason.ERROR)
            )

    def _close_listener(self, listener: _TcpListener) -> None:
        with self._lock:
            self._unregister(listener._sock)
        listener._sock.close()

    def _unregister(self, sock: socket.socket) -> None:
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"x")
        except OSError:
            pass
