"""Overload discipline: bounded queues, admission control, fair shares.

The FlexRIC figures measure the RIC at or below capacity; this module
is the layer for the regime *above* capacity (DESIGN.md §13), where a
controller serving thousands of nodes must degrade gracefully instead
of growing queues without bound:

* :class:`TrafficClass` / :func:`frame_classifier` — the two-class
  policy.  Everything that keeps the control plane alive (E2 setup,
  subscriptions, control procedures, RicServiceQuery keepalives) is
  CONTROL and is never shed; RIC indications are INDICATION and are
  droppable under pressure, exactly as O-RAN telemetry semantics allow
  (a lost KPM report is superseded by the next one).
* :class:`QueuePressure` — per-queue depth/high-watermark accounting
  plus, when bounded, the shed/degrade policy: above the high
  watermark the queue enters a degraded state where arriving
  indication bursts are coalesced to their newest frames and the hard
  depth bound is enforced by dropping the *oldest* indications first.
* :class:`AdmissionController` — token buckets and a concurrent-
  procedure cap over E2 setup / RIC subscription storms, with a
  slow-start ramp after ``node_recovered`` so a reconnect storm does
  not immediately re-trigger the collapse it recovered from.
* :class:`FairShareLimiter` — the Appendix B NVS share math extended
  from radio resources to controller capacity: tenant ``i`` with share
  ``q_i`` owns a token bucket refilled at ``q_i * C`` where ``C`` is
  the controller's provisioned capacity, so one greedy tenant cannot
  starve the rest of indication dispatch or control issuance.
* :class:`BoundedWorkerPool` — a drop-aware replacement for the
  unbounded indication worker pool.

Every drop is counted per class (``overload.drop.{cls}``) and per
connection (``overload.conn.{conn}.drops``); queue state is published
through ``queue.{scope}.depth`` / ``.hwm`` / ``.degraded`` gauges so
the northbound ``/metrics/overload`` route can report overload state.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from enum import IntEnum
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.codec.base import CodecError
from repro.core.e2ap.procedures import ProcedureCode
from repro.metrics.counters import discard_gauge, get_counter, get_gauge

_IND_CODE = int(ProcedureCode.RIC_INDICATION)


class TrafficClass(IntEnum):
    """Two-class shed policy: control is never dropped before data."""

    CONTROL = 0
    INDICATION = 1

    @property
    def label(self) -> str:
        return "control" if self is TrafficClass.CONTROL else "indication"


def classify_procedure(procedure: int) -> TrafficClass:
    """Map an E2AP procedure code to its traffic class.

    Only RIC indications are droppable.  Everything else — setup,
    subscription lifecycle, control, service query/update keepalives,
    configuration updates, resets — is control-class: shedding any of
    it turns transient overload into lifecycle damage (a node declared
    stale because its keepalive reply sat behind a KPM flood).
    """
    if procedure == _IND_CODE:
        return TrafficClass.INDICATION
    return TrafficClass.CONTROL


def frame_classifier(codec) -> Callable[[bytes], TrafficClass]:
    """Build a ``bytes -> TrafficClass`` classifier over ``codec``.

    Uses the codec's one-pass ``decode_route`` envelope read when
    available.  A frame that cannot be classified is CONTROL: the
    decode error is the server's to count and contain — the overload
    layer must never shed a frame it does not understand.
    """
    route = getattr(codec, "decode_route", None)

    def classify(data: bytes) -> TrafficClass:
        try:
            if route is not None:
                procedure = route(data)[0]
            else:
                procedure = codec.decode(data)["p"]
        except (CodecError, KeyError, TypeError, ValueError, IndexError):
            return TrafficClass.CONTROL
        return classify_procedure(procedure)

    return classify


@dataclass(frozen=True)
class OverloadConfig:
    """Tunable surface of the overload-discipline layer.

    The defaults bound a shard queue to a few thousand frames (a few
    MB of 100-byte indications) and admit setup/subscription bursts an
    order of magnitude above steady-state rates before rejecting.
    """

    #: hard per-queue bound on droppable (indication) frames.  Control
    #: frames are admitted past this bound — the queue's true limit is
    #: ``max_queue_depth`` plus in-flight control traffic, which is
    #: small by construction.
    max_queue_depth: int = 4096
    #: depth at which the queue enters the degraded state (sheds
    #: oldest indications, coalesces bursts).  Exit at half this depth
    #: (hysteresis, so the state does not flap around the threshold).
    high_watermark: int = 1024
    #: in the degraded state, an arriving indication burst from one
    #: connection is coalesced to its newest this-many frames.
    burst_coalesce: int = 64
    #: bound on the server-side indication worker-pool backlog.
    worker_queue_depth: int = 4096
    #: E2 setup admission: sustained rate (per second) and burst.
    setup_rate_s: float = 100.0
    setup_burst: int = 50
    #: RIC subscription admission: sustained rate (per second), burst,
    #: and a cap on concurrently outstanding (unconfirmed) requests.
    subscription_rate_s: float = 200.0
    subscription_burst: int = 100
    max_pending_subscriptions: int = 512
    #: after ``node_recovered``, admission rates ramp linearly from
    #: ``slow_start_floor`` of nominal back to nominal over this many
    #: seconds, so a reconnect storm re-admits gradually.
    slow_start_s: float = 5.0
    slow_start_floor: float = 0.1


class TokenBucket:
    """Monotonic-clock token bucket (thread-safe).

    ``rate`` tokens per second, capped at ``burst``.  ``rate_scale``
    lets the admission controller's slow-start ramp throttle refill
    without rebuilding the bucket.
    """

    __slots__ = ("rate", "burst", "tokens", "_last", "_time_fn", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0 or burst <= 0:
            raise ValueError(f"need rate >= 0 and burst > 0, got {rate}/{burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._time_fn = time_fn
        self._last = time_fn()
        self._lock = threading.Lock()

    def _refill(self, rate_scale: float) -> None:
        now = self._time_fn()
        elapsed = now - self._last
        if elapsed > 0:
            self.tokens = min(
                self.burst, self.tokens + elapsed * self.rate * rate_scale
            )
            self._last = now

    def try_acquire(self, n: float = 1.0, rate_scale: float = 1.0) -> bool:
        with self._lock:
            self._refill(rate_scale)
            if self.tokens >= n:
                self.tokens -= n
                return True
            return False

    def available(self, rate_scale: float = 1.0) -> float:
        with self._lock:
            self._refill(rate_scale)
            return self.tokens

    def time_to_tokens(self, n: float = 1.0, rate_scale: float = 1.0) -> float:
        """Seconds until ``n`` tokens are available (0 if already)."""
        with self._lock:
            self._refill(rate_scale)
            deficit = n - self.tokens
            if deficit <= 0:
                return 0.0
            effective = self.rate * rate_scale
            if effective <= 0:
                return float("inf")
            return deficit / effective


def count_drop(cls: TrafficClass, conn_label: object, dropped: int) -> None:
    """Account ``dropped`` shed frames per class and per connection."""
    get_counter(f"overload.drop.{cls.label}").incr(dropped)
    get_counter(f"overload.conn.{conn_label}.drops").incr(dropped)


class QueuePressure:
    """Depth/degrade accounting for one ingest queue.

    Two modes:

    * accounting-only (``config is None``) — publishes depth and
      high-watermark gauges; never touches the traffic.  This is the
      always-on mode of the inproc shard queues.
    * bounded (``config`` set, ``classify`` set) — additionally runs
      the shed/degrade policy via :meth:`admit`.

    ``note_depth`` is called from producer and consumer threads; the
    gauge stores are atomic and the degrade transition is serialized
    under a small lock so the enter counter is exact.
    """

    __slots__ = (
        "scope",
        "config",
        "classify",
        "depth_gauge",
        "hwm_gauge",
        "degraded_gauge",
        "hwm",
        "degraded",
        "_depth",
        "_exit_depth",
        "_state_lock",
    )

    def __init__(
        self,
        scope: str,
        config: Optional[OverloadConfig] = None,
        classify: Optional[Callable[[bytes], TrafficClass]] = None,
    ) -> None:
        if config is not None and classify is None:
            raise ValueError("bounded QueuePressure requires a classifier")
        self.scope = scope
        self.config = config
        self.classify = classify
        self.depth_gauge = get_gauge(f"queue.{scope}.depth")
        self.hwm_gauge = get_gauge(f"queue.{scope}.hwm")
        self.degraded_gauge = get_gauge(f"queue.{scope}.degraded")
        self.hwm = 0
        self.degraded = False
        self._depth = 0
        self._exit_depth = (config.high_watermark // 2) if config else 0
        self._state_lock = threading.Lock()

    @property
    def bounded(self) -> bool:
        return self.config is not None

    def discard_gauges(self) -> None:
        """Drop this queue's depth/hwm/degraded gauges from the registry.

        Called when the owning loop stops for good: the gauges describe
        a queue that no longer exists, and keeping them exports ghost
        depth/hwm readings to ``/metrics`` after every transport cycle
        (the conn-scoped instrument leak of the §14 bugfix sweep).
        """
        for suffix in ("depth", "hwm", "degraded"):
            discard_gauge(f"queue.{self.scope}.{suffix}")

    @property
    def frame_depth(self) -> int:
        """Frames outstanding, as tracked by :meth:`add_frames`."""
        return self._depth

    def add_frames(self, delta: int) -> int:
        """Adjust the tracked frame depth by ``delta`` (thread-safe).

        Queues that store variable-size bursts per item (the inproc
        shard deque) cannot read their frame depth from ``len()``;
        producers and the consumer keep this locked tally instead.
        Returns the new depth after publishing it via ``note_depth``.
        """
        with self._state_lock:
            depth = self._depth + delta
            if depth < 0:
                depth = 0
            self._depth = depth
        self.note_depth(depth)
        return depth

    def note_depth(self, depth: int) -> None:
        """Publish ``depth`` and drive the degrade state machine."""
        self.depth_gauge.set(depth)
        if depth > self.hwm:
            self.hwm = depth
            self.hwm_gauge.set(depth)
        config = self.config
        if config is None:
            return
        if not self.degraded:
            if depth >= config.high_watermark:
                with self._state_lock:
                    if not self.degraded:
                        self.degraded = True
                        self.degraded_gauge.set(1)
                        get_counter("overload.degrade.enter").incr()
        elif depth <= self._exit_depth:
            with self._state_lock:
                if self.degraded:
                    self.degraded = False
                    self.degraded_gauge.set(0)

    def admit(
        self, frames: List[bytes], depth: int, conn_label: object
    ) -> List[bytes]:
        """Apply the shed policy to an arriving burst.

        ``depth`` is the queue depth the burst would land behind.
        Below the high watermark the burst passes untouched (the fast
        path: one comparison).  Under pressure, control frames are
        always admitted; indications are admitted newest-first (shed
        oldest) up to the remaining room, further clamped to
        ``burst_coalesce`` per burst in the degraded state.  Returns
        the admitted frames in their original order.
        """
        config = self.config
        if config is None:
            return frames
        if not self.degraded and depth + len(frames) <= config.high_watermark:
            return frames
        classify = self.classify
        room = config.max_queue_depth - depth
        budget = min(room, config.burst_coalesce) if self.degraded else room
        keep = [False] * len(frames)
        kept_ind = 0
        dropped = 0
        # Walk newest-to-oldest so "shed oldest first" falls out of the
        # budget running dry.
        for index in range(len(frames) - 1, -1, -1):
            if classify(frames[index]) is TrafficClass.CONTROL:
                keep[index] = True
            elif kept_ind < budget:
                keep[index] = True
                kept_ind += 1
            else:
                dropped += 1
        if not dropped:
            return frames
        count_drop(TrafficClass.INDICATION, conn_label, dropped)
        if self.degraded and room > config.burst_coalesce:
            # Drops forced by burst coalescing rather than the hard
            # depth bound; kept distinct so a dashboard can tell
            # "smoothing bursts" from "queue is full".
            get_counter("overload.coalesced").incr(dropped)
        return [frame for frame, kept in zip(frames, keep) if kept]


class BoundedWorkerPool:
    """Bounded, drop-aware worker pool for indication dispatch.

    Replaces the unbounded ``ThreadPoolExecutor`` hand-off when
    overload discipline is enabled: a submit that would push the
    backlog past the bound drops the indication (counted) instead of
    queueing it forever.  Only indications are submitted here — the
    control plane runs inline on the ingest threads — so the drop
    policy needs no classifier.
    """

    def __init__(
        self, workers: int, max_depth: int, scope: str = "server.pool"
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be > 0, got {workers}")
        self._max_depth = max_depth
        self._queue: Deque[Tuple[Callable, object]] = deque()
        self._cond = threading.Condition()
        self._running = True
        self.pressure = QueuePressure(scope)
        self._threads = [
            threading.Thread(
                target=self._worker_run, name=f"{scope}-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, fn: Callable, event: object) -> bool:
        """Run ``fn(event)`` on a worker; False if dropped at the bound."""
        depth = len(self._queue)
        if depth >= self._max_depth:
            count_drop(
                TrafficClass.INDICATION, getattr(event, "conn_id", "pool"), 1
            )
            self.pressure.note_depth(depth)
            return False
        self._queue.append((fn, event))
        self.pressure.note_depth(depth + 1)
        with self._cond:
            self._cond.notify()
        return True

    def _worker_run(self) -> None:
        queue = self._queue
        while True:
            try:
                fn, event = queue.popleft()
            except IndexError:
                with self._cond:
                    if not queue:
                        if not self._running:
                            return
                        self._cond.wait(timeout=0.1)
                continue
            self.pressure.note_depth(len(queue))
            try:
                fn(event)
            except Exception:  # repro-lint: disable=RL002 — worker survives iApp errors
                get_counter("server.pool.errors").incr()

    def shutdown(self, wait: bool = True, timeout_s: float = 5.0) -> None:
        """Drain and join the workers; loud on a stuck worker.

        A worker that fails to join within ``timeout_s`` (an iApp
        callback blocked forever) is counted in ``transport.stop.stuck``
        and raised as :class:`RuntimeError` — the daemon flag must not
        silently paper over a wedged dispatch thread.
        """
        with self._cond:
            self._running = False
            self._cond.notify_all()
        if not wait:
            return
        stuck: List[str] = []
        for thread in self._threads:
            thread.join(timeout=timeout_s)
            if thread.is_alive():
                get_counter("transport.stop.stuck").incr()
                stuck.append(thread.name)
        self.pressure.discard_gauges()
        if stuck:
            raise RuntimeError(
                f"worker pool shutdown: thread(s) stuck after "
                f"{timeout_s}s: {', '.join(stuck)}"
            )

    def __len__(self) -> int:
        return len(self._queue)


class AdmissionController:
    """Token-bucket + concurrent-cap admission over E2 procedures.

    Setup and subscription requests draw from separate buckets so a
    subscription storm cannot starve node attach.  After a node
    recovery the effective refill rate ramps from ``slow_start_floor``
    of nominal back to nominal over ``slow_start_s`` seconds.
    """

    def __init__(
        self,
        config: OverloadConfig,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._time_fn = time_fn
        self._setup_bucket = TokenBucket(
            config.setup_rate_s, config.setup_burst, time_fn
        )
        self._sub_bucket = TokenBucket(
            config.subscription_rate_s, config.subscription_burst, time_fn
        )
        self._lock = threading.Lock()
        self._pending_subscriptions = 0
        self._slow_until: Optional[float] = None

    def _rate_scale(self) -> float:
        slow_until = self._slow_until
        if slow_until is None:
            return 1.0
        now = self._time_fn()
        if now >= slow_until:
            self._slow_until = None
            return 1.0
        config = self.config
        progress = 1.0 - (slow_until - now) / config.slow_start_s
        floor = config.slow_start_floor
        return floor + (1.0 - floor) * progress

    def admit_setup(self) -> Optional[float]:
        """None if admitted; else a retry-after hint in seconds."""
        scale = self._rate_scale()
        if self._setup_bucket.try_acquire(1.0, scale):
            return None
        get_counter("server.admission.reject.setup").incr()
        hint = self._setup_bucket.time_to_tokens(1.0, scale)
        if hint == float("inf"):
            hint = self.config.slow_start_s
        return max(0.05, min(hint, 30.0))

    def admit_subscription(self) -> bool:
        with self._lock:
            if self._pending_subscriptions >= self.config.max_pending_subscriptions:
                get_counter("server.admission.reject.subscription").incr()
                return False
        if not self._sub_bucket.try_acquire(1.0, self._rate_scale()):
            get_counter("server.admission.reject.subscription").incr()
            return False
        with self._lock:
            self._pending_subscriptions += 1
        return True

    def release_subscription(self) -> None:
        """A pending subscription reached an outcome (confirm/fail)."""
        with self._lock:
            if self._pending_subscriptions > 0:
                self._pending_subscriptions -= 1

    def set_pending(self, pending: int) -> None:
        """Resynchronize the concurrent cap from an exact recount.

        Node loss parks or drops in-flight requests whose outcomes
        will never arrive; the server recounts unconfirmed records
        after the lifecycle transition and installs the exact value so
        the cap cannot leak slots.
        """
        with self._lock:
            self._pending_subscriptions = max(0, int(pending))

    def note_recovery(self) -> None:
        """Begin (or restart) the slow-start ramp after node recovery."""
        with self._lock:
            self._slow_until = self._time_fn() + self.config.slow_start_s
        get_counter("server.admission.slow_start").incr()

    @property
    def in_slow_start(self) -> bool:
        slow_until = self._slow_until
        return slow_until is not None and self._time_fn() < slow_until

    def state(self) -> Dict[str, object]:
        with self._lock:
            pending = self._pending_subscriptions
        scale = self._rate_scale()
        return {
            "setup_tokens": round(self._setup_bucket.available(scale), 3),
            "subscription_tokens": round(self._sub_bucket.available(scale), 3),
            "pending_subscriptions": pending,
            "max_pending_subscriptions": self.config.max_pending_subscriptions,
            "slow_start": self.in_slow_start,
            "rate_scale": round(scale, 4),
        }


class FairShareLimiter:
    """Per-tenant token buckets over controller capacity.

    The NVS guarantee of Appendix B — tenant ``i`` holds share ``q_i``
    of the radio — extended to the controller: tenant ``i``'s bucket
    refills at ``q_i * C`` events/second where ``C`` is the
    provisioned capacity, with a burst window so short spikes inside
    the share pass untouched.  An unknown tenant is not limited (the
    limiter governs declared tenants; admission of undeclared traffic
    is the caller's policy).
    """

    def __init__(
        self,
        capacity_per_s: float,
        shares: Mapping[str, float],
        burst_window_s: float = 0.25,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity_per_s <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity_per_s}")
        self.capacity_per_s = float(capacity_per_s)
        self._buckets: Dict[str, TokenBucket] = {}
        self._shares: Dict[str, float] = {}
        for name, share in shares.items():
            rate = capacity_per_s * float(share)
            self._buckets[name] = TokenBucket(
                rate, max(1.0, rate * burst_window_s), time_fn
            )
            self._shares[name] = float(share)

    def try_acquire(self, tenant: str, n: float = 1.0) -> bool:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            return True
        return bucket.try_acquire(n)

    def state(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant share/rate/tokens snapshot; refreshes gauges."""
        out: Dict[str, Dict[str, float]] = {}
        for name, bucket in self._buckets.items():
            tokens = bucket.available()
            get_gauge(f"overload.tenant.{name}.tokens").set(int(tokens))
            out[name] = {
                "share": self._shares[name],
                "rate_per_s": bucket.rate,
                "tokens": round(tokens, 3),
            }
        return out
