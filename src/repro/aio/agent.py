"""Awaitable xApp/iApp API over the sync server (onos-ric-sdk-py style).

:class:`AsyncAgent` wraps an in-process
:class:`~repro.core.server.server.Server` and re-expresses its
thread-callback contract as coroutines: ``subscribe`` returns an
:class:`AsyncSubscription` usable as ``async for indication in sub``,
``control`` awaits the acknowledge/failure outcome.  The bridge is
one-way hand-offs via ``loop.call_soon_threadsafe`` — transport shard
threads never run user coroutines, and the event loop never blocks on
server internals (slow sync calls run in the default executor).

Backpressure: each subscription buffers up to ``queue_size``
indications.  A slow consumer sheds the *oldest* buffered indication
(counted in ``aio.subscription.shed``) — the newest-data-wins policy
of the overload discipline, applied at the client tier.
"""

from __future__ import annotations

import asyncio
from functools import partial
from typing import Any, List, Optional, Sequence

from repro.core.e2ap.ies import RicActionDefinition
from repro.core.e2ap.messages import (
    E2Message,
    RicControlFailure,
    RicSubscriptionFailure,
)
from repro.core.server.server import Server
from repro.core.server.submgr import SubscriptionCallbacks, SubscriptionRecord
from repro.metrics.counters import get_counter

#: end-of-stream marker pushed into a subscription's queue.
_DONE = object()


class SubscriptionRefused(Exception):
    """The server (or the E2 node) refused the subscription."""

    def __init__(self, failure: RicSubscriptionFailure) -> None:
        super().__init__(f"subscription refused: {failure.cause}")
        self.failure = failure


class ControlFailed(Exception):
    """The E2 node answered a control request with a failure."""

    def __init__(self, failure: RicControlFailure) -> None:
        super().__init__(f"control failed: {failure.cause}")
        self.failure = failure


def _resolve(future: "asyncio.Future", value: Any) -> None:
    if not future.done():
        future.set_result(value)


def _reject(future: "asyncio.Future", exc: Exception) -> None:
    if not future.done():
        future.set_exception(exc)


class AsyncSubscription:
    """One confirmed subscription as an async indication stream.

    Iterate with ``async for event in sub``; the stream ends when the
    subscription is deleted (by :meth:`close` or the server) and raises
    :class:`SubscriptionRefused` if the node tears it down with a
    failure after confirmation.
    """

    def __init__(self, agent: "AsyncAgent", queue_size: int) -> None:
        self._agent = agent
        self._loop = asyncio.get_running_loop()
        self._queue: "asyncio.Queue" = asyncio.Queue(maxsize=max(1, queue_size))
        self._record: Optional[SubscriptionRecord] = None
        self._closed = False
        self._finished = False

    # -- transport-thread side (hand-offs only) ----------------------

    def _from_thread(self, thunk, *args) -> None:
        try:
            self._loop.call_soon_threadsafe(thunk, *args)
        except RuntimeError:
            # The loop is gone (test teardown raced a late callback).
            get_counter("aio.loop_closed").incr()

    def _push(self, item: Any) -> None:
        """Runs on the loop: enqueue, shedding oldest when full."""
        if self._finished:
            return
        if item is _DONE or isinstance(item, Exception):
            self._finished = True
        queue = self._queue
        while queue.full():
            try:
                queue.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - race-free on loop
                break
            get_counter("aio.subscription.shed").incr()
        queue.put_nowait(item)

    # -- consumer side -----------------------------------------------

    def __aiter__(self) -> "AsyncSubscription":
        return self

    async def __anext__(self) -> Any:
        if self._finished and self._queue.empty():
            raise StopAsyncIteration
        item = await self._queue.get()
        if item is _DONE:
            raise StopAsyncIteration
        if isinstance(item, Exception):
            raise item
        return item

    @property
    def record(self) -> Optional[SubscriptionRecord]:
        return self._record

    async def close(self) -> None:
        """Delete the subscription and end the stream."""
        if self._closed:
            return
        self._closed = True
        record = self._record
        if record is not None:
            try:
                await self._loop.run_in_executor(
                    None, partial(self._agent._server.unsubscribe, record)
                )
            except (ConnectionError, KeyError):
                pass  # link already dead: the stream just ends
        self._push(_DONE)


class AsyncAgent:
    """Awaitable fronting for one in-process sync server.

    Async context manager; ``async with AsyncAgent(server) as ric:``
    closes every open subscription on exit.
    """

    def __init__(self, server: Server) -> None:
        self._server = server
        self._subscriptions: List[AsyncSubscription] = []

    @property
    def server(self) -> Server:
        return self._server

    def agents(self):
        return self._server.agents()

    async def wait_agents(self, count: int, timeout_s: float = 5.0):
        """Await at least ``count`` connected agents; returns them."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while True:
            agents = self._server.agents()
            if len(agents) >= count:
                return agents
            if loop.time() >= deadline:
                raise TimeoutError(
                    f"{len(agents)}/{count} agents after {timeout_s}s"
                )
            await asyncio.sleep(0.01)

    async def subscribe(
        self,
        conn_id: int,
        ran_function_id: int,
        event_trigger: bytes = b"",
        actions: Sequence[RicActionDefinition] = (),
        requestor_id: Optional[int] = None,
        queue_size: int = 1024,
        confirm_timeout_s: float = 5.0,
    ) -> AsyncSubscription:
        """Subscribe and await the node's admission.

        Raises :class:`SubscriptionRefused` on a failure outcome and
        :class:`asyncio.TimeoutError` if no outcome arrives in time.
        """
        loop = asyncio.get_running_loop()
        sub = AsyncSubscription(self, queue_size)
        confirmed: "asyncio.Future" = loop.create_future()
        callbacks = SubscriptionCallbacks(
            on_success=lambda response: sub._from_thread(
                _resolve, confirmed, response
            ),
            on_failure=lambda failure: sub._from_thread(
                self._subscription_failed, sub, confirmed, failure
            ),
            on_indication=lambda event: sub._from_thread(sub._push, event),
            on_deleted=lambda response: sub._from_thread(sub._push, _DONE),
        )
        record = await loop.run_in_executor(
            None,
            partial(
                self._server.subscribe,
                conn_id=conn_id,
                ran_function_id=ran_function_id,
                event_trigger=event_trigger,
                actions=list(actions),
                callbacks=callbacks,
                requestor_id=requestor_id,
            ),
        )
        sub._record = record
        await asyncio.wait_for(confirmed, timeout=confirm_timeout_s)
        self._subscriptions.append(sub)
        return sub

    @staticmethod
    def _subscription_failed(
        sub: AsyncSubscription,
        confirmed: "asyncio.Future",
        failure: RicSubscriptionFailure,
    ) -> None:
        """Runs on the loop: route a failure to the right consumer."""
        exc = SubscriptionRefused(failure)
        if not confirmed.done():
            _reject(confirmed, exc)
        else:
            # Post-confirmation teardown: surface it through the stream.
            sub._push(exc)

    async def control(
        self,
        conn_id: int,
        ran_function_id: int,
        header: bytes = b"",
        payload: bytes = b"",
        timeout_s: float = 5.0,
        requestor_id: int = 1,
        raise_on_failure: bool = True,
    ) -> E2Message:
        """Send a control request and await its ack/failure outcome."""
        loop = asyncio.get_running_loop()
        outcome: "asyncio.Future" = loop.create_future()

        def on_outcome(message: E2Message) -> None:
            try:
                loop.call_soon_threadsafe(_resolve, outcome, message)
            except RuntimeError:
                get_counter("aio.loop_closed").incr()

        await loop.run_in_executor(
            None,
            partial(
                self._server.control,
                conn_id,
                ran_function_id,
                header,
                payload,
                on_outcome=on_outcome,
                requestor_id=requestor_id,
            ),
        )
        message = await asyncio.wait_for(outcome, timeout=timeout_s)
        if raise_on_failure and isinstance(message, RicControlFailure):
            raise ControlFailed(message)
        return message

    async def close(self) -> None:
        for sub in list(self._subscriptions):
            await sub.close()
        self._subscriptions.clear()

    async def __aenter__(self) -> "AsyncAgent":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
