"""Asyncio-native server ingest loop (DESIGN.md §15).

The sync :class:`~repro.core.transport.tcp.TcpTransport` runs one
selector thread per shard; an all-async deployment that embeds a
:class:`~repro.core.server.server.Server` next to asyncio iApps then
carries selector threads it never wanted.  :class:`AioServer` accepts
agent connections on the caller's event loop instead: one
``asyncio.Protocol`` per connection feeds the existing
:class:`~repro.core.transport.framing.Framer` + dispatch + overload
machinery — same wire format, same admission behaviour, zero extra
threads.

Dispatch runs inline on the loop thread (the asyncio mirror of "the
owning shard's I/O thread" in the sync design); sends may come from
any thread (iApp worker pools, liveness probes) and are marshalled to
the loop with ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Optional

from repro.core.overload import QueuePressure, frame_classifier
from repro.core.transport.base import DisconnectReason, Endpoint, TransportEvents
from repro.core.transport.framing import (
    Framer,
    FramingError,
    frame_message,
    frame_messages,
)
from repro.metrics.counters import get_counter


class _AioServerEndpoint(Endpoint):
    """Endpoint adapter over one accepted asyncio transport.

    The dispatch layer above (server callbacks, iApps) is written
    against the sync :class:`Endpoint` surface and may send from any
    thread; writes from foreign threads are marshalled onto the event
    loop, where ``transport.write`` is legal.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        transport: asyncio.Transport,
        peer: str,
    ) -> None:
        self._loop = loop
        self._transport = transport
        self._peer = peer
        self._closed = False
        #: resolved by connection_lost after on_disconnected reached
        #: the server; AioServer.stop() awaits these so teardown is
        #: observed, not raced.
        self.closed_fut: asyncio.Future = loop.create_future()

    def _write(self, wire: bytes) -> None:
        if not self._closed and not self._transport.is_closing():
            self._transport.write(wire)

    def _submit(self, wire: bytes) -> None:
        if self._closed:
            raise ConnectionError("endpoint closed")
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop:
            self._write(wire)
        else:
            self._loop.call_soon_threadsafe(self._write, wire)

    def send(self, data: bytes) -> None:
        self._submit(frame_message(data))

    def send_many(self, batch) -> None:
        if not batch:
            return
        self._submit(frame_messages(batch))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._loop.call_soon_threadsafe(self._transport.close)

    @property
    def peer(self) -> str:
        return self._peer

    @property
    def closed(self) -> bool:
        return self._closed


class _AioServerProtocol(asyncio.Protocol):
    """One accepted connection: frame, admit, dispatch — on the loop."""

    def __init__(self, owner: "AioServer") -> None:
        self._owner = owner
        self._events: TransportEvents = owner._events
        self._framer = Framer()
        self._endpoint: Optional[_AioServerEndpoint] = None
        #: per-connection pending disconnect reason (set on a local
        #: protocol-error close, consumed by connection_lost) — kept on
        #: the protocol so concurrent failing connections cannot
        #: misattribute each other's reasons.
        self._disconnect_reason: Optional[DisconnectReason] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP stream
                pass
        info = transport.get_extra_info("peername")
        peer = "%s:%d" % info[:2] if info else "?"
        self._endpoint = _AioServerEndpoint(self._owner._loop, transport, peer)
        self._owner._track(self._endpoint)
        get_counter("aio.server.connections").incr()
        self._events.on_connected(self._endpoint)

    def data_received(self, data: bytes) -> None:
        endpoint = self._endpoint
        assert endpoint is not None
        try:
            messages = self._framer.feed(data)
        except FramingError as exc:
            # Same contract as the sync shard loop: never resynchronize
            # into garbage after a corrupt length prefix.
            get_counter("tcp.close.framing").incr()
            self._disconnect_reason = DisconnectReason(
                DisconnectReason.PROTOCOL, str(exc)
            )
            endpoint.close()
            return
        if not messages:
            return
        get_counter("aio.server.frames").incr(len(messages))
        pressure = self._owner._pressure
        if pressure is not None and pressure.bounded:
            # The drained batch is the queue (mirror of the TCP shard
            # loop): keep control frames, shed oldest indications past
            # the budget, and zero the depth gauge after delivery.
            pressure.note_depth(len(messages))
            messages = pressure.admit(messages, 0, endpoint.peer)
        if messages:
            self._events.deliver(endpoint, messages)
        if pressure is not None and pressure.bounded:
            pressure.note_depth(0)

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        endpoint = self._endpoint
        if endpoint is None:  # pragma: no cover - never connected
            return
        if endpoint.closed:
            reason = self._disconnect_reason or DisconnectReason(
                DisconnectReason.LOCAL
            )
            self._disconnect_reason = None
        elif exc is None:
            reason = DisconnectReason(DisconnectReason.EOF)
        elif isinstance(exc, ConnectionResetError):
            reason = DisconnectReason(DisconnectReason.RESET, str(exc))
        else:
            reason = DisconnectReason(DisconnectReason.ERROR, str(exc))
        endpoint._closed = True
        self._owner._untrack(endpoint)
        self._events.on_disconnected(endpoint, reason)
        if not endpoint.closed_fut.done():
            endpoint.closed_fut.set_result(None)


class AioServer:
    """Accept framed agent connections on an asyncio event loop.

    Wraps an existing :class:`~repro.core.server.server.Server`: the
    server's dispatch pipeline, subscription manager, and overload
    discipline are reused unchanged; only the ingest loop moves from
    selector threads onto the caller's event loop.

    Usage::

        server = Server(config=ServerConfig(...))
        aio = AioServer(server)
        await aio.start()           # bound port in aio.port
        ...
        await aio.stop()
    """

    def __init__(
        self, server, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._server = server
        self._host = host
        self._requested_port = port
        self._events = server.transport_events()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._aio_server: Optional[asyncio.AbstractServer] = None
        self._endpoints: set = set()
        self._endpoints_lock = threading.Lock()
        self._port: Optional[int] = None
        overload = getattr(server, "overload", None)
        self._pressure: Optional[QueuePressure] = (
            QueuePressure("aio.server", overload, frame_classifier(server.codec))
            if overload is not None
            else None
        )

    async def start(self) -> None:
        if self._aio_server is not None:
            raise RuntimeError("AioServer already started")
        self._loop = asyncio.get_running_loop()
        self._aio_server = await self._loop.create_server(
            lambda: _AioServerProtocol(self),
            self._host,
            self._requested_port,
        )
        sockets = self._aio_server.sockets
        self._port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._aio_server is None:
            return
        self._aio_server.close()
        await self._aio_server.wait_closed()
        self._aio_server = None
        with self._endpoints_lock:
            endpoints = list(self._endpoints)
        for endpoint in endpoints:
            endpoint.close()
        # Each close is deferred via call_soon_threadsafe and the
        # transport delivers connection_lost on a later loop iteration,
        # so wait on the per-connection closed futures: on_disconnected
        # has reached the server for every connection before return.
        pending = [ep.closed_fut for ep in endpoints if not ep.closed_fut.done()]
        if pending:
            _done, still_open = await asyncio.wait(pending, timeout=5.0)
            if still_open:  # pragma: no cover - transport never closed
                get_counter("transport.stop.stuck").incr()
        if self._pressure is not None:
            self._pressure.discard_gauges()

    def _track(self, endpoint: _AioServerEndpoint) -> None:
        with self._endpoints_lock:
            self._endpoints.add(endpoint)

    def _untrack(self, endpoint: _AioServerEndpoint) -> None:
        with self._endpoints_lock:
            self._endpoints.discard(endpoint)

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("AioServer not started")
        return self._port

    @property
    def address(self) -> str:
        return f"{self._host}:{self.port}"
