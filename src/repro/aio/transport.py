"""Asyncio framed-TCP endpoint.

Same wire format as :mod:`repro.core.transport.tcp` (length-prefixed
frames via :class:`~repro.core.transport.framing.Framer`), so an
asyncio peer interoperates with the sync selector loops byte-for-byte.
No event callbacks here: asyncio callers pull frames with ``await
endpoint.recv()`` or ``async for frame in endpoint``.
"""

from __future__ import annotations

import asyncio
import socket
from collections import deque
from typing import Deque, Optional, Sequence

from repro.core.transport.framing import Framer, frame_message, frame_messages

#: bytes requested per reader.read call (mirrors TcpTransport.RECV_SIZE).
_READ_SIZE = 256 * 1024


class AioEndpoint:
    """One framed connection over an asyncio stream pair."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._framer = Framer()
        self._pending: Deque[bytes] = deque()
        self._closed = False

    async def send(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionError("endpoint closed")
        self._writer.write(frame_message(data))
        await self._writer.drain()

    async def send_many(self, batch: Sequence[bytes]) -> None:
        """One coalesced write for the batch (mirror of sync send_many)."""
        if not batch:
            return
        if self._closed:
            raise ConnectionError("endpoint closed")
        self._writer.write(frame_messages(batch))
        await self._writer.drain()

    async def recv(self) -> Optional[bytes]:
        """Next complete frame, or ``None`` on orderly EOF.

        A :class:`~repro.core.transport.framing.FramingError` from a
        corrupt length prefix propagates — the caller must kill the
        link rather than resynchronize into garbage.
        """
        while not self._pending:
            chunk = await self._reader.read(_READ_SIZE)
            if not chunk:
                return None
            self._pending.extend(self._framer.feed(chunk))
        return self._pending.popleft()

    def __aiter__(self) -> "AioEndpoint":
        return self

    async def __anext__(self) -> bytes:
        frame = await self.recv()
        if frame is None:
            raise StopAsyncIteration
        return frame

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def peer(self) -> str:
        info = self._writer.get_extra_info("peername")
        if not info:
            return "?"
        return "%s:%d" % info[:2]


async def aio_connect(host: str, port: int, timeout_s: float = 5.0) -> AioEndpoint:
    """Open a framed connection to ``host:port`` (bounded connect)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout_s
    )
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP stream
            pass
    return AioEndpoint(reader, writer)
