"""Asyncio E2-node agent: the wire-speaking half of the async tier.

:class:`AsyncE2Node` is an E2 node written against the event loop
instead of callback threads: it connects to any server (sync,
multiprocess worker, remote) over the framed-TCP wire, performs the
E2 setup handshake, admits subscriptions (surfacing them as awaitable
:class:`AsyncSubscriptionHandle` objects), answers service-query
keepalives, and runs an optional control handler.  ``emit``/
``emit_many`` push indications for an admitted subscription.
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.codec import get_codec
from repro.core.e2ap.ies import GlobalE2NodeId, RanFunctionItem, RicActionAdmitted
from repro.core.e2ap.messages import (
    E2Message,
    E2SetupFailure,
    E2SetupRequest,
    E2SetupResponse,
    RicControlAcknowledge,
    RicControlFailure,
    RicControlRequest,
    RicIndication,
    RicServiceQuery,
    RicServiceUpdate,
    RicSubscriptionDeleteRequest,
    RicSubscriptionDeleteResponse,
    RicSubscriptionRequest,
    RicSubscriptionResponse,
    decode_message,
    encode_message,
)
from repro.core.e2ap.procedures import Cause, CauseKind
from repro.metrics.counters import get_counter
from repro.sm.base import DECODE_ERRORS

from repro.aio.transport import AioEndpoint, aio_connect

#: control handler: (header, payload) -> outcome bytes.  Raise
#: :class:`ControlRejected` to answer with a RicControlFailure.
ControlHandler = Callable[[bytes, bytes], object]


class ControlRejected(Exception):
    """Raised by a control handler to refuse the request."""

    def __init__(self, detail: str = "", value: int = Cause.CONTROL_MESSAGE_INVALID):
        super().__init__(detail or "control rejected")
        self.cause = Cause(CauseKind.RIC_REQUEST, value, detail)


class SetupRefused(Exception):
    """The RIC answered E2 setup with a failure (e.g. admission)."""

    def __init__(self, failure: E2SetupFailure) -> None:
        super().__init__(f"setup refused: {failure.cause}")
        self.failure = failure


class AsyncSubscriptionHandle:
    """One subscription admitted by this node."""

    __slots__ = ("request", "ran_function_id", "event_trigger", "actions")

    def __init__(self, message: RicSubscriptionRequest) -> None:
        self.request = message.request
        self.ran_function_id = message.ran_function_id
        self.event_trigger = message.event_trigger
        self.actions = list(message.actions)

    @property
    def default_action_id(self) -> int:
        return self.actions[0].action_id if self.actions else 1


class AsyncE2Node:
    """Async E2 node agent speaking framed TCP.

    Example::

        node = AsyncE2Node(node_id, functions=[item])
        await node.connect(host, port)
        handle = await node.wait_subscription()
        await node.emit(handle, sequence=0, payload=b"...")
        await node.close()
    """

    def __init__(
        self,
        node_id: GlobalE2NodeId,
        functions: Sequence[RanFunctionItem],
        codec: str = "fb",
        on_control: Optional[ControlHandler] = None,
    ) -> None:
        self.node_id = node_id
        self.functions = list(functions)
        self.codec = get_codec(codec)
        self.on_control = on_control
        self.subscriptions: Dict[Tuple[int, int], AsyncSubscriptionHandle] = {}
        self.indications_sent = 0
        self._endpoint: Optional[AioEndpoint] = None
        self._read_task: Optional["asyncio.Task"] = None
        self._ready: Optional["asyncio.Future"] = None
        self._sub_queue: "asyncio.Queue" = asyncio.Queue()

    # -- lifecycle ---------------------------------------------------

    async def connect(self, host: str, port: int, timeout_s: float = 5.0) -> None:
        """Connect, send E2 setup, await the RIC's response."""
        loop = asyncio.get_running_loop()
        self._endpoint = await aio_connect(host, port, timeout_s)
        self._ready = loop.create_future()
        self._read_task = asyncio.ensure_future(self._read_loop())
        await self._endpoint.send(
            encode_message(
                E2SetupRequest(node_id=self.node_id, ran_functions=self.functions),
                self.codec,
            )
        )
        await asyncio.wait_for(self._ready, timeout=timeout_s)

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except (asyncio.CancelledError, ConnectionError):
                pass
            self._read_task = None
        if self._endpoint is not None:
            await self._endpoint.close()

    async def __aenter__(self) -> "AsyncE2Node":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- subscription / indication surface ---------------------------

    async def wait_subscription(
        self, timeout_s: float = 5.0
    ) -> AsyncSubscriptionHandle:
        """Await the next subscription admitted by this node."""
        return await asyncio.wait_for(self._sub_queue.get(), timeout=timeout_s)

    async def emit(
        self,
        handle: AsyncSubscriptionHandle,
        sequence: int,
        header: bytes = b"",
        payload: bytes = b"",
        action_id: Optional[int] = None,
    ) -> None:
        await self._endpoint.send(self._indication_bytes(
            handle, sequence, header, payload, action_id
        ))
        self.indications_sent += 1

    async def emit_many(
        self,
        handle: AsyncSubscriptionHandle,
        payloads: Sequence[bytes],
        start_sequence: int = 0,
        header: bytes = b"",
        action_id: Optional[int] = None,
    ) -> None:
        """One coalesced write for a burst of indications."""
        frames = [
            self._indication_bytes(
                handle, start_sequence + offset, header, payload, action_id
            )
            for offset, payload in enumerate(payloads)
        ]
        await self._endpoint.send_many(frames)
        self.indications_sent += len(frames)

    def _indication_bytes(
        self,
        handle: AsyncSubscriptionHandle,
        sequence: int,
        header: bytes,
        payload: bytes,
        action_id: Optional[int],
    ) -> bytes:
        message = RicIndication(
            request=handle.request,
            ran_function_id=handle.ran_function_id,
            action_id=handle.default_action_id if action_id is None else action_id,
            sequence=sequence,
            header=header,
            payload=payload,
        )
        return encode_message(message, self.codec)

    # -- read loop ---------------------------------------------------

    async def _read_loop(self) -> None:
        """Decode and dispatch inbound frames until EOF/cancel.

        Not RL004-scoped: asyncio awaits suspend rather than block, and
        cancellation (not a timeout) bounds the loop's lifetime.
        """
        endpoint = self._endpoint
        async for frame in endpoint:
            try:
                message = decode_message(frame, self.codec)
            except DECODE_ERRORS:
                get_counter("agent.rx.decode_error").incr()
                get_counter("decode.contained").incr()
                continue
            await self._dispatch(message)
        # EOF: a pending setup can never complete now.
        if self._ready is not None and not self._ready.done():
            self._ready.set_exception(ConnectionError("link closed during setup"))

    async def _dispatch(self, message: E2Message) -> None:
        if isinstance(message, RicIndication):
            return  # nodes do not consume indications
        if isinstance(message, E2SetupResponse):
            if self._ready is not None and not self._ready.done():
                self._ready.set_result(message)
        elif isinstance(message, E2SetupFailure):
            if self._ready is not None and not self._ready.done():
                self._ready.set_exception(SetupRefused(message))
        elif isinstance(message, RicSubscriptionRequest):
            await self._admit(message)
        elif isinstance(message, RicSubscriptionDeleteRequest):
            self.subscriptions.pop(message.request.as_tuple(), None)
            await self._endpoint.send(
                encode_message(
                    RicSubscriptionDeleteResponse(
                        request=message.request,
                        ran_function_id=message.ran_function_id,
                    ),
                    self.codec,
                )
            )
        elif isinstance(message, RicServiceQuery):
            # Keepalive: answer with the full inventory.
            await self._endpoint.send(
                encode_message(RicServiceUpdate(added=self.functions), self.codec)
            )
        elif isinstance(message, RicControlRequest):
            await self._handle_control(message)

    async def _admit(self, message: RicSubscriptionRequest) -> None:
        handle = AsyncSubscriptionHandle(message)
        self.subscriptions[message.request.as_tuple()] = handle
        await self._endpoint.send(
            encode_message(
                RicSubscriptionResponse(
                    request=message.request,
                    ran_function_id=message.ran_function_id,
                    admitted=[
                        RicActionAdmitted(action.action_id)
                        for action in message.actions
                    ],
                ),
                self.codec,
            )
        )
        self._sub_queue.put_nowait(handle)

    async def _handle_control(self, message: RicControlRequest) -> None:
        outcome: object = b""
        failure: Optional[Cause] = None
        if self.on_control is not None:
            try:
                outcome = self.on_control(message.header, message.payload)
                if inspect.isawaitable(outcome):
                    outcome = await outcome
            except ControlRejected as exc:
                failure = exc.cause
        if not message.ack_requested:
            return
        if failure is not None:
            reply: E2Message = RicControlFailure(
                request=message.request,
                ran_function_id=message.ran_function_id,
                cause=failure,
            )
        else:
            reply = RicControlAcknowledge(
                request=message.request,
                ran_function_id=message.ran_function_id,
                outcome=outcome if isinstance(outcome, bytes) else b"",
            )
        await self._endpoint.send(encode_message(reply, self.codec))
