"""Async-first client tier over the sync E2 core (DESIGN.md §14).

Portable xApp frameworks (onos-ric-sdk-py's ``E2Client``, xDevSM)
expose subscriptions as awaitable streams; the thread-callback
:class:`~repro.core.agent.agent.Agent` cannot express that.  This
package bridges both directions:

* :class:`AsyncAgent` — iApp/xApp side: ``async for indication in
  subscription`` and awaitable control against an in-process
  :class:`~repro.core.server.server.Server`.
* :class:`AsyncE2Node` — E2-node side: an asyncio agent speaking the
  framed-TCP wire protocol to any server (including multiprocess
  workers), for async-native simulators and tests.
* :class:`AioServer` — server side: the asyncio-native ingest loop
  over an in-process :class:`~repro.core.server.server.Server`, so an
  all-async deployment needs no selector threads (DESIGN.md §15).
* :func:`aio_connect` / :class:`AioEndpoint` — the shared framed
  transport primitive.
"""

from repro.aio.agent import (
    AsyncAgent,
    AsyncSubscription,
    ControlFailed,
    SubscriptionRefused,
)
from repro.aio.node import AsyncE2Node, AsyncSubscriptionHandle
from repro.aio.server import AioServer
from repro.aio.transport import AioEndpoint, aio_connect

__all__ = [
    "AioEndpoint",
    "AioServer",
    "AsyncAgent",
    "AsyncE2Node",
    "AsyncSubscription",
    "AsyncSubscriptionHandle",
    "ControlFailed",
    "SubscriptionRefused",
    "aio_connect",
]
