"""Flow-based traffic controller (§6.1.1, Table 3).

Composition per Table 3: iApps forwarding RLC and TC statistics to a
message broker (the Redis stand-in), a TC SM manager relaying control
commands (the REST POST stand-in is exposed through
:meth:`TrafficControllerIApp.expose_rest`), and the xApp that fights
bufferbloat.

The :class:`BufferbloatXapp` implements the three-action logic of the
paper verbatim: "Once the xApp notices that the sojourn time of the
packets belonging to the low-latency flow increase beyond a limit ...
as its first action, it generates a second FIFO queue.  Next, it
creates a 5-tuple filter to segregate the low-latency flow packets from
the rest.  Following, it loads a 5G-BDP pacer ... Lastly, the scheduler
is a simple Round Robin."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.e2ap.ies import RicActionDefinition, RicActionKind
from repro.core.e2ap.messages import RicControlAcknowledge
from repro.core.server.iapp import IApp
from repro.core.server.randb import AgentRecord
from repro.core.server.submgr import SubscriptionCallbacks
from repro.northbound.broker import Broker
from repro.northbound.rest import RestError, RestServer
from repro.sm import rlc_stats, traffic_ctrl
from repro.sm.base import PeriodicTrigger, decode_payload
from repro.sm.traffic_ctrl import FiveTupleMatch
from repro.traffic.flows import FiveTuple


class TrafficControllerIApp(IApp):
    """RLC/TC stats forwarder (broker) + TC SM manager (command relay)."""

    name = "traffic-controller"

    def __init__(
        self,
        broker: Broker,
        sm_codec: str = "fb",
        stats_period_ms: float = 10.0,
    ) -> None:
        super().__init__()
        self.broker = broker
        self.sm_codec = sm_codec
        self.stats_period_ms = stats_period_ms
        self.control_outcomes: List[bool] = []

    def on_agent_connected(self, agent: AgentRecord) -> None:
        for oid, channel in (
            (rlc_stats.INFO.oid, "rlc"),
            (traffic_ctrl.INFO.oid, "tc"),
        ):
            item = agent.function_by_oid(oid)
            if item is None:
                continue
            self.server.subscribe(
                conn_id=agent.conn_id,
                ran_function_id=item.ran_function_id,
                event_trigger=PeriodicTrigger(self.stats_period_ms).to_bytes(self.sm_codec),
                actions=[RicActionDefinition(action_id=1, kind=RicActionKind.REPORT)],
                callbacks=SubscriptionCallbacks(
                    on_indication=lambda event, conn=agent.conn_id, chan=channel: (
                        self._forward(conn, chan, event)
                    )
                ),
            )

    def _forward(self, conn_id: int, channel: str, event) -> None:
        """Decode and publish one stats payload on the broker."""
        from repro.core.codec.base import materialize

        payload = materialize(decode_payload(event.payload, self.sm_codec))
        self.broker.publish(f"ran/{conn_id}/{channel}", payload)

    # -- TC SM command relay -------------------------------------------------

    def _tc_function_id(self, conn_id: int) -> int:
        agent = self.server.randb.agent(conn_id)
        if agent is None:
            raise KeyError(f"unknown agent connection {conn_id}")
        item = agent.function_by_oid(traffic_ctrl.INFO.oid)
        if item is None:
            raise KeyError(f"agent {conn_id} has no TC SM")
        return item.ran_function_id

    def tc_control(self, conn_id: int, rnti: int, bearer_id: int, payload: bytes) -> None:
        """Relay one TC SM control to the targeted bearer pipeline."""
        header = traffic_ctrl.build_target(rnti, bearer_id, self.sm_codec)
        self.server.control(
            conn_id=conn_id,
            ran_function_id=self._tc_function_id(conn_id),
            header=header,
            payload=payload,
            on_outcome=lambda outcome: self.control_outcomes.append(
                isinstance(outcome, RicControlAcknowledge)
            ),
        )

    # -- REST northbound for control submission (Table 3: REST POST) ----------

    def expose_rest(self, rest: RestServer) -> None:
        rest.route("POST", "/tc", self._rest_tc)

    def _rest_tc(self, subpath: str, body: Any) -> Any:
        if not subpath or not isinstance(body, dict):
            raise RestError(400, "usage: POST /tc/<conn_id> with a JSON command")
        conn_id = int(subpath)
        rnti = int(body.get("rnti", 0))
        bearer_id = int(body.get("bearer_id", 0))
        command = body["command"]
        from repro.sm.base import encode_payload

        try:
            self.tc_control(conn_id, rnti, bearer_id, encode_payload(command, self.sm_codec))
        except KeyError as exc:
            raise RestError(404, str(exc)) from exc
        return {"ok": True}


@dataclass
class XappActions:
    """Record of what the xApp did, for assertions and reporting."""

    triggered_at_ms: Optional[float] = None
    queue_added: bool = False
    filter_installed: bool = False
    pacer_loaded: bool = False
    scheduler_set: bool = False


class BufferbloatXapp:
    """The Fig. 11 xApp: detect rising sojourn, segregate and pace.

    Subscribes to the broker's RLC channel; when the monitored bearer's
    sojourn exceeds ``threshold_ms`` it executes the paper's three
    actions (plus installing the round-robin scheduler) through the
    controller's TC command relay.
    """

    VOIP_QUEUE = 2

    def __init__(
        self,
        iapp: TrafficControllerIApp,
        low_latency_flow: FiveTuple,
        threshold_ms: float = 20.0,
        pacer_target_ms: float = 8.0,
    ) -> None:
        self.iapp = iapp
        self.low_latency_flow = low_latency_flow
        self.threshold_ms = threshold_ms
        self.pacer_target_ms = pacer_target_ms
        self.actions = XappActions()
        self._sub = iapp.broker.subscribe("ran/*/rlc", self._on_rlc_stats)

    def _on_rlc_stats(self, channel: str, payload: Dict) -> None:
        if self.actions.triggered_at_ms is not None:
            return
        conn_id = int(channel.split("/")[1])
        for bearer in payload.get("bearers", ()):
            if bearer["sojourn_ms"] < self.threshold_ms:
                continue
            self._act(conn_id, bearer["rnti"], bearer["bearer_id"], payload["tstamp_ms"])
            return

    def _act(self, conn_id: int, rnti: int, bearer_id: int, now_ms: float) -> None:
        codec = self.iapp.sm_codec
        send = lambda payload: self.iapp.tc_control(conn_id, rnti, bearer_id, payload)
        # Action 1: a second FIFO queue.
        send(traffic_ctrl.build_add_queue(self.VOIP_QUEUE, codec))
        self.actions.queue_added = True
        # Action 2: a 5-tuple filter segregating the low-latency flow.
        flow = self.low_latency_flow
        match = FiveTupleMatch(
            src_addr=flow.src_addr,
            dst_addr=flow.dst_addr,
            src_port=flow.src_port,
            dst_port=flow.dst_port,
            protocol=flow.protocol,
        )
        send(traffic_ctrl.build_add_filter(match, self.VOIP_QUEUE, prio=1, codec_name=codec))
        self.actions.filter_installed = True
        # Action 3: the 5G-BDP pacer.
        send(
            traffic_ctrl.build_set_pacer(
                "bdp", {"target_ms": self.pacer_target_ms}, codec
            )
        )
        self.actions.pacer_loaded = True
        # Finally: round-robin over the active queues.
        send(traffic_ctrl.build_set_sched("rr", codec))
        self.actions.scheduler_set = True
        self.actions.triggered_at_ms = now_ms

    @property
    def triggered(self) -> bool:
        return self.actions.triggered_at_ms is not None
