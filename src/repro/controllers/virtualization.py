"""Recursive virtualization controller (§6.2, Fig. 14, Appendix B).

Shares one physical RAN between multiple tenant ("guest") controllers:

* **southbound** it is a normal FlexRIC server facing the real agents;
* **northbound** it *reuses the agent library* as its communication
  interface (the recursion of Fig. 14a), connecting as an E2 agent to
  each tenant's controller via the multi-controller machinery;
* between the two sits a virtualization layer of iApps acting as RAN
  functions towards the agent library: MAC statistics are partitioned
  per tenant (only the tenant's subscribers are revealed, physical
  slice ids are translated back to virtual ids), and the SC SM is
  virtualized with the NVS scaling of Appendix B.

NVS virtualization (Appendix B): a tenant with SLA share ``q`` sees a
virtual network of share 1.  Its virtual capacity slices scale by ``q``
(``c_phys = q * c_virt``); its virtual rate slices keep their reserved
rate but scale the reference rate (``r_ref_phys = r_ref_virt / q``).
Admission control at the virtual level (``sum of virtual shares <= 1``)
then guarantees the tenant can never exceed ``q`` physically — no
coordination between tenants is needed and conflicts are impossible.
Virtual slice ids 0-9 map into disjoint physical ranges per tenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.agent.agent import Agent, AgentConfig
from repro.core.agent.ran_function import ControlOutcome, RanFunction, SubscriptionHandle
from repro.core.agent.reconnect import ReconnectPolicy
from repro.core.e2ap.ies import (
    GlobalE2NodeId,
    NodeKind,
    RicActionAdmitted,
    RicActionDefinition,
    RicActionKind,
    RicActionNotAdmitted,
)
from repro.core.e2ap.procedures import Cause
from repro.core.overload import FairShareLimiter
from repro.core.server.iapp import IApp
from repro.core.server.randb import AgentRecord
from repro.core.server.server import Server, ServerConfig
from repro.core.server.submgr import SubscriptionCallbacks
from repro.core.transport.base import Transport
from repro.metrics.counters import get_counter
from repro.northbound.broker import Broker
from repro.sm import mac_stats, rrc_conf, slice_ctrl
from repro.sm.base import PeriodicTrigger, decode_payload, encode_payload
from repro.sm.slice_ctrl import KIND_CAPACITY, KIND_RATE, SliceConfig

#: Width of each tenant's physical slice-id range; virtual ids 0-9.
_SLICE_RANGE = 10


@dataclass
class TenantConfig:
    """One guest operator sharing the infrastructure."""

    name: str
    share: float                      # SLA: fraction of physical resources
    subscribers: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not 0.0 < self.share <= 1.0:
            raise ValueError(f"tenant share out of (0,1]: {self.share}")


@dataclass
class _TenantState:
    config: TenantConfig
    index: int
    origin: Optional[int] = None          # northbound controller origin
    virtual_slices: Dict[int, SliceConfig] = field(default_factory=dict)
    default_slice_active: bool = True

    @property
    def physical_base(self) -> int:
        return (self.index + 1) * _SLICE_RANGE

    @property
    def default_physical_id(self) -> int:
        return self.physical_base  # virtual "no slice" bucket

    def to_physical_id(self, virtual_id: int) -> int:
        if not 0 <= virtual_id < _SLICE_RANGE:
            raise ValueError(f"virtual slice id out of 0-9: {virtual_id}")
        return self.physical_base + virtual_id

    def to_virtual_id(self, physical_id: int) -> Optional[int]:
        if self.physical_base <= physical_id < self.physical_base + _SLICE_RANGE:
            return physical_id - self.physical_base
        return None

    def virtual_total_share(self, excluding: Optional[int] = None) -> float:
        return sum(
            config.resource_share
            for slice_id, config in self.virtual_slices.items()
            if slice_id != excluding
        )


def virtualize_slice(config: SliceConfig, tenant: _TenantState) -> SliceConfig:
    """Map a tenant's virtual slice into its physical representation.

    Appendix B: capacity shares scale by the SLA ``q``; rate slices
    keep the reserved rate and scale the reference rate down by ``q``
    (i.e. the physical reference grows: ``r_ref_phys = r_ref_virt/q``).
    """
    q = tenant.config.share
    if config.kind == KIND_CAPACITY:
        return SliceConfig(
            slice_id=tenant.to_physical_id(config.slice_id),
            label=f"{tenant.config.name}/{config.label or config.slice_id}",
            kind=KIND_CAPACITY,
            cap=config.cap * q,
            ue_scheduler=config.ue_scheduler,
        )
    return SliceConfig(
        slice_id=tenant.to_physical_id(config.slice_id),
        label=f"{tenant.config.name}/{config.label or config.slice_id}",
        kind=KIND_RATE,
        rate_mbps=config.rate_mbps,
        ref_mbps=config.ref_mbps / q,
        ue_scheduler=config.ue_scheduler,
    )


class _VirtualMacStats(RanFunction):
    """Northbound MAC stats function: per-tenant partitioned reports."""

    def __init__(self, controller: "VirtualizationController", sm_codec: str) -> None:
        info = mac_stats.INFO
        super().__init__(info.default_function_id, info.name, info.oid, info.version)
        self._controller = controller
        self._sm_codec = sm_codec

    def on_subscription(self, handle, event_trigger, actions):
        report = [a for a in actions if a.kind == RicActionKind.REPORT]
        if not report:
            return [], [
                RicActionNotAdmitted(a.action_id, 0, Cause.ACTION_NOT_SUPPORTED)
                for a in actions
            ]
        self.subscriptions[handle.key()] = handle
        return [RicActionAdmitted(a.action_id) for a in report], []

    def push_south_stats(self, tree: Any) -> None:
        """Partition a southbound MAC report and emit per subscription."""
        for handle in list(self.subscriptions.values()):
            tenant = self._controller.tenant_by_origin(handle.origin)
            if tenant is None:
                continue
            if not self._controller.acquire_indication(tenant):
                continue
            ues = []
            for entry in tree["ues"]:
                rnti = entry["rnti"]
                if rnti not in tenant.config.subscribers:
                    continue
                virtual_id = tenant.to_virtual_id(entry["slice_id"])
                rewritten = {key: entry[key] for key in entry.keys()}
                rewritten["slice_id"] = virtual_id if virtual_id is not None else 0
                ues.append(rewritten)
            payload = encode_payload(
                {"ues": ues, "tstamp_ms": tree["tstamp_ms"]}, self._sm_codec
            )
            self.emit(handle, action_id=1, header=b"", payload=payload)


class _VirtualRrc(RanFunction):
    """Northbound RRC conf function: tenant-filtered UE events."""

    def __init__(self, controller: "VirtualizationController", sm_codec: str) -> None:
        info = rrc_conf.INFO
        super().__init__(info.default_function_id, info.name, info.oid, info.version)
        self._controller = controller
        self._sm_codec = sm_codec

    def on_subscription(self, handle, event_trigger, actions):
        report = [a for a in actions if a.kind == RicActionKind.REPORT]
        if not report:
            return [], [
                RicActionNotAdmitted(a.action_id, 0, Cause.ACTION_NOT_SUPPORTED)
                for a in actions
            ]
        self.subscriptions[handle.key()] = handle
        return [RicActionAdmitted(a.action_id) for a in report], []

    def push_event(self, payload: bytes) -> None:
        event = rrc_conf.RrcUeEvent.from_value(decode_payload(payload, self._sm_codec))
        for handle in list(self.subscriptions.values()):
            tenant = self._controller.tenant_by_origin(handle.origin)
            if tenant is None or event.rnti not in tenant.config.subscribers:
                continue
            if not self._controller.acquire_indication(tenant):
                continue
            self.emit(handle, action_id=1, header=b"", payload=payload)


class _VirtualSliceCtrl(RanFunction):
    """Northbound SC SM: Appendix-B virtualization of slice control."""

    def __init__(self, controller: "VirtualizationController", sm_codec: str) -> None:
        info = slice_ctrl.INFO
        super().__init__(info.default_function_id, info.name, info.oid, info.version)
        self._controller = controller
        self._sm_codec = sm_codec

    def on_control(self, origin: int, header: bytes, payload: bytes) -> ControlOutcome:
        tenant = self._controller.tenant_by_origin(origin)
        if tenant is None:
            return ControlOutcome.fail(Cause.ric_request(Cause.ADMISSION_REFUSED, "unknown tenant"))
        if not self._controller.acquire_control(tenant):
            return ControlOutcome.fail(
                Cause.ric_request(
                    Cause.ADMISSION_REFUSED,
                    f"tenant {tenant.config.name!r} control budget exhausted",
                )
            )
        command = decode_payload(payload, self._sm_codec)
        try:
            cmd = command["cmd"]
            if cmd == "set_algo":
                # The physical algorithm is owned by the virtualization
                # layer (always NVS); the tenant's choice is virtual-only.
                return ControlOutcome.ok()
            if cmd == "add_slice":
                config = SliceConfig.from_value(command["slice"])
                return self._controller.tenant_add_slice(tenant, config)
            if cmd == "del_slice":
                return self._controller.tenant_del_slice(tenant, command["slice_id"])
            if cmd == "assoc_ue":
                return self._controller.tenant_assoc_ue(
                    tenant, command["rnti"], command["slice_id"]
                )
            return ControlOutcome.fail(
                Cause.ric_request(Cause.CONTROL_MESSAGE_INVALID, f"unknown cmd {cmd!r}")
            )
        except (KeyError, TypeError) as exc:
            return ControlOutcome.fail(
                Cause.ric_request(Cause.CONTROL_MESSAGE_INVALID, f"malformed: {exc}")
            )
        except ValueError as exc:
            return ControlOutcome.fail(Cause.ric_request(Cause.ADMISSION_REFUSED, str(exc)))


class VirtualizationController:
    """Server southbound, agent-library northbound, NVS virtualization."""

    def __init__(
        self,
        transport: Transport,
        listen_address: str,
        tenants: List[TenantConfig],
        e2ap_codec: str = "fb",
        sm_codec: str = "fb",
        stats_period_ms: float = 100.0,
        node_id: Optional[GlobalE2NodeId] = None,
        stale_grace_s: float = 0.0,
        reconnect: Optional[ReconnectPolicy] = None,
        controller_ind_capacity_s: float = 0.0,
        controller_ctrl_capacity_s: float = 0.0,
    ) -> None:
        total = sum(tenant.share for tenant in tenants)
        if total > 1.0 + 1e-9:
            raise ValueError(f"tenant SLAs exceed the infrastructure: {total:.3f} > 1")
        # The NVS share math extended from radio resources to this
        # controller's own capacity (DESIGN.md §13): tenant ``i`` may
        # draw at most ``q_i * C`` indication emissions / control
        # executions per second.  0 (default) disables the limiters.
        shares = {tenant.name: tenant.share for tenant in tenants}
        self.ind_limiter = (
            FairShareLimiter(controller_ind_capacity_s, shares)
            if controller_ind_capacity_s > 0
            else None
        )
        self.ctrl_limiter = (
            FairShareLimiter(controller_ctrl_capacity_s, shares)
            if controller_ctrl_capacity_s > 0
            else None
        )
        self.sm_codec = sm_codec
        self.stats_period_ms = stats_period_ms
        self.transport = transport
        # ``stale_grace_s`` lets a flapping base station keep its NVS
        # slice state and tenant subscriptions across short outages
        # instead of re-bootstrapping the whole virtualization layer.
        self.server = Server(
            ServerConfig(
                ric_id=90, e2ap_codec=e2ap_codec, stale_grace_s=stale_grace_s
            )
        )
        self.server.listen(transport, listen_address)
        self._tenants: Dict[str, _TenantState] = {
            tenant.name: _TenantState(config=tenant, index=index)
            for index, tenant in enumerate(tenants)
        }
        self._by_origin: Dict[int, _TenantState] = {}
        self.agent = Agent(
            AgentConfig(
                node_id=node_id or GlobalE2NodeId("00199", 900, NodeKind.GNB),
                e2ap_codec=e2ap_codec,
            ),
            transport=transport,
        )
        if reconnect is not None:
            # Northbound legs to tenant controllers self-heal: the
            # agent journal replays each tenant's virtual subscriptions
            # after re-attachment.
            self.agent.enable_reconnect(reconnect)
        self.virt_mac = _VirtualMacStats(self, sm_codec)
        self.virt_rrc = _VirtualRrc(self, sm_codec)
        self.virt_sc = _VirtualSliceCtrl(self, sm_codec)
        for function in (self.virt_mac, self.virt_rrc, self.virt_sc):
            self.agent.register_function(function)
        self._south_conn: Optional[int] = None
        self._ue_tenant_assoc: Dict[int, int] = {}  # rnti -> physical slice id
        self.server.events.subscribe("agent_connected", self._on_south_agent)

    # -- tenant lookups -------------------------------------------------

    def tenant_by_origin(self, origin: int) -> Optional[_TenantState]:
        return self._by_origin.get(origin)

    def tenant(self, name: str) -> _TenantState:
        return self._tenants[name]

    # -- per-tenant fair shares over controller capacity ---------------

    def acquire_indication(self, tenant: _TenantState) -> bool:
        """Charge one indication emission to the tenant's fair share."""
        limiter = self.ind_limiter
        if limiter is None or limiter.try_acquire(tenant.config.name):
            return True
        get_counter(f"overload.tenant.{tenant.config.name}.ind_drops").incr()
        return False

    def acquire_control(self, tenant: _TenantState) -> bool:
        """Charge one control execution to the tenant's fair share."""
        limiter = self.ctrl_limiter
        if limiter is None or limiter.try_acquire(tenant.config.name):
            return True
        get_counter(f"overload.tenant.{tenant.config.name}.ctrl_rejects").incr()
        return False

    def tenant_rate_state(self) -> Dict[str, Any]:
        """Per-tenant rate-limit snapshot for the northbound routes."""
        return {
            "indications": self.ind_limiter.state() if self.ind_limiter else None,
            "controls": self.ctrl_limiter.state() if self.ctrl_limiter else None,
        }

    def connect_tenant(self, name: str, controller_address: str) -> int:
        """Attach northbound to one tenant's controller (E2 recursion)."""
        state = self._tenants[name]
        origin = self.agent.connect(controller_address)
        state.origin = origin
        self._by_origin[origin] = state
        return origin

    # -- southbound bootstrap ----------------------------------------------

    def _on_south_agent(self, record: AgentRecord) -> None:
        """A real base station connected: install NVS + default slices,
        and subscribe to its MAC stats and RRC events."""
        if self._south_conn is not None:
            return  # single southbound entity per controller instance
        self._south_conn = record.conn_id
        sc_item = record.function_by_oid(slice_ctrl.INFO.oid)
        if sc_item is None:
            raise RuntimeError("southbound node lacks the SC SM")
        self._sc_fid = sc_item.ran_function_id
        self._south_control(slice_ctrl.build_set_algo(slice_ctrl.ALGO_NVS, self.sm_codec))
        # Install every tenant's default slice in one coalesced burst.
        self.server.control_many(
            conn_id=self._south_conn,
            ran_function_id=self._sc_fid,
            payloads=[
                slice_ctrl.build_add_slice(
                    SliceConfig(
                        slice_id=state.default_physical_id,
                        label=f"{state.config.name}/default",
                        kind=KIND_CAPACITY,
                        cap=state.config.share,
                    ),
                    self.sm_codec,
                )
                for state in self._tenants.values()
            ],
        )
        mac_item = record.function_by_oid(mac_stats.INFO.oid)
        if mac_item is not None:
            self.server.subscribe(
                conn_id=record.conn_id,
                ran_function_id=mac_item.ran_function_id,
                event_trigger=PeriodicTrigger(self.stats_period_ms).to_bytes(self.sm_codec),
                actions=[RicActionDefinition(action_id=1, kind=RicActionKind.REPORT)],
                callbacks=SubscriptionCallbacks(on_indication=self._on_south_mac),
            )
        rrc_item = record.function_by_oid(rrc_conf.INFO.oid)
        if rrc_item is not None:
            self.server.subscribe(
                conn_id=record.conn_id,
                ran_function_id=rrc_item.ran_function_id,
                event_trigger=PeriodicTrigger(0.0).to_bytes(self.sm_codec),
                actions=[RicActionDefinition(action_id=1, kind=RicActionKind.REPORT)],
                callbacks=SubscriptionCallbacks(on_indication=self._on_south_rrc),
            )

    def _south_control(self, payload: bytes) -> None:
        if self._south_conn is None:
            raise RuntimeError("no southbound agent connected")
        self.server.control(
            conn_id=self._south_conn,
            ran_function_id=self._sc_fid,
            header=b"",
            payload=payload,
        )

    def _on_south_mac(self, event) -> None:
        from repro.core.codec.base import materialize

        tree = materialize(decode_payload(event.payload, self.sm_codec))
        self.virt_mac.push_south_stats(tree)

    def _on_south_rrc(self, event) -> None:
        ue_event = rrc_conf.RrcUeEvent.from_value(
            decode_payload(event.payload, self.sm_codec)
        )
        if ue_event.event == rrc_conf.EVENT_ATTACH:
            self._place_new_ue(ue_event.rnti)
        self.virt_rrc.push_event(bytes(event.payload))

    def _place_new_ue(self, rnti: int) -> None:
        """Associate an arriving subscriber with its tenant's default
        physical slice (until the tenant dictates otherwise)."""
        for state in self._tenants.values():
            if rnti in state.config.subscribers and state.default_slice_active:
                self._south_control(
                    slice_ctrl.build_assoc_ue(
                        rnti, state.default_physical_id, self.sm_codec
                    )
                )
                self._ue_tenant_assoc[rnti] = state.default_physical_id
                return

    def register_existing_ue(self, rnti: int) -> None:
        """Place a UE that attached before the controller connected."""
        self._place_new_ue(rnti)

    # -- tenant operations (invoked by the virtual SC SM) --------------------

    def tenant_add_slice(self, tenant: _TenantState, config: SliceConfig) -> ControlOutcome:
        # Virtual admission control: the tenant's own network is share 1.
        new_total = tenant.virtual_total_share(excluding=config.slice_id) + config.resource_share
        if new_total > 1.0 + 1e-9:
            return ControlOutcome.fail(
                Cause.ric_request(
                    Cause.ADMISSION_REFUSED,
                    f"virtual shares {new_total:.3f} exceed the tenant network",
                )
            )
        tenant.virtual_slices[config.slice_id] = config
        # Shrink the default slice *first* so the physical admission
        # check (sum of shares <= 1) holds at every step.
        self._resize_default_slice(tenant)
        self._south_control(
            slice_ctrl.build_add_slice(virtualize_slice(config, tenant), self.sm_codec)
        )
        return ControlOutcome.ok()

    def tenant_del_slice(self, tenant: _TenantState, virtual_id: int) -> ControlOutcome:
        if virtual_id not in tenant.virtual_slices:
            return ControlOutcome.fail(
                Cause.ric_request(Cause.CONTROL_MESSAGE_INVALID, f"unknown slice {virtual_id}")
            )
        del tenant.virtual_slices[virtual_id]
        self._south_control(
            slice_ctrl.build_del_slice(tenant.to_physical_id(virtual_id), self.sm_codec)
        )
        self._resize_default_slice(tenant)
        return ControlOutcome.ok()

    def tenant_assoc_ue(
        self, tenant: _TenantState, rnti: int, virtual_id: int
    ) -> ControlOutcome:
        if rnti not in tenant.config.subscribers:
            return ControlOutcome.fail(
                Cause.ric_request(Cause.ADMISSION_REFUSED, f"UE {rnti} is not a subscriber")
            )
        physical_id = tenant.to_physical_id(virtual_id)
        self._south_control(slice_ctrl.build_assoc_ue(rnti, physical_id, self.sm_codec))
        self._ue_tenant_assoc[rnti] = physical_id
        return ControlOutcome.ok()

    def _resize_default_slice(self, tenant: _TenantState) -> None:
        """Shrink/grow the tenant's default slice so its sub-slices plus
        the default never exceed the SLA share."""
        q = tenant.config.share
        used = tenant.virtual_total_share() * q
        remaining = q - used
        if remaining <= 0.01:  # sub-1 % leftovers are not worth a slice
            if tenant.default_slice_active:
                self._south_control(
                    slice_ctrl.build_del_slice(tenant.default_physical_id, self.sm_codec)
                )
                tenant.default_slice_active = False
        else:
            config = SliceConfig(
                slice_id=tenant.default_physical_id,
                label=f"{tenant.config.name}/default",
                kind=KIND_CAPACITY,
                cap=remaining,
            )
            if tenant.default_slice_active:
                self._south_control(slice_ctrl.build_add_slice(config, self.sm_codec))
            else:
                self._south_control(slice_ctrl.build_add_slice(config, self.sm_codec))
                tenant.default_slice_active = True
