"""RAT-unaware slicing controller (§6.1.2, Table 4).

Composition per Table 4: an internal DB for RAN statistics (cf. the
FlexRAN RIB), an SC SM manager relaying commands, and a REST (GET/POST)
northbound driven by a command-line xApp (curl).  The controller
discovers the UE-to-service association through the RRC conf SM (PLMN /
S-NSSAI carried in attach events) and stays oblivious of the RAT — the
same instance drives 4G and 5G nodes (used over LTE in Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.e2ap.ies import RicActionDefinition, RicActionKind
from repro.core.e2ap.messages import RicControlAcknowledge
from repro.core.server.iapp import IApp
from repro.core.server.randb import AgentRecord
from repro.core.server.submgr import SubscriptionCallbacks
from repro.northbound.rest import RestError, RestServer
from repro.sm import mac_stats, rrc_conf, slice_ctrl
from repro.sm.base import PeriodicTrigger, decode_payload
from repro.sm.slice_ctrl import SliceConfig


@dataclass
class UeInfo:
    """Discovered UE association state."""

    rnti: int
    plmn: str
    snssai: int
    slice_id: Optional[int] = None


class SlicingControllerIApp(IApp):
    """SC SM manager + RAN statistics DB + REST relay."""

    name = "slicing-controller"

    def __init__(self, sm_codec: str = "fb", stats_period_ms: float = 100.0) -> None:
        super().__init__()
        self.sm_codec = sm_codec
        self.stats_period_ms = stats_period_ms
        #: conn_id -> latest decoded MAC stats payload.
        self.mac_db: Dict[int, Any] = {}
        #: (conn_id, rnti) -> UeInfo discovered through RRC events.
        self.ues: Dict[Tuple[int, int], UeInfo] = {}
        #: per conn: configured slices.
        self.slices: Dict[int, Dict[int, SliceConfig]] = {}
        self.control_outcomes: List[bool] = []
        #: optional hook fired on each UE attach (conn_id, UeInfo).
        self.on_ue_attach: Optional[Callable[[int, UeInfo], None]] = None

    # -- lifecycle -------------------------------------------------------

    def on_attached(self) -> None:
        self.server.memory.track("slicing-db", lambda: self.mac_db)

    def on_agent_connected(self, agent: AgentRecord) -> None:
        mac_item = agent.function_by_oid(mac_stats.INFO.oid)
        if mac_item is not None:
            self.server.subscribe(
                conn_id=agent.conn_id,
                ran_function_id=mac_item.ran_function_id,
                event_trigger=PeriodicTrigger(self.stats_period_ms).to_bytes(self.sm_codec),
                actions=[RicActionDefinition(action_id=1, kind=RicActionKind.REPORT)],
                callbacks=SubscriptionCallbacks(
                    on_indication=lambda event, conn=agent.conn_id: self._on_mac_stats(
                        conn, event
                    )
                ),
            )
        rrc_item = agent.function_by_oid(rrc_conf.INFO.oid)
        if rrc_item is not None:
            self.server.subscribe(
                conn_id=agent.conn_id,
                ran_function_id=rrc_item.ran_function_id,
                event_trigger=PeriodicTrigger(0.0).to_bytes(self.sm_codec),
                actions=[RicActionDefinition(action_id=1, kind=RicActionKind.REPORT)],
                callbacks=SubscriptionCallbacks(
                    on_indication=lambda event, conn=agent.conn_id: self._on_rrc_event(
                        conn, event
                    )
                ),
            )

    def _on_mac_stats(self, conn_id: int, event) -> None:
        self.mac_db[conn_id] = decode_payload(event.payload, self.sm_codec)

    def _on_rrc_event(self, conn_id: int, event) -> None:
        ue_event = rrc_conf.parse_event(event.payload, self.sm_codec)
        key = (conn_id, ue_event.rnti)
        if ue_event.event == rrc_conf.EVENT_ATTACH:
            info = UeInfo(rnti=ue_event.rnti, plmn=ue_event.plmn, snssai=ue_event.snssai)
            self.ues[key] = info
            if self.on_ue_attach is not None:
                self.on_ue_attach(conn_id, info)
        else:
            self.ues.pop(key, None)

    # -- SC SM command relay -----------------------------------------------

    def _sc_function_id(self, conn_id: int) -> int:
        agent = self.server.randb.agent(conn_id)
        if agent is None:
            raise KeyError(f"unknown agent connection {conn_id}")
        item = agent.function_by_oid(slice_ctrl.INFO.oid)
        if item is None:
            raise KeyError(f"agent {conn_id} has no SC SM")
        return item.ran_function_id

    def _send_control(self, conn_id: int, payload: bytes) -> None:
        self.server.control(
            conn_id=conn_id,
            ran_function_id=self._sc_function_id(conn_id),
            header=b"",
            payload=payload,
            on_outcome=lambda outcome: self.control_outcomes.append(
                isinstance(outcome, RicControlAcknowledge)
            ),
        )

    def set_algorithm(self, conn_id: int, algo: str) -> None:
        self._send_control(conn_id, slice_ctrl.build_set_algo(algo, self.sm_codec))

    def add_slice(self, conn_id: int, config: SliceConfig) -> None:
        self._send_control(conn_id, slice_ctrl.build_add_slice(config, self.sm_codec))
        self.slices.setdefault(conn_id, {})[config.slice_id] = config

    def delete_slice(self, conn_id: int, slice_id: int) -> None:
        self._send_control(conn_id, slice_ctrl.build_del_slice(slice_id, self.sm_codec))
        self.slices.get(conn_id, {}).pop(slice_id, None)

    def associate_ue(self, conn_id: int, rnti: int, slice_id: int) -> None:
        self._send_control(conn_id, slice_ctrl.build_assoc_ue(rnti, slice_id, self.sm_codec))
        info = self.ues.get((conn_id, rnti))
        if info is not None:
            info.slice_id = slice_id

    @property
    def last_control_ok(self) -> Optional[bool]:
        return self.control_outcomes[-1] if self.control_outcomes else None

    # -- REST northbound -----------------------------------------------------

    def expose_rest(self, rest: RestServer) -> None:
        """Install the Table-4 GET/POST routes on ``rest``."""
        rest.route("GET", "/nodes", self._rest_nodes)
        rest.route("GET", "/stats", self._rest_stats)
        rest.route("GET", "/ues", self._rest_ues)
        rest.route("POST", "/slice", self._rest_slice)

    def _rest_nodes(self, subpath: str, body: Any) -> Any:
        return [
            {
                "conn_id": agent.conn_id,
                "plmn": agent.node_id.plmn,
                "nb_id": agent.node_id.nb_id,
                "kind": agent.node_id.kind.name,
                "functions": sorted(agent.functions),
            }
            for agent in self.server.agents()
        ]

    def _rest_stats(self, subpath: str, body: Any) -> Any:
        if not subpath:
            raise RestError(400, "usage: GET /stats/<conn_id>")
        conn_id = int(subpath)
        stats = self.mac_db.get(conn_id)
        if stats is None:
            raise RestError(404, f"no stats for connection {conn_id}")
        from repro.core.codec.base import materialize

        return materialize(stats)

    def _rest_ues(self, subpath: str, body: Any) -> Any:
        return [
            {
                "conn_id": conn_id,
                "rnti": info.rnti,
                "plmn": info.plmn,
                "snssai": info.snssai,
                "slice_id": info.slice_id,
            }
            for (conn_id, _rnti), info in sorted(self.ues.items())
        ]

    def _rest_slice(self, subpath: str, body: Any) -> Any:
        if not subpath:
            raise RestError(400, "usage: POST /slice/<conn_id>")
        conn_id = int(subpath)
        if not isinstance(body, dict):
            raise RestError(400, "JSON body required")
        try:
            if "algo" in body:
                self.set_algorithm(conn_id, body["algo"])
            if "slice" in body:
                self.add_slice(conn_id, SliceConfig.from_value(body["slice"]))
            if "delete" in body:
                self.delete_slice(conn_id, int(body["delete"]))
            if "assoc" in body:
                self.associate_ue(conn_id, int(body["assoc"]["rnti"]), int(body["assoc"]["slice_id"]))
        except KeyError as exc:
            raise RestError(404, str(exc)) from exc
        return {"ok": True}
