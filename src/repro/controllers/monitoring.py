"""Monitoring controller: subscribe-and-store statistics iApp.

The Fig. 8 workload: "a statistics iApp that saves incoming messages to
an in-memory data structure, similar to FlexRAN".  The store keeps the
*raw* SM payload bytes plus the cheap header scalars — decoding happens
only when a consumer asks (:meth:`StatsStore.latest_decoded`), which is
the event-driven/lazy design the paper contrasts with FlexRAN's
poll-and-decode loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.e2ap.ies import RicActionDefinition, RicActionKind
from repro.core.server import events as topics
from repro.core.server.iapp import IApp
from repro.core.server.randb import AgentRecord
from repro.core.server.submgr import SubscriptionCallbacks
from repro.metrics.trace import TRACER as _TRACER
from repro.sm.base import PeriodicTrigger, decode_payload


@dataclass
class StoredIndication:
    """One stored indication: header scalars + raw payload bytes."""

    conn_id: int
    ran_function_id: int
    sequence: int
    payload: bytes


class StatsStore:
    """Bounded in-memory store of indications, keyed by (conn, oid)."""

    def __init__(self, history: int = 16) -> None:
        self.history = history
        self._data: Dict[Tuple[int, str], Deque[StoredIndication]] = {}
        self.total_stored = 0

    def put(self, conn_id: int, oid: str, item: StoredIndication) -> None:
        key = (conn_id, oid)
        bucket = self._data.get(key)
        if bucket is None:
            bucket = deque(maxlen=self.history)
            self._data[key] = bucket
        bucket.append(item)
        self.total_stored += 1

    def latest(self, conn_id: int, oid: str) -> Optional[StoredIndication]:
        bucket = self._data.get((conn_id, oid))
        return bucket[-1] if bucket else None

    def latest_decoded(self, conn_id: int, oid: str, sm_codec: str) -> Optional[Any]:
        """Decode the newest payload on demand (lazy consumption)."""
        item = self.latest(conn_id, oid)
        if item is None:
            return None
        return decode_payload(item.payload, sm_codec)

    def series(self, conn_id: int, oid: str) -> List[StoredIndication]:
        return list(self._data.get((conn_id, oid), ()))

    def keys(self) -> List[Tuple[int, str]]:
        return sorted(self._data)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._data.values())


class StatsMonitorIApp(IApp):
    """Subscribes to statistics SMs on every connecting agent.

    ``oids`` lists the service models of interest; a periodic report
    subscription is sent for each matching RAN function as soon as an
    agent announces it (the event-driven pattern of §4.2.2).
    """

    name = "stats-monitor"

    def __init__(
        self,
        oids: List[str],
        period_ms: float = 1.0,
        sm_codec: str = "fb",
        store: Optional[StatsStore] = None,
    ) -> None:
        super().__init__()
        self.oids = list(oids)
        self.period_ms = period_ms
        self.sm_codec = sm_codec
        self.store = store or StatsStore()
        self.indications_received = 0
        self.subscriptions_confirmed = 0
        self.subscription_failures = 0
        self.nodes_stale = 0
        self.nodes_recovered = 0
        self._oid_by_request: Dict[Tuple[int, int], Tuple[int, str]] = {}

    def on_attached(self) -> None:
        self.server.memory.track("stats-store", lambda: self.store)
        self.server.events.subscribe(topics.NODE_STALE, self._node_stale)
        self.server.events.subscribe(topics.NODE_RECOVERED, self._node_recovered)

    def on_agent_connected(self, agent: AgentRecord) -> None:
        for oid in self.oids:
            item = agent.function_by_oid(oid)
            if item is None:
                continue
            trigger = PeriodicTrigger(self.period_ms).to_bytes(self.sm_codec)
            actions = [RicActionDefinition(action_id=1, kind=RicActionKind.REPORT)]
            record = self.server.subscribe(
                conn_id=agent.conn_id,
                ran_function_id=item.ran_function_id,
                event_trigger=trigger,
                actions=actions,
                callbacks=SubscriptionCallbacks(
                    on_success=lambda response: self._confirmed(),
                    on_indication=self._store_indication,
                ),
            )
            key = record.request.as_tuple()
            self._oid_by_request[key] = (agent.conn_id, oid)
            # Terminal failure (grace window expired, or the node
            # rejected the request): release the routing entry.
            record.callbacks.on_failure = (
                lambda failure, key=key: self._sub_failed(key)
            )

    def _confirmed(self) -> None:
        self.subscriptions_confirmed += 1

    def _sub_failed(self, key: Tuple[int, int]) -> None:
        self.subscription_failures += 1
        self._oid_by_request.pop(key, None)

    def _node_stale(self, agent: AgentRecord) -> None:
        self.nodes_stale += 1

    def _node_recovered(self, agent: AgentRecord) -> None:
        """Resynced node: the subscriptions kept their request ids but
        moved to a fresh connection — re-key the store routing so new
        indications land under the revived connection id."""
        self.nodes_recovered += 1
        for key, (conn_id, oid) in list(self._oid_by_request.items()):
            record = self.server.submgr.lookup(*key)
            if record is not None and record.conn_id != conn_id:
                self._oid_by_request[key] = (record.conn_id, oid)

    def stage_breakdown(self) -> Dict[str, dict]:
        """Per-stage latency snapshots of the traced indication path.

        Empty unless :mod:`repro.metrics.trace` is enabled; the stages
        (encode/frame/send/recv/decode/dispatch) are the decomposition
        the Fig. 9b monitoring comparison reports per component.
        """
        return _TRACER.stage_breakdown()

    def overload_state(self) -> Dict[str, dict]:
        """The attached server's overload snapshot (DESIGN.md §13).

        Drop counters, queue depth/watermark gauges and admission
        state, in the same JSON shape the ``/metrics/overload`` REST
        route serves — so an operator xApp polling this iApp sees
        degradation (shed indications, refused setups) as it happens.
        """
        return self.server.overload_state()

    def _store_indication(self, event) -> None:
        self.indications_received += 1
        key = (event.requestor_id, event.instance_id)
        conn_oid = self._oid_by_request.get(key)
        if conn_oid is None:
            return
        conn_id, oid = conn_oid
        self.store.put(
            conn_id,
            oid,
            StoredIndication(
                conn_id=conn_id,
                ran_function_id=event.ran_function_id,
                sequence=event.sequence,
                payload=event.payload,
            ),
        )
