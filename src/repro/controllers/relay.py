"""Relaying controller: two-hop message path (§5.4, Fig. 9a).

"In FlexRIC, we use a relaying controller to emulate two hops, which,
unlike O-RAN RIC, is not imposed by FlexRIC but added to carry out a
fair comparison."  The relay is the simplest instance of the recursive
pattern: a server towards the real agent and an agent towards the
upstream controller, with a forwarding RAN function that proxies one
service model 1:1 (subscriptions down, indications up, controls down).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.agent.agent import Agent, AgentConfig
from repro.core.agent.ran_function import ControlOutcome, RanFunction, SubscriptionHandle
from repro.core.agent.reconnect import ReconnectPolicy
from repro.core.e2ap.ies import (
    GlobalE2NodeId,
    NodeKind,
    RicActionAdmitted,
    RicActionDefinition,
    RicActionKind,
    RicActionNotAdmitted,
)
from repro.core.e2ap.procedures import Cause
from repro.core.server.randb import AgentRecord
from repro.core.server.server import Server, ServerConfig
from repro.core.server.submgr import SubscriptionCallbacks
from repro.core.transport.base import Transport


class ForwardingFunction(RanFunction):
    """Proxies one service model between upstream and southbound."""

    def __init__(self, relay: "RelayController", oid: str, name: str, function_id: int) -> None:
        super().__init__(function_id, name, oid)
        self._relay = relay

    def on_subscription(
        self,
        handle: SubscriptionHandle,
        event_trigger: bytes,
        actions: List[RicActionDefinition],
    ):
        south = self._relay.south_function(self.oid)
        if south is None:
            return [], [
                RicActionNotAdmitted(a.action_id, 0, Cause.FUNCTION_RESOURCE_LIMIT)
                for a in actions
            ]
        conn_id, function_id = south
        self._relay.server.subscribe(
            conn_id=conn_id,
            ran_function_id=function_id,
            event_trigger=bytes(event_trigger),
            actions=list(actions),
            callbacks=SubscriptionCallbacks(
                on_indication=lambda event, h=handle: self._relay_indication(h, event)
            ),
        )
        self.subscriptions[handle.key()] = handle
        return [RicActionAdmitted(a.action_id) for a in actions], []

    def _relay_indication(self, handle: SubscriptionHandle, event) -> None:
        self.emit(
            handle,
            action_id=event.action_id,
            header=bytes(event.header),
            payload=bytes(event.payload),
            kind=event.kind,
        )

    def on_control(self, origin: int, header: bytes, payload: bytes) -> ControlOutcome:
        south = self._relay.south_function(self.oid)
        if south is None:
            return ControlOutcome.fail(
                Cause.ric_service(Cause.FUNCTION_RESOURCE_LIMIT, "no southbound function")
            )
        conn_id, function_id = south
        self._relay.server.control(
            conn_id=conn_id,
            ran_function_id=function_id,
            header=bytes(header),
            payload=bytes(payload),
        )
        return ControlOutcome.ok()


class RelayController:
    """Server southbound + agent northbound, forwarding listed SMs."""

    def __init__(
        self,
        transport: Transport,
        listen_address: str,
        forward: List[Tuple[str, str, int]],
        e2ap_codec: str = "fb",
        node_id: Optional[GlobalE2NodeId] = None,
        stale_grace_s: float = 0.0,
        reconnect: Optional[ReconnectPolicy] = None,
    ) -> None:
        """``forward`` lists (oid, name, function_id) triples to proxy.

        ``stale_grace_s`` keeps southbound nodes (and their relayed
        subscriptions) parked across short outages; ``reconnect`` arms
        the northbound agent leg with automatic backoff re-attachment,
        so a mid-chain controller heals both of its hops.
        """
        self.server = Server(
            ServerConfig(
                ric_id=80, e2ap_codec=e2ap_codec, stale_grace_s=stale_grace_s
            )
        )
        self.server.listen(transport, listen_address)
        self.agent = Agent(
            AgentConfig(
                node_id=node_id or GlobalE2NodeId("00198", 800, NodeKind.GNB),
                e2ap_codec=e2ap_codec,
            ),
            transport=transport,
        )
        if reconnect is not None:
            self.agent.enable_reconnect(reconnect)
        self.functions: Dict[str, ForwardingFunction] = {}
        for oid, name, function_id in forward:
            function = ForwardingFunction(self, oid, name, function_id)
            self.agent.register_function(function)
            self.functions[oid] = function

    def connect_upstream(self, address: str) -> int:
        """Attach to the upstream controller (hop 2)."""
        return self.agent.connect(address)

    def connect_upstream_async(self, address: str) -> int:
        """Start attaching upstream without waiting for E2 setup.

        For single-threaded harnesses that drive the shared transport
        inline: the setup exchange completes as the caller steps the
        event loop.
        """
        return self.agent.connect_async(address)

    def south_function(self, oid: str) -> Optional[Tuple[int, int]]:
        """(conn_id, function_id) of the first southbound agent
        exposing ``oid``, or None."""
        matches = self.server.randb.agents_with_oid(oid)
        if not matches:
            return None
        record, item = matches[0]
        return record.conn_id, item.ran_function_id
