"""Controller specializations built on the FlexRIC SDK (§6).

Each module composes the server library, iApps and (optionally) a
northbound communication interface into a service-oriented controller:

* :mod:`repro.controllers.monitoring` — statistics collection into an
  in-memory store (the Fig. 8 workload),
* :mod:`repro.controllers.slicing` — RAT-unaware slicing controller
  with a REST northbound (§6.1.2, Table 4),
* :mod:`repro.controllers.traffic` — flow-based traffic controller
  with a broker northbound and the bufferbloat-fighting xApp (§6.1.1,
  Table 3),
* :mod:`repro.controllers.virtualization` — the recursive controller
  that re-exposes E2 northbound via the agent library and virtualizes
  NVS resources per tenant (§6.2, Table 5, Appendix B),
* :mod:`repro.controllers.relay` — the two-hop relaying controller used
  for the fair comparison against the O-RAN RIC (§5.4).
"""

from repro.controllers.monitoring import StatsMonitorIApp, StatsStore
from repro.controllers.slicing import SlicingControllerIApp
from repro.controllers.traffic import BufferbloatXapp, TrafficControllerIApp
from repro.controllers.relay import RelayController
from repro.controllers.xapp_host import HostedXapp, XappApi, XappHostIApp
from repro.controllers.virtualization import (
    TenantConfig,
    VirtualizationController,
)

__all__ = [
    "StatsMonitorIApp",
    "StatsStore",
    "SlicingControllerIApp",
    "BufferbloatXapp",
    "TrafficControllerIApp",
    "RelayController",
    "TenantConfig",
    "VirtualizationController",
    "HostedXapp",
    "XappApi",
    "XappHostIApp",
]
