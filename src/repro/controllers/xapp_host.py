"""Controller specialization for hosting O-RAN-style xApps (§6.3).

The paper lists the services an xApp host must provide and argues a
FlexRIC specialization can offer them "as (SM-independent) iApps" far
more cheaply than the cluster-based O-RAN RIC: "(1) a messaging
infrastructure ...; (2) subscription management, e.g., merging
identical subscriptions; (3) xApp management to deploy xApps; (4) a
database for xApps to write and read information gathered through SMs;
and (5) additional services such as security, logging, and fault
management."

:class:`XappHostIApp` implements all five on top of the server library:

1. an in-process message bus (the Redis-like broker) between xApps,
2. **subscription merging** — two xApps asking for the same
   (node, SM, period) share one E2 subscription; the indication fans
   out locally,
3. deploy/undeploy of :class:`HostedXapp` instances at runtime,
4. a shared key-value store,
5. a bounded structured log plus fault counters per xApp (an xApp
   callback raising is recorded and isolated rather than taking the
   controller down — the process-isolation trade-off of §6, point 4,
   resolved in favour of in-process hosting with supervised calls).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.e2ap.ies import RicActionDefinition, RicActionKind
from repro.core.server.iapp import IApp
from repro.core.server.randb import AgentRecord
from repro.core.server.submgr import SubscriptionCallbacks
from repro.northbound.broker import Broker
from repro.sm.base import PeriodicTrigger


@dataclass
class LogEntry:
    """One structured platform log record."""

    tstamp: float
    level: str
    source: str
    message: str


class HostedXapp:
    """Base class for xApps running on the host controller.

    Override the hooks; ``self.api`` (an :class:`XappApi`) is available
    from :meth:`on_start` onwards.
    """

    #: unique name within the host.
    name: str = "xapp"

    def __init__(self) -> None:
        self.api: Optional["XappApi"] = None

    def on_start(self, api: "XappApi") -> None:
        """Deployed: subscribe to what you need via ``api``."""
        self.api = api

    def on_stop(self) -> None:
        """About to be undeployed."""

    def on_agent(self, agent: AgentRecord) -> None:
        """A new E2 node connected."""

    def on_indication(self, conn_id: int, oid: str, event) -> None:
        """An indication for one of this xApp's subscriptions."""


@dataclass
class XappApi:
    """The platform services handed to each hosted xApp."""

    host: "XappHostIApp"
    xapp_name: str

    # -- service 1: messaging -----------------------------------------

    def publish(self, channel: str, payload: Any) -> int:
        return self.host.bus.publish(channel, payload)

    def subscribe_channel(self, pattern: str, handler) -> None:
        self.host.bus.subscribe(pattern, handler)

    # -- service 2: merged E2 subscriptions -----------------------------

    def subscribe_sm(
        self, conn_id: int, oid: str, period_ms: float, action_definition: bytes = b""
    ) -> bool:
        """Subscribe to an SM; identical requests are merged."""
        return self.host.subscribe_sm(
            self.xapp_name, conn_id, oid, period_ms, action_definition
        )

    def control_sm(self, conn_id: int, oid: str, header: bytes, payload: bytes) -> None:
        self.host.control_sm(conn_id, oid, header, payload)

    # -- service 4: shared database --------------------------------------

    def db_put(self, key: str, value: Any) -> None:
        self.host.db[key] = value

    def db_get(self, key: str, default: Any = None) -> Any:
        return self.host.db.get(key, default)

    def db_keys(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self.host.db if k.startswith(prefix))

    # -- service 5: logging ------------------------------------------------

    def log(self, message: str, level: str = "info") -> None:
        self.host.log(self.xapp_name, message, level)

    # -- discovery -----------------------------------------------------------

    def nodes(self) -> List[AgentRecord]:
        return self.host.server.agents()


@dataclass
class _MergedSubscription:
    """One E2 subscription shared by all identically-asking xApps."""

    conn_id: int
    oid: str
    period_ms: float
    subscribers: List[str] = field(default_factory=list)
    confirmed: bool = False
    indications: int = 0


class XappHostIApp(IApp):
    """The §6.3 specialization: host platform for O-RAN-style xApps."""

    name = "xapp-host"

    LOG_CAPACITY = 1000

    def __init__(self, sm_codec: str = "fb") -> None:
        super().__init__()
        self.sm_codec = sm_codec
        self.bus = Broker()
        self.db: Dict[str, Any] = {}
        self.xapps: Dict[str, HostedXapp] = {}
        self.logbook: Deque[LogEntry] = deque(maxlen=self.LOG_CAPACITY)
        self.faults: Dict[str, int] = {}
        self._merged: Dict[Tuple[int, str, float, bytes], _MergedSubscription] = {}
        self.merges_saved = 0

    # -- service 3: xApp management ----------------------------------------

    def deploy(self, xapp: HostedXapp) -> XappApi:
        """Start an xApp; returns its API handle."""
        if xapp.name in self.xapps:
            raise ValueError(f"xApp {xapp.name!r} already deployed")
        self.xapps[xapp.name] = xapp
        api = XappApi(host=self, xapp_name=xapp.name)
        self.log("host", f"deploying xApp {xapp.name!r}")
        self._supervised(xapp.name, lambda: xapp.on_start(api))
        for agent in self.server.agents():
            self._supervised(xapp.name, lambda a=agent: xapp.on_agent(a))
        return api

    def undeploy(self, name: str) -> None:
        xapp = self.xapps.pop(name, None)
        if xapp is None:
            raise KeyError(f"no xApp {name!r}")
        self._supervised(name, xapp.on_stop)
        for merged in self._merged.values():
            if name in merged.subscribers:
                merged.subscribers.remove(name)
        self.log("host", f"undeployed xApp {name!r}")

    def deployed(self) -> List[str]:
        return sorted(self.xapps)

    # -- service 2: merged subscription management ----------------------------

    def subscribe_sm(
        self,
        xapp_name: str,
        conn_id: int,
        oid: str,
        period_ms: float,
        action_definition: bytes = b"",
    ) -> bool:
        key = (conn_id, oid, period_ms, action_definition)
        merged = self._merged.get(key)
        if merged is not None:
            # Identical subscription exists: merge instead of resending.
            if xapp_name not in merged.subscribers:
                merged.subscribers.append(xapp_name)
            self.merges_saved += 1
            self.log("host", f"merged subscription {key} for {xapp_name!r}")
            return True
        agent = self.server.randb.agent(conn_id)
        if agent is None:
            return False
        item = agent.function_by_oid(oid)
        if item is None:
            return False
        merged = _MergedSubscription(
            conn_id=conn_id, oid=oid, period_ms=period_ms, subscribers=[xapp_name]
        )
        self._merged[key] = merged
        self.server.subscribe(
            conn_id=conn_id,
            ran_function_id=item.ran_function_id,
            event_trigger=PeriodicTrigger(period_ms).to_bytes(self.sm_codec),
            actions=[
                RicActionDefinition(
                    action_id=1, kind=RicActionKind.REPORT, definition=action_definition
                )
            ],
            callbacks=SubscriptionCallbacks(
                on_success=lambda response, m=merged: self._confirmed(m),
                on_indication=lambda event, m=merged: self._fan_out(m, event),
            ),
        )
        return True

    def _confirmed(self, merged: _MergedSubscription) -> None:
        merged.confirmed = True

    def _fan_out(self, merged: _MergedSubscription, event) -> None:
        merged.indications += 1
        for name in list(merged.subscribers):
            xapp = self.xapps.get(name)
            if xapp is None:
                continue
            self._supervised(
                name, lambda x=xapp: x.on_indication(merged.conn_id, merged.oid, event)
            )

    def control_sm(self, conn_id: int, oid: str, header: bytes, payload: bytes) -> None:
        agent = self.server.randb.agent(conn_id)
        if agent is None:
            raise KeyError(f"unknown agent connection {conn_id}")
        item = agent.function_by_oid(oid)
        if item is None:
            raise KeyError(f"agent {conn_id} lacks SM {oid}")
        self.server.control(
            conn_id=conn_id,
            ran_function_id=item.ran_function_id,
            header=header,
            payload=payload,
        )

    # -- service 5: logging and fault management --------------------------------

    def log(self, source: str, message: str, level: str = "info") -> None:
        # Wall clock on purpose: logbook timestamps are human-facing
        # and never enter deadline or duration arithmetic.
        self.logbook.append(
            LogEntry(tstamp=time.time(), level=level, source=source, message=message)  # repro-lint: disable=RL001
        )

    def _supervised(self, xapp_name: str, thunk: Callable[[], None]) -> None:
        """Run an xApp callback; record (not propagate) its faults."""
        try:
            thunk()
        except Exception as exc:  # noqa: BLE001  # repro-lint: disable=RL002 - fault isolation boundary: a buggy xApp callback must never take down the host
            self.faults[xapp_name] = self.faults.get(xapp_name, 0) + 1
            self.log(xapp_name, f"fault: {type(exc).__name__}: {exc}", level="error")

    # -- lifecycle -------------------------------------------------------------

    def on_agent_connected(self, agent: AgentRecord) -> None:
        self.log("host", f"agent connected: {agent.node_id.label}")
        for name, xapp in list(self.xapps.items()):
            self._supervised(name, lambda x=xapp, a=agent: x.on_agent(a))

    def on_agent_disconnected(self, agent: AgentRecord) -> None:
        self.log("host", f"agent disconnected: {agent.node_id.label}")
        gone = [key for key in self._merged if key[0] == agent.conn_id]
        for key in gone:
            del self._merged[key]

    @property
    def merged_subscriptions(self) -> int:
        return len(self._merged)
