"""Traffic-control dataplane (Fig. 10).

The TC SM's backend: an OSI classifier segregating packets into FIFO
queues, a queue scheduler, and a pacer limiting the rate into the RLC.
Components are hot-swappable at runtime ("we implemented the queues,
the classifier, the scheduler and the pacer as shared objects to enable
loading them online", §6.1.1) — here they are plain objects replaced
through the :class:`~repro.tc.pipeline.TcPipeline` API.
"""

from repro.tc.classifier import Classifier, FilterRule
from repro.tc.queues import FifoQueue
from repro.tc.scheduler import FifoSched, QueueScheduler, RoundRobinSched
from repro.tc.pacer import BdpPacer, NonePacer, Pacer
from repro.tc.pipeline import TcPipeline

__all__ = [
    "Classifier",
    "FilterRule",
    "FifoQueue",
    "FifoSched",
    "QueueScheduler",
    "RoundRobinSched",
    "BdpPacer",
    "NonePacer",
    "Pacer",
    "TcPipeline",
]
