"""FIFO queues of the TC dataplane."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.traffic.flows import Packet


class FifoQueue:
    """Byte-accounted FIFO with tail drop and sojourn statistics."""

    def __init__(self, queue_id: int, capacity_bytes: int = 4_000_000) -> None:
        self.queue_id = queue_id
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Packet] = deque()
        self.backlog_bytes = 0
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.last_sojourn_s = 0.0

    def push(self, packet: Packet, now: float) -> bool:
        if self.backlog_bytes + packet.size > self.capacity_bytes:
            self.dropped += 1
            return False
        packet.enqueued_tc = now
        self._queue.append(packet)
        self.backlog_bytes += packet.size
        self.enqueued += 1
        return True

    def pop(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.backlog_bytes -= packet.size
        self.dequeued += 1
        packet.dequeued_tc = now
        if packet.enqueued_tc is not None and now >= packet.enqueued_tc:
            self.last_sojourn_s = now - packet.enqueued_tc
        return packet

    def peek_size(self) -> Optional[int]:
        """Size of the head packet, or None when empty."""
        return self._queue[0].size if self._queue else None

    def head_sojourn_s(self, now: float) -> float:
        if not self._queue:
            return 0.0
        enqueued = self._queue[0].enqueued_tc
        return 0.0 if enqueued is None else now - enqueued

    @property
    def backlog_pkts(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __repr__(self) -> str:
        return (
            f"FifoQueue(id={self.queue_id}, backlog={self.backlog_bytes}B/"
            f"{len(self._queue)}pkts, dropped={self.dropped})"
        )
