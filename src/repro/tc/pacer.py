"""Pacers: rate limiting into the RLC.

The 5G-BDP pacer (Irazabal et al. [19, 21]) "maintains the DRB buffer
uncongested and backlogs the packets into the TC SM.  It tries to
submit just enough packets to the DRB not to starve it, without
bloating it" (§6.1.1).  The implementation targets a bandwidth-delay
product worth of bytes in the RLC: given the recent service rate of
the bearer, it releases packets only while the RLC backlog is below
``rate x target_delay`` (floored at a couple of TTIs so the MAC never
starves).
"""

from __future__ import annotations

from typing import Dict


class Pacer:
    """Computes how many bytes may be released towards the RLC now."""

    name = "base"

    def budget_bytes(self, now: float, rlc_backlog: int, rate_bps: float) -> int:
        raise NotImplementedError


class NonePacer(Pacer):
    """No pacing: everything is released immediately."""

    name = "none"

    def budget_bytes(self, now: float, rlc_backlog: int, rate_bps: float) -> int:
        return 1 << 30


class BdpPacer(Pacer):
    """5G-BDP pacer: keep the RLC backlog near one BDP.

    Parameters:
        target_ms: delay budget the RLC buffer may hold (default 8 ms).
        min_bytes: floor so the MAC is never starved when the rate
            estimate collapses (default two 1500 B MTUs).
    """

    name = "bdp"

    def __init__(self, target_ms: float = 8.0, min_bytes: int = 3000) -> None:
        if target_ms <= 0.0:
            raise ValueError(f"non-positive target: {target_ms}")
        self.target_ms = target_ms
        self.min_bytes = min_bytes

    def budget_bytes(self, now: float, rlc_backlog: int, rate_bps: float) -> int:
        bdp = int(rate_bps / 8.0 * self.target_ms / 1000.0)
        target = max(bdp, self.min_bytes)
        return max(0, target - rlc_backlog)


def make_pacer(kind: str, params: Dict[str, float]) -> Pacer:
    if kind == "none":
        return NonePacer()
    if kind == "bdp":
        return BdpPacer(
            target_ms=float(params.get("target_ms", 8.0)),
            min_bytes=int(params.get("min_bytes", 3000)),
        )
    raise ValueError(f"unknown pacer {kind!r}")
