"""Queue schedulers for the TC dataplane.

The scheduler "pulls packets from active queues" (§6.1.1).  Two
disciplines ship: plain FIFO (serve the lowest queue id first — the
single-queue transparent mode degenerates to this) and round robin,
which is what the Fig. 11 xApp installs so the VoIP queue is served
every other packet regardless of the greedy queue's depth.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.tc.queues import FifoQueue


class QueueScheduler:
    """Picks the next queue to serve among the active (non-empty)."""

    name = "base"

    def pick(self, queues: Dict[int, FifoQueue]) -> Optional[FifoQueue]:
        raise NotImplementedError


class FifoSched(QueueScheduler):
    """Serve queues in id order; effectively FIFO with one queue."""

    name = "fifo"

    def pick(self, queues: Dict[int, FifoQueue]) -> Optional[FifoQueue]:
        for queue_id in sorted(queues):
            if queues[queue_id]:
                return queues[queue_id]
        return None


class RoundRobinSched(QueueScheduler):
    """Packet-by-packet rotation over active queues."""

    name = "rr"

    def __init__(self) -> None:
        self._last_served: Optional[int] = None

    def pick(self, queues: Dict[int, FifoQueue]) -> Optional[FifoQueue]:
        active = [queue_id for queue_id in sorted(queues) if queues[queue_id]]
        if not active:
            return None
        if self._last_served is None:
            chosen = active[0]
        else:
            later = [queue_id for queue_id in active if queue_id > self._last_served]
            chosen = later[0] if later else active[0]
        self._last_served = chosen
        return queues[chosen]


def make_scheduler(kind: str) -> QueueScheduler:
    if kind == "fifo":
        return FifoSched()
    if kind == "rr":
        return RoundRobinSched()
    raise ValueError(f"unknown queue scheduler {kind!r}")
