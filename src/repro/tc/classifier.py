"""OSI classifier: 5-tuple filters mapping packets to queues."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sm.traffic_ctrl import FiveTupleMatch
from repro.traffic.flows import FiveTuple, Packet


@dataclass(frozen=True)
class FilterRule:
    """One classification rule; lower ``prio`` value wins."""

    filter_id: int
    match: FiveTupleMatch
    queue_id: int
    prio: int = 100

    def matches(self, flow: FiveTuple) -> bool:
        m = self.match
        if m.src_addr and m.src_addr != flow.src_addr:
            return False
        if m.dst_addr and m.dst_addr != flow.dst_addr:
            return False
        if m.src_port and m.src_port != flow.src_port:
            return False
        if m.dst_port and m.dst_port != flow.dst_port:
            return False
        if m.protocol and m.protocol != flow.protocol:
            return False
        return True


class Classifier:
    """Priority-ordered rule table with a default queue fallback."""

    def __init__(self, default_queue: int = 0) -> None:
        self.default_queue = default_queue
        self._rules: List[FilterRule] = []
        self._ids = itertools.count(1)

    def add_rule(self, match: FiveTupleMatch, queue_id: int, prio: int = 100) -> FilterRule:
        rule = FilterRule(
            filter_id=next(self._ids), match=match, queue_id=queue_id, prio=prio
        )
        self._rules.append(rule)
        self._rules.sort(key=lambda r: (r.prio, r.filter_id))
        return rule

    def remove_rule(self, filter_id: int) -> bool:
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.filter_id != filter_id]
        return len(self._rules) != before

    def drop_queue_rules(self, queue_id: int) -> int:
        """Remove every rule pointing at ``queue_id``; returns count."""
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.queue_id != queue_id]
        return before - len(self._rules)

    def classify(self, packet: Packet) -> int:
        """Queue id for ``packet`` (first matching rule by priority)."""
        for rule in self._rules:
            if rule.matches(packet.flow):
                return rule.queue_id
        return self.default_queue

    @property
    def rules(self) -> List[FilterRule]:
        return list(self._rules)
