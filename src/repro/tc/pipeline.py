"""TC pipeline: the per-bearer dataplane the TC SM drives (Fig. 10).

Sits between SDAP and PDCP on one bearer's downlink path.  In
**transparent mode** (default: one queue, no pacer) packets pass
straight through — Fig. 10a.  Once the xApp installs queues, filters
and a pacer (Fig. 10b), packets are classified into queues and the
:meth:`drain` hook — called by the base station every TTI — releases
them according to the pacer budget and queue scheduler.

Implements :class:`repro.sm.traffic_ctrl.TcApi`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sm.traffic_ctrl import FiveTupleMatch
from repro.tc.classifier import Classifier
from repro.tc.pacer import NonePacer, Pacer, make_pacer
from repro.tc.queues import FifoQueue
from repro.tc.scheduler import FifoSched, QueueScheduler, make_scheduler
from repro.traffic.flows import Packet

#: Downstream signature: (packet, now) -> accepted (PDCP submit).
Downstream = Callable[[Packet, float], bool]


class TcPipeline:
    """Classifier + queues + scheduler + pacer for one bearer."""

    DEFAULT_QUEUE = 0

    def __init__(
        self,
        downstream: Downstream,
        rlc_backlog: Callable[[], int],
        rate_estimate_bps: Callable[[], float],
    ) -> None:
        self._downstream = downstream
        self._rlc_backlog = rlc_backlog
        self._rate_estimate_bps = rate_estimate_bps
        self.classifier = Classifier(default_queue=self.DEFAULT_QUEUE)
        self.queues: Dict[int, FifoQueue] = {self.DEFAULT_QUEUE: FifoQueue(self.DEFAULT_QUEUE)}
        self.scheduler: QueueScheduler = FifoSched()
        self.pacer: Pacer = NonePacer()
        self.pkts_in = 0
        self.pkts_out = 0

    # -- TcApi ----------------------------------------------------------

    def add_queue(self, queue_id: int) -> None:
        if queue_id in self.queues:
            raise ValueError(f"queue {queue_id} already exists")
        self.queues[queue_id] = FifoQueue(queue_id)

    def del_queue(self, queue_id: int) -> None:
        if queue_id == self.DEFAULT_QUEUE:
            raise ValueError("cannot delete the default queue")
        queue = self.queues.pop(queue_id, None)
        if queue is None:
            raise ValueError(f"unknown queue {queue_id}")
        self.classifier.drop_queue_rules(queue_id)
        # Spill remaining packets into the default queue, preserving
        # order and the original enqueue timestamps.
        default = self.queues[self.DEFAULT_QUEUE]
        while queue:
            packet = queue.pop(now=0.0)
            if packet is None:
                break
            original_enqueue = packet.enqueued_tc or 0.0
            default.push(packet, original_enqueue)

    def add_filter(self, match: FiveTupleMatch, queue_id: int, prio: int) -> int:
        if queue_id not in self.queues:
            raise ValueError(f"unknown queue {queue_id}")
        return self.classifier.add_rule(match, queue_id, prio).filter_id

    def del_filter(self, filter_id: int) -> None:
        if not self.classifier.remove_rule(filter_id):
            raise ValueError(f"unknown filter {filter_id}")

    def set_pacer(self, kind: str, params: Dict[str, float]) -> None:
        self.pacer = make_pacer(kind, params)

    def set_scheduler(self, kind: str) -> None:
        self.scheduler = make_scheduler(kind)

    def queue_snapshot(self) -> dict:
        now = 0.0  # sojourn reported from last dequeues; head age needs now
        return {
            "queues": [
                {
                    "queue_id": queue.queue_id,
                    "backlog_bytes": queue.backlog_bytes,
                    "backlog_pkts": queue.backlog_pkts,
                    "sojourn_ms": queue.last_sojourn_s * 1000.0,
                    "enqueued": queue.enqueued,
                    "dequeued": queue.dequeued,
                    "dropped": queue.dropped,
                }
                for _qid, queue in sorted(self.queues.items())
            ],
            "pacer": self.pacer.name,
            "scheduler": self.scheduler.name,
            "filters": len(self.classifier.rules),
        }

    # -- dataplane --------------------------------------------------------

    @property
    def transparent(self) -> bool:
        """True while the pipeline has nothing to do (Fig. 10a)."""
        return (
            isinstance(self.pacer, NonePacer)
            and len(self.queues) == 1
            and not self.classifier.rules
        )

    def ingress(self, packet: Packet, now: float) -> bool:
        """SDAP hands a downlink packet to the pipeline."""
        self.pkts_in += 1
        if self.transparent:
            packet.enqueued_tc = now
            packet.dequeued_tc = now
            self.pkts_out += 1
            return self._downstream(packet, now)
        queue_id = self.classifier.classify(packet)
        queue = self.queues.get(queue_id, self.queues[self.DEFAULT_QUEUE])
        accepted = queue.push(packet, now)
        if accepted:
            self.drain(now)
        return accepted

    def drain(self, now: float) -> int:
        """Release packets within the pacer budget; returns bytes sent."""
        if self.transparent:
            return 0
        budget = self.pacer.budget_bytes(
            now, self._rlc_backlog(), self._rate_estimate_bps()
        )
        released = 0
        while True:
            queue = self.scheduler.pick(self.queues)
            if queue is None:
                break
            head_size = queue.peek_size()
            if head_size is None or released + head_size > budget:
                break
            packet = queue.pop(now)
            assert packet is not None
            released += packet.size
            self.pkts_out += 1
            self._downstream(packet, now)
        return released

    @property
    def backlog_bytes(self) -> int:
        return sum(queue.backlog_bytes for queue in self.queues.values())
