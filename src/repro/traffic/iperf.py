"""Full-buffer and on-off downlink sources (the iperf workloads of
§6.1.2 and §6.2).

The slicing experiments generate "constant downlink traffic ... such
that the radio resources of the cell are exhausted at all times"
(Fig. 13) and on-off patterns where a slice goes idle so another can
reclaim resources (Fig. 13b, Fig. 15).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.core.simclock import PeriodicTask, SimClock
from repro.traffic.flows import FiveTuple, FlowStats, Packet


class FullBufferFlow:
    """Keeps the destination's queue topped up every TTI."""

    PACKET_BYTES = 1400

    def __init__(
        self,
        clock: SimClock,
        sink: Callable[[Packet], bool],
        backlog_probe: Callable[[], int],
        flow: Optional[FiveTuple] = None,
        target_backlog: int = 60_000,
        period_s: float = 0.001,
    ) -> None:
        self.clock = clock
        self.sink = sink
        self.backlog_probe = backlog_probe
        self.flow = flow or FiveTuple("10.0.0.3", "10.0.1.1", 5202, 5202, "udp")
        self.target_backlog = target_backlog
        self.period_s = period_s
        self.stats = FlowStats()
        self._seq = 0
        self._task: Optional[PeriodicTask] = None

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("flow already started")
        self._task = self.clock.call_every(self.period_s, self._top_up)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    @property
    def running(self) -> bool:
        return self._task is not None

    def _top_up(self) -> None:
        # Bound injections per tick: if the probe does not reflect our
        # own injections (e.g. the queue drains instantly), one tick
        # still only offers one target's worth of packets.
        max_packets = self.target_backlog // self.PACKET_BYTES + 1
        injected = 0
        while self.backlog_probe() < self.target_backlog and injected < max_packets:
            injected += 1
            self._seq += 1
            packet = Packet(
                flow=self.flow,
                size=self.PACKET_BYTES,
                created_at=self.clock.now,
                seq=self._seq,
            )
            self.stats.record_sent(packet)
            if not self.sink(packet):
                self.stats.record_dropped(packet)
                break


class OnOffFlow:
    """Full-buffer source gated by an on/off schedule.

    ``schedule`` is a sequence of (start_s, stop_s) intervals during
    which the flow transmits; outside them the destination queue drains
    and the slice appears idle to the scheduler.
    """

    def __init__(
        self,
        clock: SimClock,
        inner: FullBufferFlow,
        schedule: Sequence[Tuple[float, float]],
    ) -> None:
        self.clock = clock
        self.inner = inner
        self.schedule = list(schedule)
        for start, stop in self.schedule:
            if stop <= start:
                raise ValueError(f"bad interval ({start}, {stop})")

    def arm(self) -> None:
        """Install the schedule on the clock."""
        for start, stop in self.schedule:
            self.clock.call_at(start, self._start_inner)
            self.clock.call_at(stop, self._stop_inner)

    def _start_inner(self) -> None:
        if not self.inner.running:
            self.inner.start()

    def _stop_inner(self) -> None:
        if self.inner.running:
            self.inner.stop()
