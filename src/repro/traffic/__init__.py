"""Traffic generators and the packet model.

Replaces the paper's traffic tools (irtt for G.711 VoIP, iperf3 with
TCP Cubic) with in-simulator equivalents that drive the same downlink
path: :mod:`repro.traffic.voip` produces the 172 B / 20 ms CBR flow,
:mod:`repro.traffic.cubic` models TCP Cubic's congestion window against
the RLC bottleneck buffer (the feedback loop that creates bufferbloat),
and :mod:`repro.traffic.iperf` provides simple full-buffer/greedy and
on-off sources for the slicing experiments.
"""

from repro.traffic.flows import DeliveryHub, FiveTuple, FlowStats, Packet
from repro.traffic.voip import VoipFlow
from repro.traffic.cubic import CubicFlow, CubicState
from repro.traffic.iperf import FullBufferFlow, OnOffFlow

__all__ = [
    "DeliveryHub",
    "FiveTuple",
    "FlowStats",
    "Packet",
    "VoipFlow",
    "CubicFlow",
    "CubicState",
    "FullBufferFlow",
    "OnOffFlow",
]
