"""Packet and flow primitives shared by generators, TC and RLC."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class FiveTuple:
    """Classic 5-tuple identifying a flow."""

    src_addr: str
    dst_addr: str
    src_port: int
    dst_port: int
    protocol: str  # "udp" / "tcp"

    def __str__(self) -> str:
        return (
            f"{self.protocol}:{self.src_addr}:{self.src_port}->"
            f"{self.dst_addr}:{self.dst_port}"
        )


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One downlink IP packet traversing SDAP -> TC -> PDCP -> RLC -> MAC.

    Timestamps are filled in as the packet crosses each stage, so
    per-stage sojourn times (Fig. 11a/11b) fall out of subtraction.
    """

    flow: FiveTuple
    size: int
    created_at: float
    seq: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    enqueued_tc: Optional[float] = None
    dequeued_tc: Optional[float] = None
    enqueued_rlc: Optional[float] = None
    delivered_at: Optional[float] = None

    @property
    def tc_sojourn_s(self) -> Optional[float]:
        if self.enqueued_tc is None or self.dequeued_tc is None:
            return None
        return self.dequeued_tc - self.enqueued_tc

    @property
    def rlc_sojourn_s(self) -> Optional[float]:
        if self.enqueued_rlc is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.enqueued_rlc

    @property
    def one_way_delay_s(self) -> Optional[float]:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at


class DeliveryHub:
    """Routes delivered packets back to their generating flow.

    Installed as an RLC entity's ``on_delivered`` callback; multiple
    flows sharing one bearer each register their 5-tuple.
    """

    def __init__(self) -> None:
        self._handlers: dict = {}

    def register(self, flow: FiveTuple, handler) -> None:
        self._handlers[flow] = handler

    def unregister(self, flow: FiveTuple) -> None:
        self._handlers.pop(flow, None)

    def __call__(self, packet: "Packet") -> None:
        handler = self._handlers.get(packet.flow)
        if handler is not None:
            handler(packet)


@dataclass
class FlowStats:
    """Per-flow delivery accounting collected at the receiver side."""

    sent_pkts: int = 0
    sent_bytes: int = 0
    delivered_pkts: int = 0
    delivered_bytes: int = 0
    dropped_pkts: int = 0
    delays_s: List[float] = field(default_factory=list)

    def record_sent(self, packet: Packet) -> None:
        self.sent_pkts += 1
        self.sent_bytes += packet.size

    def record_delivered(self, packet: Packet) -> None:
        self.delivered_pkts += 1
        self.delivered_bytes += packet.size
        delay = packet.one_way_delay_s
        if delay is not None:
            self.delays_s.append(delay)

    def record_dropped(self, packet: Packet) -> None:
        self.dropped_pkts += 1
