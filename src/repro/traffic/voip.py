"""G.711 VoIP flow generator (the irtt workload of §6.1.1).

"One minute G.711 VoIP conversation through UDP data frames of 172
bytes with an interval of 20 ms ... resulting in a bandwidth
consumption of 64 Kbps."  Each frame's RTT is the downlink one-way
delay through the simulated stack plus a modelled access/uplink
component (the paper observes 20-40 ms RTT with no competing traffic,
attributable to buffers outside the downlink path).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.simclock import PeriodicTask, SimClock
from repro.traffic.flows import FiveTuple, FlowStats, Packet

#: Deterministic pseudo-jitter (LCG) so runs reproduce bit-exactly.
_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_MASK = (1 << 64) - 1


class VoipFlow:
    """CBR 172 B / 20 ms flow with per-packet RTT accounting."""

    FRAME_BYTES = 172
    INTERVAL_S = 0.020

    def __init__(
        self,
        clock: SimClock,
        sink: Callable[[Packet], bool],
        flow: Optional[FiveTuple] = None,
        base_rtt_ms: float = 20.0,
        jitter_ms: float = 18.0,
        seed: int = 7,
    ) -> None:
        self.clock = clock
        self.sink = sink
        self.flow = flow or FiveTuple("10.0.0.1", "10.0.1.1", 2112, 2112, "udp")
        self.base_rtt_ms = base_rtt_ms
        self.jitter_ms = jitter_ms
        self.stats = FlowStats()
        self.rtts_ms: List[float] = []
        self._seq = 0
        self._task: Optional[PeriodicTask] = None
        self._lcg = seed & _MASK

    def _jitter_ms(self) -> float:
        self._lcg = (self._lcg * _LCG_A + _LCG_C) & _MASK
        return (self._lcg >> 33) % 1000 / 1000.0 * self.jitter_ms

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("flow already started")
        self._task = self.clock.call_every(self.INTERVAL_S, self._emit)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _emit(self) -> None:
        self._seq += 1
        packet = Packet(
            flow=self.flow,
            size=self.FRAME_BYTES,
            created_at=self.clock.now,
            seq=self._seq,
        )
        self.stats.record_sent(packet)
        if not self.sink(packet):
            self.stats.record_dropped(packet)

    def on_delivered(self, packet: Packet) -> None:
        """DeliveryHub handler: close the RTT sample for this frame."""
        self.stats.record_delivered(packet)
        one_way_ms = (packet.one_way_delay_s or 0.0) * 1000.0
        self.rtts_ms.append(one_way_ms + self.base_rtt_ms + self._jitter_ms())

    @property
    def frames_sent(self) -> int:
        return self.stats.sent_pkts
