"""TCP Cubic congestion-control model (the iperf3 workload of §6.1.1).

Bufferbloat needs a loss-based congestion controller that "cannot
differentiate between the propagation time and the large sojourn time
that packets experience in a bloated buffer" (§6.1.1).  This model
implements Cubic's window dynamics (RFC 8312): cubic window growth
between loss events, multiplicative decrease on loss, and
ACK-clocked transmission where the ACK of a packet returns one
modelled uplink delay after the downlink stack delivers it.  Driving
this sender into a finite RLC buffer reproduces the feedback loop of
Fig. 11a: the window grows until the buffer overflows, so the buffer
stays near-full and every co-queued flow inherits hundreds of
milliseconds of sojourn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.simclock import SimClock
from repro.traffic.flows import FiveTuple, FlowStats, Packet


@dataclass
class CubicState:
    """Cubic window variables (RFC 8312 notation, window in packets)."""

    cwnd: float = 10.0
    w_max: float = 0.0
    epoch_start: Optional[float] = None
    ssthresh: float = float("inf")

    C: float = 0.4
    beta: float = 0.7

    def on_loss(self, now: float) -> None:
        """Multiplicative decrease and epoch reset."""
        self.w_max = self.cwnd
        self.cwnd = max(2.0, self.cwnd * self.beta)
        self.ssthresh = self.cwnd
        self.epoch_start = None

    def on_ack(self, now: float) -> None:
        """Slow start below ssthresh, cubic growth above."""
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
            return
        if self.epoch_start is None:
            self.epoch_start = now
            self._k = ((self.w_max * (1.0 - self.beta)) / self.C) ** (1.0 / 3.0)
        t = now - self.epoch_start
        target = self.C * (t - self._k) ** 3 + self.w_max
        if target > self.cwnd:
            # Approach the cubic target within one RTT's worth of ACKs.
            self.cwnd += min(1.0, (target - self.cwnd) / max(self.cwnd, 1.0))
        else:
            self.cwnd += 0.01 / max(self.cwnd, 1.0)  # TCP-friendly probe


class CubicFlow:
    """Greedy downlink TCP flow with Cubic congestion control.

    The sender keeps ``in_flight < cwnd`` by injecting MSS-sized
    packets; a packet's ACK fires ``ack_delay_s`` after the RLC
    delivers it.  A rejected injection (RLC/TC tail drop) is a loss
    event.
    """

    MSS = 1448

    def __init__(
        self,
        clock: SimClock,
        sink: Callable[[Packet], bool],
        flow: Optional[FiveTuple] = None,
        ack_delay_s: float = 0.010,
        state: Optional[CubicState] = None,
    ) -> None:
        self.clock = clock
        self.sink = sink
        self.flow = flow or FiveTuple("10.0.0.2", "10.0.1.1", 5201, 5201, "tcp")
        self.ack_delay_s = ack_delay_s
        self.state = state or CubicState()
        self.stats = FlowStats()
        self.in_flight = 0
        self.losses = 0
        self._seq = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self._fill_window()

    def stop(self) -> None:
        self._running = False

    def _fill_window(self) -> None:
        while self._running and self.in_flight < int(self.state.cwnd):
            self._seq += 1
            packet = Packet(
                flow=self.flow, size=self.MSS, created_at=self.clock.now, seq=self._seq
            )
            self.stats.record_sent(packet)
            if self.sink(packet):
                self.in_flight += 1
            else:
                # Tail drop at the bottleneck buffer: Cubic loss event.
                self.stats.record_dropped(packet)
                self.losses += 1
                self.state.on_loss(self.clock.now)
                break

    def on_delivered(self, packet: Packet) -> None:
        """DeliveryHub handler: schedule this packet's ACK."""
        self.stats.record_delivered(packet)
        self.clock.call_after(self.ack_delay_s, self._on_ack)

    def _on_ack(self) -> None:
        if self.in_flight > 0:
            self.in_flight -= 1
        self.state.on_ack(self.clock.now)
        if self._running:
            self._fill_window()

    @property
    def cwnd_packets(self) -> float:
        return self.state.cwnd
