"""Named monotonic counters for cache and hot-path instrumentation.

Counters are process-global and thread-safe: with the sharded server
ingest multiple transport shard threads increment the same counters
concurrently, so a plain ``+=`` would silently drop updates.  Each
instrument binds one lock from a small striped pool at construction
(hashed by name), keeping ``incr`` to one uncontended lock acquisition
plus an integer add — cheap enough to stay on the codec hot path while
making the hammer-test arithmetic exact.  Reads (``.value``) stay
lock-free: an int attribute load is atomic under the GIL.

:class:`Gauge` (point-in-time values) and :class:`Histogram`
(fixed-bucket latency distributions) share the same registry
discipline; :func:`reset_all` zeroes all three families at once so
repeated in-process experiment runs start from a clean slate.

Example:
    >>> hits = get_counter("demo.hits")
    >>> hits.incr()
    >>> counter_values()["demo.hits"]
    1
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Striped lock pool shared by every instrument.  Distinct hot-path
#: counters almost always hash to distinct stripes, so shard threads
#: incrementing *different* counters never contend; two counters
#: sharing a stripe still increment correctly, just serialized.
_STRIPES = 16
_LOCK_POOL: Tuple[threading.Lock, ...] = tuple(
    threading.Lock() for _ in range(_STRIPES)
)


def _stripe_lock(name: str) -> threading.Lock:
    return _LOCK_POOL[hash(name) % _STRIPES]


class Counter:
    """One named monotonic counter (thread-safe ``incr``)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = _stripe_lock(name)

    def incr(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """One named point-in-time value (e.g. a link's lifecycle state).

    Same registry discipline as :class:`Counter`.  ``set`` is a single
    atomic store; ``add`` (read-modify-write, used for queue-depth
    style gauges updated from several shard threads) takes the stripe
    lock.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = _stripe_lock(name)

    def set(self, value: int) -> None:
        self.value = value

    def add(self, delta: int) -> None:
        with self._lock:
            self.value += delta

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


#: Default latency bucket upper edges in microseconds.  Roughly
#: logarithmic from sub-microsecond codec work up to the 100 ms tail
#: of a loaded CI runner; values past the last edge land in the
#: implicit overflow bucket.
DEFAULT_BUCKETS_US: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
)


class Histogram:
    """Fixed-bucket distribution of latency observations.

    Bucket edges are upper bounds (``value <= edge``); observations
    past the last edge are counted in the overflow bucket.  ``observe``
    is one bisect plus two adds — cheap enough for per-message use on
    the traced hot paths.
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "_lock")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_BUCKETS_US) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"bucket edges must be ascending and non-empty: {edges!r}")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(float(edge) for edge in edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)  # last = overflow
        self.count = 0
        self.total = 0.0
        self._lock = _stripe_lock(name)

    def observe(self, value: float) -> None:
        index = bisect_left(self.edges, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile (``q`` in [0, 1]) from the buckets.

        Linear interpolation inside the winning bucket; overflow
        observations report the last finite edge (an admitted floor).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q out of range: {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                if index >= len(self.edges):
                    return self.edges[-1]
                low = self.edges[index - 1] if index > 0 else 0.0
                high = self.edges[index]
                frac = (rank - seen) / bucket_count
                return low + (high - low) * frac
            seen += bucket_count
        return self.edges[-1]

    def snapshot(self) -> Dict:
        """JSON-able view: totals plus per-bucket cumulative-free counts."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": [
                [edge, count] for edge, count in zip(self.edges, self.counts)
            ],
            "overflow": self.counts[-1],
        }

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.edges) + 1)
            self.count = 0
            self.total = 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


_COUNTERS: Dict[str, Counter] = {}
_GAUGES: Dict[str, Gauge] = {}
_HISTOGRAMS: Dict[str, Histogram] = {}
#: Guards first-use creation only: two shard threads racing to create
#: the same name must agree on one instrument object, or increments on
#: the loser would vanish.  The lookup fast path stays lock-free.
_REGISTRY_LOCK = threading.Lock()


def get_gauge(name: str) -> Gauge:
    """Fetch (creating on first use) the gauge with ``name``."""
    gauge = _GAUGES.get(name)
    if gauge is None:
        with _REGISTRY_LOCK:
            gauge = _GAUGES.get(name)
            if gauge is None:
                gauge = _GAUGES[name] = Gauge(name)
    return gauge


def gauge_values() -> Dict[str, int]:
    """Snapshot of every registered gauge, keyed by name."""
    return {name: gauge.value for name, gauge in _GAUGES.items()}


def get_counter(name: str) -> Counter:
    """Fetch (creating on first use) the counter with ``name``."""
    counter = _COUNTERS.get(name)
    if counter is None:
        with _REGISTRY_LOCK:
            counter = _COUNTERS.get(name)
            if counter is None:
                counter = _COUNTERS[name] = Counter(name)
    return counter


def counter_values() -> Dict[str, int]:
    """Snapshot of every registered counter, keyed by name."""
    return {name: counter.value for name, counter in _COUNTERS.items()}


def reset_counters(prefix: str = "") -> None:
    """Zero all counters whose name starts with ``prefix``."""
    for name, counter in _COUNTERS.items():
        if name.startswith(prefix):
            counter.reset()


def discard_gauge(name: str) -> None:
    """Drop a gauge from the registry entirely.

    Lifecycle gauges (e.g. a link's state) are discarded when the
    tracked object reaches a terminal state, so a later experiment run
    in the same process does not inherit ghost entries.
    """
    _GAUGES.pop(name, None)


def discard_counter(name: str) -> None:
    """Drop a counter from the registry entirely.

    Connection-scoped counters (e.g. per-connection overload drops) are
    discarded when the link dies; without this, a server seeing heavy
    connection churn grows its registry without bound and ``/metrics``
    exports ghost entries for peers that no longer exist.  Class-level
    aggregates (``overload.drop.<cls>``) survive, so no drop is ever
    lost from the totals.
    """
    _COUNTERS.pop(name, None)


def reset_gauges(prefix: str = "") -> None:
    """Zero all gauges whose name starts with ``prefix``."""
    for name, gauge in _GAUGES.items():
        if name.startswith(prefix):
            gauge.value = 0


def get_histogram(name: str, edges: Optional[Sequence[float]] = None) -> Histogram:
    """Fetch (creating on first use) the histogram with ``name``.

    ``edges`` applies only on creation; an existing histogram keeps its
    bucket scheme (re-bucketing mid-run would corrupt the counts).
    """
    histogram = _HISTOGRAMS.get(name)
    if histogram is None:
        with _REGISTRY_LOCK:
            histogram = _HISTOGRAMS.get(name)
            if histogram is None:
                histogram = _HISTOGRAMS[name] = Histogram(
                    name, DEFAULT_BUCKETS_US if edges is None else edges
                )
    return histogram


def histogram_values() -> Dict[str, Dict]:
    """Snapshot of every registered histogram, keyed by name."""
    return {name: histogram.snapshot() for name, histogram in _HISTOGRAMS.items()}


def reset_histograms(prefix: str = "") -> None:
    """Zero all histograms whose name starts with ``prefix``."""
    for name, histogram in _HISTOGRAMS.items():
        if name.startswith(prefix):
            histogram.reset()


def reset_all() -> None:
    """Zero every counter, gauge and histogram in the registry.

    Gauges are reset too (not just counters): repeated in-process
    experiment runs must not inherit stale point-in-time state such as
    a previous run's link lifecycle gauges.
    """
    reset_counters()
    reset_gauges()
    reset_histograms()


def snapshot() -> Dict[str, Dict]:
    """One JSON-able snapshot of all three metric families."""
    return {
        "counters": counter_values(),
        "gauges": gauge_values(),
        "histograms": histogram_values(),
    }
