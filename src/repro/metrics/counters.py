"""Named monotonic counters for cache and hot-path instrumentation.

Counters are process-global and intentionally unsynchronized: a lost
increment under racing threads skews a diagnostic number, never
correctness, and keeping ``incr`` to one integer add keeps the probes
cheap enough to live on the codec hot path.

Example:
    >>> hits = get_counter("demo.hits")
    >>> hits.incr()
    >>> counter_values()["demo.hits"]
    1
"""

from __future__ import annotations

from typing import Dict


class Counter:
    """One named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """One named point-in-time value (e.g. a link's lifecycle state).

    Same registry discipline as :class:`Counter`: process-global,
    unsynchronized, cheap enough for per-event updates.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


_COUNTERS: Dict[str, Counter] = {}
_GAUGES: Dict[str, Gauge] = {}


def get_gauge(name: str) -> Gauge:
    """Fetch (creating on first use) the gauge with ``name``."""
    gauge = _GAUGES.get(name)
    if gauge is None:
        gauge = _GAUGES[name] = Gauge(name)
    return gauge


def gauge_values() -> Dict[str, int]:
    """Snapshot of every registered gauge, keyed by name."""
    return {name: gauge.value for name, gauge in _GAUGES.items()}


def get_counter(name: str) -> Counter:
    """Fetch (creating on first use) the counter with ``name``."""
    counter = _COUNTERS.get(name)
    if counter is None:
        counter = _COUNTERS[name] = Counter(name)
    return counter


def counter_values() -> Dict[str, int]:
    """Snapshot of every registered counter, keyed by name."""
    return {name: counter.value for name, counter in _COUNTERS.items()}


def reset_counters(prefix: str = "") -> None:
    """Zero all counters whose name starts with ``prefix``."""
    for name, counter in _COUNTERS.items():
        if name.startswith(prefix):
            counter.reset()
