"""CPU accounting for experiment components.

The paper normalizes CPU usage against the number of cores of the host
(Fig. 6, 8, 9).  Here every measured component (agent, server, baseline
controller, base-station user plane) charges the CPU time it consumes to
a :class:`CpuMeter`.  Two modes are supported:

* **wall-clock sections** — ``with meter.measure(): ...`` charges the
  elapsed ``time.perf_counter_ns`` of the block.  Used for socket-driven
  experiments where the component actually runs on this machine.
* **modelled charges** — :meth:`CpuMeter.charge` adds an externally
  computed cost (seconds).  Used by the discrete-event simulator, where
  simulated time and host time are decoupled.

Normalization follows the paper: ``busy_seconds / (interval * n_cores)``
expressed as a percentage.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class CpuSample:
    """One normalized CPU reading.

    Attributes:
        busy_s: CPU-seconds consumed by the component.
        interval_s: observation interval in seconds.
        cores: number of cores used for normalization.
    """

    busy_s: float
    interval_s: float
    cores: int

    @property
    def normalized_percent(self) -> float:
        """CPU usage normalized to the whole machine, in percent."""
        if self.interval_s <= 0.0:
            return 0.0
        return 100.0 * self.busy_s / (self.interval_s * self.cores)

    @property
    def single_core_percent(self) -> float:
        """CPU usage of a single core, in percent."""
        if self.interval_s <= 0.0:
            return 0.0
        return 100.0 * self.busy_s / self.interval_s


class CpuMeter:
    """Accumulates CPU time consumed by one named component.

    Example:
        >>> meter = CpuMeter("agent", cores=8)
        >>> with meter.measure():
        ...     _ = sum(range(1000))
        >>> meter.busy_s > 0
        True
    """

    def __init__(self, name: str, cores: int | None = None) -> None:
        self.name = name
        self.cores = cores if cores is not None else (os.cpu_count() or 1)
        self.busy_s = 0.0
        self._section_count = 0

    def measure(self) -> "_MeasuredSection":
        """Charge the wall-clock duration of the block to this meter.

        Returns a lightweight context manager rather than a
        ``contextlib`` generator: metering wraps every message on the
        hot path, so its fixed cost must stay far below the work it
        measures.
        """
        return _MeasuredSection(self)

    def charge(self, seconds: float) -> None:
        """Add a modelled CPU cost (discrete-event simulations)."""
        if seconds < 0.0:
            raise ValueError(f"negative CPU charge: {seconds}")
        self.busy_s += seconds
        self._section_count += 1

    def reset(self) -> None:
        """Zero the accumulated time (e.g. after a warm-up phase)."""
        self.busy_s = 0.0
        self._section_count = 0

    @property
    def sections(self) -> int:
        """Number of measured sections / charges recorded."""
        return self._section_count

    def sample(self, interval_s: float) -> CpuSample:
        """Snapshot usage over ``interval_s`` seconds of observation."""
        return CpuSample(busy_s=self.busy_s, interval_s=interval_s, cores=self.cores)

    def __repr__(self) -> str:
        return f"CpuMeter(name={self.name!r}, busy_s={self.busy_s:.6f}, cores={self.cores})"


class _MeasuredSection:
    """Minimal-overhead timing context for :meth:`CpuMeter.measure`."""

    __slots__ = ("_meter", "_start")

    def __init__(self, meter: CpuMeter) -> None:
        self._meter = meter

    def __enter__(self) -> None:
        self._start = time.perf_counter_ns()

    def __exit__(self, exc_type, exc, tb) -> None:
        meter = self._meter
        meter.busy_s += (time.perf_counter_ns() - self._start) / 1e9
        meter._section_count += 1


class ProcessCpuProbe:
    """Measures the real CPU time of the current process.

    Used to cross-check meter-based accounting in socket experiments;
    ``delta()`` returns process CPU seconds since the previous call.
    """

    def __init__(self) -> None:
        self._last = time.process_time()

    def delta(self) -> float:
        now = time.process_time()
        elapsed, self._last = now - self._last, now
        return elapsed
