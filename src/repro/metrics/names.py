"""Central registry of metric instrument names.

Every counter/gauge/histogram name used in ``src/repro`` must be
declared here, either verbatim or as a pattern with ``{placeholder}``
segments for names built with f-strings (shard indices, node labels,
disconnect-reason codes).  ``repro-lint`` rule RL005 checks call sites
against this registry — the static guard against the stale-gauge /
typo'd-counter class of bugs PR 3 fixed once (a metric incremented
under one name and asserted or exported under another is invisible at
runtime until a dashboard reads zeros).

Adding an instrument is a two-line change: use it at the call site and
declare it here.  The declaration is also the natural place to grep
for "what can this process export".
"""

from __future__ import annotations

from typing import Iterable, Tuple

#: exact counter names.
COUNTERS = frozenset(
    {
        # decode containment (shared by SMs, agent and server paths)
        "decode.contained",
        # codec kernels (codegen hit/deopt accounting)
        "codec.kernel.encode_hits",
        "codec.kernel.encode_fallbacks",
        "codec.kernel.decode_hits",
        "codec.kernel.decode_fallbacks",
        # flat-codec bounded caches
        "codec.flat.dir_cache.evictions",
        "codec.flat.list_cache.evictions",
        "codec.flat.route_cache.evictions",
        # E2AP encode cache
        "e2ap.encode_cache.hits",
        "e2ap.encode_cache.misses",
        # server lifecycle / ingest
        "server.rx.decode_error",
        "server.node.stale",
        "server.node.recovered",
        "server.node.expired",
        "server.keepalive.sent",
        "server.keepalive.dead",
        "server.liveness.errors",
        "server.pool.errors",
        # overload discipline (DESIGN.md §13)
        "overload.degrade.enter",
        "overload.coalesced",
        "server.admission.reject.setup",
        "server.admission.reject.subscription",
        "server.admission.slow_start",
        # agent lifecycle
        "agent.reconnect.attempt",
        "agent.reconnect.success",
        "agent.reconnect.giveup",
        "agent.reconnect.connect_timeout",
        "agent.journal.replayed",
        "agent.indications.dropped",
        "agent.rx.decode_error",
        "agent.tx.reply_failed",
        # transports
        "tcp.connect.timeout",
        "tcp.close.eof",
        "tcp.close.framing",
        # SO_REUSEPORT degradation + loud-teardown accounting
        "tcp.reuseport.unavailable",
        "transport.stop.stuck",
        "transport.stop.undrained",
        # multiprocess ingest supervisor (DESIGN.md §14)
        "server.reuseport.fallback",
        "server.worker.spawned",
        "server.worker.restarts",
        "server.worker.giveup",
        "server.worker.handoff",
        "server.policy.indications",
        # shared-memory policy snapshots (DESIGN.md §15)
        "server.policy.shm_publish",
        "server.policy.shm_reads",
        "server.policy.shm_fallback",
        "server.policy.pickle_bytes",
        "server.stats.push_skipped",
        # zero-copy data plane (DESIGN.md §15)
        "bytes.copied",
        "encode.reuse",
        "server.subscription.shared",
        "e2ap.encode.messages",
        "bufpool.lease.hit",
        "bufpool.lease.miss",
        "bufpool.lease.oversize",
        "tcp.send.vectored",
        # asyncio client tier
        "aio.subscription.shed",
        "aio.loop_closed",
        # asyncio-native server ingest (DESIGN.md §15)
        "aio.server.connections",
        "aio.server.frames",
        # fault injection
        "faulty.drop",
        "faulty.corrupt",
        "faulty.truncate",
        "faulty.delay",
        "faulty.reorder",
        "faulty.dup",
        "faulty.kill",
    }
)

#: counter name patterns ({} segments are runtime-formatted).
COUNTER_PATTERNS: Tuple[str, ...] = (
    # per-shard receive accounting (shard index)
    "server.shard.{shard}.rx",
    # close-cause accounting (DisconnectReason.code)
    "tcp.close.{code}",
    # overload shed accounting (traffic-class label, connection label)
    "overload.drop.{cls}",
    "overload.conn.{conn}.drops",
    # per-tenant fair-share refusals (tenant name)
    "overload.tenant.{tenant}.ind_drops",
    "overload.tenant.{tenant}.ctrl_rejects",
)

#: exact gauge names.
GAUGES = frozenset({"server.workers", "server.policy.generation"})

#: gauge name patterns.
GAUGE_PATTERNS: Tuple[str, ...] = (
    # multiprocess worker liveness (worker index)
    "server.worker.{index}.alive",
    # inproc shard queue depth (shard index)
    "inproc.shard.{index}.depth",
    # per-link lifecycle state (node label, origin id)
    "agent.{node}.link.{origin}.state",
    # bounded-queue pressure accounting (queue scope)
    "queue.{scope}.depth",
    "queue.{scope}.hwm",
    "queue.{scope}.degraded",
    # per-tenant fair-share bucket levels (tenant name)
    "overload.tenant.{tenant}.tokens",
)

#: exact histogram names.
HISTOGRAMS = frozenset(set())

#: histogram name patterns.
HISTOGRAM_PATTERNS: Tuple[str, ...] = (
    # per-stage procedure latency (stage vocabulary of DESIGN.md §9)
    "trace.{stage}",
)

_BY_KIND = {
    "counter": (COUNTERS, COUNTER_PATTERNS),
    "gauge": (GAUGES, GAUGE_PATTERNS),
    "histogram": (HISTOGRAMS, HISTOGRAM_PATTERNS),
}


def _pattern_pieces(pattern: str) -> Tuple[str, ...]:
    """Literal pieces around ``{...}`` placeholders."""
    pieces = []
    rest = pattern
    while True:
        open_at = rest.find("{")
        if open_at < 0:
            pieces.append(rest)
            return tuple(pieces)
        close_at = rest.find("}", open_at)
        if close_at < 0:
            pieces.append(rest)
            return tuple(pieces)
        pieces.append(rest[:open_at])
        rest = rest[close_at + 1 :]


def declared(kind: str, name: str) -> bool:
    """Is an exact ``name`` declared for instrument ``kind``?"""
    exact, patterns = _BY_KIND[kind]
    if name in exact:
        return True
    return any(_match_pieces(_pattern_pieces(p), (name,)) for p in patterns)


def declared_parts(kind: str, literal_parts: Iterable[str]) -> bool:
    """Match an f-string by its literal pieces against the patterns.

    ``f"server.shard.{n}.rx"`` has literal pieces
    ``("server.shard.", ".rx")``; it is declared iff some pattern has
    the same pieces around its placeholders.
    """
    parts = tuple(literal_parts)
    exact, patterns = _BY_KIND[kind]
    if len(parts) == 1 and parts[0] in exact:
        return True
    return any(_pattern_pieces(p) == parts for p in patterns)


def _match_pieces(pieces: Tuple[str, ...], name_parts: Tuple[str, ...]) -> bool:
    """Does a concrete name match a pattern's literal pieces?"""
    if len(name_parts) != 1:
        return False
    name = name_parts[0]
    if not pieces:
        return False
    if not name.startswith(pieces[0]):
        return False
    pos = len(pieces[0])
    for piece in pieces[1:]:
        if piece == "":
            pos = len(name)
            continue
        found = name.find(piece, pos + 1)
        if found < 0:
            return False
        pos = found + len(piece)
    return pos <= len(name)
