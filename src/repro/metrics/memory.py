"""Memory accounting for experiment components.

Replaces ``docker stats`` memory readings (Fig. 8a, 9b).  Components
register the objects that constitute their resident state (databases,
queues, message stores) and :class:`MemoryMeter` computes a recursive
byte count, plus an optional fixed *baseline* modelling the footprint a
deployment imposes before any payload exists (e.g. the O-RAN platform's
15 containers).
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, Iterable


def deep_sizeof(obj: Any, _seen: set | None = None) -> int:
    """Recursively estimate the size of ``obj`` in bytes.

    Follows containers (dict/list/tuple/set) and object ``__dict__`` /
    ``__slots__``.  Shared objects are counted once.
    """
    seen = _seen if _seen is not None else set()
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)

    size = sys.getsizeof(obj, 0)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_sizeof(key, seen)
            size += deep_sizeof(value, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_sizeof(item, seen)
    elif isinstance(obj, (str, bytes, bytearray, int, float, bool, complex)):
        pass
    else:
        attrs = getattr(obj, "__dict__", None)
        if attrs is not None:
            size += deep_sizeof(attrs, seen)
        slots = getattr(type(obj), "__slots__", ())
        for slot in slots if isinstance(slots, (list, tuple)) else (slots,):
            if isinstance(slot, str) and hasattr(obj, slot):
                size += deep_sizeof(getattr(obj, slot), seen)
    return size


class MemoryMeter:
    """Tracks the resident footprint of one named component.

    ``baseline_bytes`` models deployment overhead that exists regardless
    of live state (container runtimes, side-car services); live state is
    registered via :meth:`track` and measured on demand.
    """

    def __init__(self, name: str, baseline_bytes: int = 0) -> None:
        self.name = name
        self.baseline_bytes = baseline_bytes
        self._tracked: Dict[str, Callable[[], Any]] = {}

    def track(self, label: str, provider: Callable[[], Any]) -> None:
        """Register a zero-arg callable returning an object to size."""
        self._tracked[label] = provider

    def untrack(self, label: str) -> None:
        self._tracked.pop(label, None)

    def measure_bytes(self) -> int:
        """Baseline plus the deep size of every tracked object."""
        total = self.baseline_bytes
        seen: set = set()
        for provider in self._tracked.values():
            total += deep_sizeof(provider(), seen)
        return total

    def measure_mb(self) -> float:
        return self.measure_bytes() / (1024.0 * 1024.0)

    def breakdown(self) -> Dict[str, int]:
        """Per-label byte counts (objects shared between labels are
        charged to the first label that reaches them)."""
        result: Dict[str, int] = {"baseline": self.baseline_bytes}
        seen: set = set()
        for label, provider in self._tracked.items():
            result[label] = deep_sizeof(provider(), seen)
        return result

    def __repr__(self) -> str:
        labels: Iterable[str] = self._tracked
        return f"MemoryMeter(name={self.name!r}, tracked={sorted(labels)!r})"
