"""Measurement utilities used across the evaluation harness.

The paper reports CPU usage (normalized percentage of the machine),
memory footprints, round-trip-time distributions, and signaling rates.
This package provides the probes that replace the paper's testbed tools
(``top``, ``docker stats``) with in-process equivalents:

* :mod:`repro.metrics.cpu` — process-time based CPU accounting.
* :mod:`repro.metrics.memory` — byte-level accounting of component state.
* :mod:`repro.metrics.stats` — percentiles, CDFs and summary statistics.
* :mod:`repro.metrics.counters` — named monotonic counters (cache
  hit/miss rates and similar hot-path diagnostics).
"""

from repro.metrics.counters import (
    Counter,
    Gauge,
    counter_values,
    gauge_values,
    get_counter,
    get_gauge,
    reset_counters,
)
from repro.metrics.cpu import CpuMeter, CpuSample
from repro.metrics.memory import MemoryMeter, deep_sizeof
from repro.metrics.stats import Summary, cdf, percentile, summarize

__all__ = [
    "Counter",
    "CpuMeter",
    "CpuSample",
    "Gauge",
    "MemoryMeter",
    "Summary",
    "cdf",
    "counter_values",
    "deep_sizeof",
    "gauge_values",
    "get_counter",
    "get_gauge",
    "percentile",
    "reset_counters",
    "summarize",
]
