"""Measurement utilities used across the evaluation harness.

The paper reports CPU usage (normalized percentage of the machine),
memory footprints, round-trip-time distributions, and signaling rates.
This package provides the probes that replace the paper's testbed tools
(``top``, ``docker stats``) with in-process equivalents:

* :mod:`repro.metrics.cpu` — process-time based CPU accounting.
* :mod:`repro.metrics.memory` — byte-level accounting of component state.
* :mod:`repro.metrics.stats` — percentiles, CDFs and summary statistics.
* :mod:`repro.metrics.counters` — named monotonic counters, gauges
  and fixed-bucket latency histograms (cache hit/miss rates and
  similar hot-path diagnostics).
* :mod:`repro.metrics.trace` — span-based tracing of E2AP procedures
  with per-stage latency histograms (the Fig. 7/9 decomposition).
"""

from repro.metrics.counters import (
    Counter,
    Gauge,
    Histogram,
    counter_values,
    discard_gauge,
    gauge_values,
    get_counter,
    get_gauge,
    get_histogram,
    histogram_values,
    reset_all,
    reset_counters,
    reset_gauges,
    reset_histograms,
    snapshot,
)
from repro.metrics.cpu import CpuMeter, CpuSample
from repro.metrics.memory import MemoryMeter, deep_sizeof
from repro.metrics.stats import Summary, cdf, percentile, summarize
from repro.metrics import trace

__all__ = [
    "Counter",
    "CpuMeter",
    "CpuSample",
    "Gauge",
    "Histogram",
    "MemoryMeter",
    "Summary",
    "cdf",
    "counter_values",
    "deep_sizeof",
    "discard_gauge",
    "gauge_values",
    "get_counter",
    "get_gauge",
    "get_histogram",
    "histogram_values",
    "percentile",
    "reset_all",
    "reset_counters",
    "reset_gauges",
    "reset_histograms",
    "snapshot",
    "summarize",
    "trace",
]
