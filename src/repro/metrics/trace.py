"""Span-based tracing of E2AP procedures with per-stage latency.

The paper's evaluation splits controller↔agent RTT into per-stage
costs (encode, transport, decode, dispatch — Figs. 7/9); this module
provides the instrumentation layer that makes the same decomposition
measurable inside the reproduction.  Every traced stage records a
:class:`Span` into a bounded ring buffer and observes its duration in
a fixed-bucket :class:`~repro.metrics.counters.Histogram` named
``trace.<stage>``, which lives in the shared metrics registry next to
the existing counters and gauges.

Design constraints, in order:

1. **Zero cost when disabled.**  Tracing defaults to off; the hot
   paths guard every probe with one attribute read
   (``TRACER.enabled``) so the fig7/fig9 RTT harnesses pay a single
   predictable branch, not a context-manager call.
2. **Correlation.**  Spans carry an optional ``corr`` key — the RIC
   request id ``(requestor_id, instance_id)`` — plus the node label
   where the instrumented side knows it, so one indication's encode
   (agent), send (transport), decode (server) and dispatch (submgr)
   spans stitch into a single end-to-end trace.  Transport send spans
   inherit the correlation of the message encoded immediately before
   them (the hot paths are single-threaded per link, so encode→frame→
   send never interleaves); receive-side transport spans happen before
   the message is decodable and are stitched by time window instead.
3. **Fixed stage vocabulary.**  ``encode``, ``frame``, ``send``,
   ``recv``, ``decode``, ``dispatch`` — the same decomposition the
   paper's Fig. 7/9 bars use (§5.2, §5.4).
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.metrics.counters import (
    get_histogram,
    histogram_values,
    reset_histograms,
    snapshot as registry_snapshot,
)

#: The fixed stage vocabulary; histogram names are ``trace.<stage>``.
STAGES: Tuple[str, ...] = ("encode", "frame", "send", "recv", "decode", "dispatch")

#: Correlation key: the RIC request id as (requestor_id, instance_id).
CorrId = Tuple[int, int]


@dataclass(frozen=True)
class Span:
    """One timed stage of one E2AP procedure."""

    stage: str
    #: ``time.perf_counter()`` at stage start, seconds.
    start_s: float
    duration_us: float
    #: RIC request id the stage worked on, when the site knows it.
    corr: Optional[CorrId] = None
    #: node label / endpoint peer, when the site knows it.
    node: Optional[str] = None
    #: E2AP procedure family ("indication", "control", ...), if known.
    procedure: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "start_s": self.start_s,
            "duration_us": self.duration_us,
            "corr": list(self.corr) if self.corr is not None else None,
            "node": self.node,
            "procedure": self.procedure,
        }


class _NoopStage:
    """Context manager returned by :func:`stage` while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopStage":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_STAGE = _NoopStage()


class _LiveStage:
    """Context manager recording one span on exit (non-hot-path sites)."""

    __slots__ = ("_tracer", "_stage", "_corr", "_node", "_procedure", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        stage: str,
        corr: Optional[CorrId],
        node: Optional[str],
        procedure: Optional[str],
    ) -> None:
        self._tracer = tracer
        self._stage = stage
        self._corr = corr
        self._node = node
        self._procedure = procedure
        self._start = 0.0

    def __enter__(self) -> "_LiveStage":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._tracer.record(
            self._stage, self._start, self._corr, self._node, self._procedure
        )
        return False


class Tracer:
    """Process-global span recorder behind a single enabled flag.

    Hot paths are expected to read :attr:`enabled` once, branch, and
    call :meth:`record` with a ``perf_counter`` start they took
    themselves — keeping the disabled cost to one attribute load.
    """

    __slots__ = ("enabled", "max_spans", "_spans", "_last_corr", "dropped", "node")

    def __init__(self, max_spans: int = 65536) -> None:
        self.enabled = False
        self.max_spans = max_spans
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        #: correlation of the most recently encoded message; transport
        #: send spans adopt it (encode and send never interleave on one
        #: link's single-threaded hot path).
        self._last_corr: Optional[CorrId] = None
        #: spans evicted from the ring while it was full.
        self.dropped = 0
        #: ambient node label: agent/server set it (only while tracing
        #: is enabled) before entering their encode/decode paths, so
        #: spans recorded inside the shared codec wrappers still say
        #: which side did the work.
        self.node: Optional[str] = None

    # -- recording ----------------------------------------------------

    def record(
        self,
        stage: str,
        start_s: float,
        corr: Optional[CorrId] = None,
        node: Optional[str] = None,
        procedure: Optional[str] = None,
        end_s: Optional[float] = None,
    ) -> Span:
        """Close a stage opened at ``start_s``; returns the span.

        Callers only invoke this when :attr:`enabled` was true at the
        start of the stage; it never checks the flag itself so a
        mid-stage disable cannot orphan a started measurement.
        """
        end = time.perf_counter() if end_s is None else end_s
        span = Span(
            stage=stage,
            start_s=start_s,
            duration_us=(end - start_s) * 1e6,
            corr=corr,
            node=self.node if node is None else node,
            procedure=procedure,
        )
        if len(self._spans) == self._spans.maxlen:
            self.dropped += 1
        self._spans.append(span)
        get_histogram(f"trace.{stage}").observe(span.duration_us)
        return span

    def note_corr(self, corr: Optional[CorrId]) -> None:
        """Remember the correlation of the message just encoded."""
        self._last_corr = corr

    def adopt_corr(self) -> Optional[CorrId]:
        """Correlation for a transport send span (see class docstring)."""
        return self._last_corr

    # -- introspection ------------------------------------------------

    def spans(self, stage: Optional[str] = None) -> List[Span]:
        if stage is None:
            return list(self._spans)
        return [span for span in self._spans if span.stage == stage]

    def corr_ids(self) -> List[CorrId]:
        """Distinct correlation ids seen, in first-seen order."""
        seen: Dict[CorrId, None] = {}
        for span in self._spans:
            if span.corr is not None:
                seen.setdefault(span.corr, None)
        return list(seen)

    def stitch(self, corr: CorrId, include_uncorrelated: bool = True) -> List[Span]:
        """All spans of one procedure, ordered by start time.

        Spans carrying ``corr`` always match.  With
        ``include_uncorrelated`` (default), transport spans that carry
        no correlation (receive side: the bytes are not decodable yet)
        are included when they fall inside the matched spans' time
        window — exact for a single round trip, best-effort under
        concurrency.
        """
        matched = [span for span in self._spans if span.corr == corr]
        if not matched:
            return []
        if include_uncorrelated:
            start = min(span.start_s for span in matched)
            end = max(span.start_s + span.duration_us / 1e6 for span in matched)
            for span in self._spans:
                if span.corr is None and start <= span.start_s <= end:
                    matched.append(span)
        return sorted(matched, key=lambda span: span.start_s)

    def clear(self) -> None:
        """Drop recorded spans and adopted correlation (keeps enabled)."""
        self._spans.clear()
        self._last_corr = None
        self.dropped = 0
        self.node = None

    # -- export -------------------------------------------------------

    def stage_breakdown(self) -> Dict[str, Dict]:
        """Per-stage histogram snapshots (only ``trace.*`` entries)."""
        return {
            name[len("trace."):]: snap
            for name, snap in histogram_values().items()
            if name.startswith("trace.")
        }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able state: spans, stage breakdown, full registry."""
        return {
            "enabled": self.enabled,
            "span_count": len(self._spans),
            "dropped_spans": self.dropped,
            "spans": [span.to_dict() for span in self._spans],
            "stages": self.stage_breakdown(),
            "metrics": registry_snapshot(),
        }

    def export_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)


#: The process-global tracer every instrumented hot path consults.
TRACER = Tracer()


def enable() -> None:
    """Turn span recording on (does not clear prior spans)."""
    TRACER.enabled = True


def disable() -> None:
    TRACER.enabled = False


def enabled() -> bool:
    return TRACER.enabled


def reset() -> None:
    """Clear spans and zero the ``trace.*`` histograms."""
    TRACER.clear()
    reset_histograms("trace.")


def stage(
    name: str,
    corr: Optional[CorrId] = None,
    node: Optional[str] = None,
    procedure: Optional[str] = None,
):
    """Context manager tracing one stage (convenience, non-hot paths).

    Returns a shared no-op when tracing is disabled, so sprinkling it
    over cold paths costs one call and one branch.
    """
    if not TRACER.enabled:
        return _NOOP_STAGE
    return _LiveStage(TRACER, name, corr, node, procedure)
