"""Summary statistics for latency and throughput series.

Used to report the RTT distributions of Fig. 7a/9a, the CDF of
Fig. 11c, and throughput time series of Fig. 13/15.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100].

    Raises ValueError on an empty sequence.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as a list of ``(value, probability)`` points."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a series."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def row(self, unit: str = "") -> str:
        """One formatted table row, e.g. for EXPERIMENTS.md output."""
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count} mean={self.mean:.2f}{suffix} "
            f"p50={self.p50:.2f}{suffix} p95={self.p95:.2f}{suffix} "
            f"p99={self.p99:.2f}{suffix} max={self.maximum:.2f}{suffix}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; raises on empty input."""
    if not values:
        raise ValueError("summarize of empty sequence")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(values),
        p50=percentile(values, 50.0),
        p95=percentile(values, 95.0),
        p99=percentile(values, 99.0),
        maximum=max(values),
    )
