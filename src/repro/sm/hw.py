"""HelloWorld service model (E2SM-HW) — the ping SM of §5.2.

The paper modifies O-RAN's "Hello World" SM "to perform a ping by
sending a control message to the RAN function, to which the agent
responds with an indication message".  The round trip
(control encode -> E2AP encode -> wire -> decode -> SM decode ->
indication encode -> ...) exercises the full double-encoding path,
which is what Fig. 7a/7b and Fig. 9a measure.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.core.agent.ran_function import (
    ControlOutcome,
    RanFunction,
    SubscriptionHandle,
)
from repro.core.e2ap.ies import (
    RicActionAdmitted,
    RicActionDefinition,
    RicActionKind,
    RicActionNotAdmitted,
)
from repro.core.e2ap.procedures import Cause
from repro.sm.base import SmInfo, decode_payload, encode_payload

INFO = SmInfo(name="HW", oid="1.3.6.1.4.1.53148.1.1.2.100", default_function_id=100)


def build_ping(seq: int, payload: bytes, codec_name: str) -> bytes:
    """Controller side: SM-encode a ping control payload."""
    return encode_payload({"seq": seq, "data": payload}, codec_name, schema="hw_ping")


def parse_ping(data: bytes, codec_name: str) -> Tuple[int, bytes]:
    tree = decode_payload(data, codec_name, schema="hw_ping")
    return tree["seq"], tree["data"]


def build_pong(seq: int, payload: bytes, codec_name: str) -> bytes:
    return encode_payload({"seq": seq, "data": payload}, codec_name, schema="hw_ping")


def parse_pong(data: bytes, codec_name: str) -> Tuple[int, bytes]:
    tree = decode_payload(data, codec_name, schema="hw_ping")
    return tree["seq"], tree["data"]


class HwRanFunction(RanFunction):
    """Agent-side HW function: echoes control pings as indications.

    A controller first subscribes (REPORT action) so the function has a
    destination for the echo, then sends ping controls.
    """

    def __init__(self, sm_codec: str = "fb", ran_function_id: int = INFO.default_function_id) -> None:
        super().__init__(
            ran_function_id=ran_function_id, name=INFO.name, oid=INFO.oid, revision=INFO.version
        )
        self.sm_codec = sm_codec
        self.pings_served = 0

    def on_subscription(
        self,
        handle: SubscriptionHandle,
        event_trigger: bytes,
        actions: List[RicActionDefinition],
    ) -> Tuple[List[RicActionAdmitted], List[RicActionNotAdmitted]]:
        report_actions = [a for a in actions if a.kind == RicActionKind.REPORT]
        if not report_actions:
            return [], [
                RicActionNotAdmitted(a.action_id, 0, Cause.ACTION_NOT_SUPPORTED)
                for a in actions
            ]
        self.subscriptions[handle.key()] = handle
        return (
            [RicActionAdmitted(a.action_id) for a in report_actions],
            [
                RicActionNotAdmitted(a.action_id, 0, Cause.ACTION_NOT_SUPPORTED)
                for a in actions
                if a.kind != RicActionKind.REPORT
            ],
        )

    def on_control(self, origin: int, header: bytes, payload: bytes) -> ControlOutcome:
        """Echo the ping to every subscriber of this controller."""
        seq, data = parse_ping(payload, self.sm_codec)
        pong = build_pong(seq, bytes(data), self.sm_codec)
        echoed = False
        for handle in list(self.subscriptions.values()):
            if handle.origin != origin:
                continue
            self.emit(handle, action_id=1, header=b"", payload=pong)
            echoed = True
        if not echoed:
            return ControlOutcome.fail(
                Cause.ric_request(Cause.REQUEST_ID_UNKNOWN, "no subscription to echo to")
            )
        self.pings_served += 1
        return ControlOutcome.ok()
