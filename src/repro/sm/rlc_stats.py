"""RLC statistics service model.

Reports per-bearer RLC buffer state — the quantity the traffic-control
xApp of §6.1.1 watches to detect bufferbloat: occupancy in bytes and
packets, the sojourn time of the head-of-line packet, and PDU/SDU
counters.

Payload schema: ``{"bearers": [{"rnti", "bearer_id", "buffer_bytes",
"buffer_pkts", "sojourn_ms", "tx_pdus", "tx_bytes", "rx_pdus",
"rx_bytes", "dropped"}], "tstamp_ms"}``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.sm.base import PeriodicReportFunction, SmInfo, StatsProvider, VisibilityFn

INFO = SmInfo(
    name="RLC_STATS",
    oid="1.3.6.1.4.1.53148.1.1.2.143",
    default_function_id=143,
    payload_schema="rlc_stats_report",
)


@dataclass
class RlcBearerStats:
    """One data radio bearer's RLC counters."""

    rnti: int
    bearer_id: int
    buffer_bytes: int = 0
    buffer_pkts: int = 0
    sojourn_ms: float = 0.0
    tx_pdus: int = 0
    tx_bytes: int = 0
    rx_pdus: int = 0
    rx_bytes: int = 0
    dropped: int = 0

    def to_value(self) -> dict:
        return {
            "rnti": self.rnti,
            "bearer_id": self.bearer_id,
            "buffer_bytes": self.buffer_bytes,
            "buffer_pkts": self.buffer_pkts,
            "sojourn_ms": self.sojourn_ms,
            "tx_pdus": self.tx_pdus,
            "tx_bytes": self.tx_bytes,
            "rx_pdus": self.rx_pdus,
            "rx_bytes": self.rx_bytes,
            "dropped": self.dropped,
        }

    @classmethod
    def from_value(cls, value: Any) -> "RlcBearerStats":
        return cls(
            rnti=value["rnti"],
            bearer_id=value["bearer_id"],
            buffer_bytes=value["buffer_bytes"],
            buffer_pkts=value["buffer_pkts"],
            sojourn_ms=value["sojourn_ms"],
            tx_pdus=value["tx_pdus"],
            tx_bytes=value["tx_bytes"],
            rx_pdus=value["rx_pdus"],
            rx_bytes=value["rx_bytes"],
            dropped=value["dropped"],
        )


def report_to_value(bearers: List[RlcBearerStats], tstamp_ms: float) -> dict:
    return {"bearers": [b.to_value() for b in bearers], "tstamp_ms": tstamp_ms}


def report_from_value(value: Any) -> tuple:
    bearers = [RlcBearerStats.from_value(item) for item in value["bearers"]]
    return bearers, value["tstamp_ms"]


class RlcStatsFunction(PeriodicReportFunction):
    """Agent-side RLC statistics RAN function."""

    def __init__(
        self,
        provider: StatsProvider,
        sm_codec: str = "fb",
        clock=None,
        visibility: Optional[VisibilityFn] = None,
        ran_function_id: Optional[int] = None,
    ) -> None:
        super().__init__(
            info=INFO,
            provider=provider,
            sm_codec=sm_codec,
            clock=clock,
            visibility=visibility,
            ran_function_id=ran_function_id,
        )
