"""Pre-defined E2 service models (§4.1.1, §6).

The SDK ships "a bundle of pre-defined RAN functions that implement a
set of SMs": monitoring (MAC/RLC/PDCP statistics, RRC configuration),
slicing control (SC SM, §6.1.2), traffic control (TC SM, §6.1.1) and
the HelloWorld SM used for the ping experiments (§5.2).

Each module defines the SM's payload schema (value-tree encode/decode
helpers), the agent-side :class:`~repro.core.agent.ran_function.RanFunction`
implementation, and controller-side helpers to build triggers and
control payloads.  Every SM supports a per-SM codec choice — the inner
half of E2's double encoding (§5.2).
"""

from repro.sm.base import (
    PeriodicReportFunction,
    PeriodicTrigger,
    SmInfo,
    decode_payload,
    encode_payload,
)
from repro.sm import (
    hw,
    kpm,
    mac_stats,
    ni,
    pdcp_stats,
    rlc_stats,
    rrc_conf,
    slice_ctrl,
    traffic_ctrl,
)

__all__ = [
    "PeriodicReportFunction",
    "PeriodicTrigger",
    "SmInfo",
    "decode_payload",
    "encode_payload",
    "hw",
    "kpm",
    "ni",
    "mac_stats",
    "rlc_stats",
    "pdcp_stats",
    "rrc_conf",
    "slice_ctrl",
    "traffic_ctrl",
]
