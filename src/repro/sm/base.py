"""Shared service-model machinery.

* :class:`SmInfo` — SM identity (name, OID, default RAN function id).
* :func:`encode_payload` / :func:`decode_payload` — the inner encoding
  of E2's double encoding; the codec is chosen per SM instance.
* :class:`PeriodicTrigger` — the common periodic event trigger used by
  all statistics SMs.
* :class:`PeriodicReportFunction` — generic agent-side RAN function for
  periodic statistics reporting, parameterized by a data provider; the
  concrete MAC/RLC/PDCP stats SMs are thin instantiations.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.agent.ran_function import (
    ControlOutcome,
    RanFunction,
    SubscriptionHandle,
)
from repro.core.codec import codegen as _codegen
from repro.core.codec.base import CodecError, get_codec, materialize
from repro.metrics.counters import get_counter
from repro.core.e2ap.ies import (
    RicActionAdmitted,
    RicActionDefinition,
    RicActionNotAdmitted,
    RicActionKind,
)
from repro.core.e2ap.procedures import Cause
from repro.core.simclock import PeriodicTask, SimClock


@dataclass(frozen=True)
class SmInfo:
    """Identity of a service model."""

    name: str
    oid: str
    default_function_id: int
    version: int = 1
    #: Name of the registered payload schema for this SM's report
    #: payloads (see :mod:`repro.core.codec.schema`); lets the periodic
    #: reporter use the generated codec kernel for its hot encode.
    payload_schema: Optional[str] = None


def encode_payload(value: Any, codec_name: str, schema: Optional[str] = None) -> bytes:
    """Encode an SM payload tree with the SM's codec (inner encoding).

    ``schema`` names a registered payload schema; when given and a
    generated kernel exists for (codec, schema), the kernel encodes the
    tree directly (falling back to the interpretive walker on any shape
    mismatch, so callers may pass a best-guess schema).
    """
    if schema is not None and _codegen.ENABLED:
        out = _codegen.payload_encode(codec_name, schema, value)
        if out is not None:
            return out
    return get_codec(codec_name).encode(value)


def decode_payload(data: bytes, codec_name: str, schema: Optional[str] = None) -> Any:
    """Decode an SM payload; lazy codecs return lazy views.

    With ``schema`` the generated kernel is tried first and returns a
    plain materialized tree; a wire/schema mismatch falls back to the
    interpretive decoder, so the schema is a hint, not a contract.
    """
    if schema is not None and _codegen.ENABLED:
        out = _codegen.payload_decode(codec_name, schema, data)
        if out is not None:
            return out
    return get_codec(codec_name).decode(data)


#: What a malformed SM payload can actually raise: codec rejections,
#: missing/mistyped fields in the decoded tree, and truncated packed
#: structs.  Containment handlers catch exactly these — a genuine bug
#: (AttributeError, RecursionError, ...) must still propagate.
DECODE_ERRORS = (CodecError, KeyError, TypeError, ValueError, struct.error)


def count_contained_decode() -> None:
    """Account one malformed payload rejected without harm."""
    get_counter("decode.contained").incr()


@dataclass(frozen=True)
class PeriodicTrigger:
    """Report every ``period_ms`` milliseconds (E2SM-KPM style)."""

    period_ms: float

    def to_bytes(self, codec_name: str) -> bytes:
        return encode_payload(
            {"period_ms": self.period_ms}, codec_name, schema="periodic_trigger"
        )

    @classmethod
    def from_bytes(cls, data: bytes, codec_name: str) -> "PeriodicTrigger":
        tree = decode_payload(data, codec_name, schema="periodic_trigger")
        return cls(period_ms=tree["period_ms"])


#: Provider signature: receives the set of UEs visible to the
#: subscribing controller (None = no restriction) and returns the
#: report payload as a value tree.
StatsProvider = Callable[[Optional[Set[int]]], Any]

#: Visibility resolver: controller origin -> visible UE ids, or None
#: for "all" (single-controller deployments).
VisibilityFn = Callable[[int], Optional[Set[int]]]


class PeriodicReportFunction(RanFunction):
    """Generic periodic-statistics RAN function.

    On subscription it decodes a :class:`PeriodicTrigger` and starts a
    periodic task on the node's simulation clock (when one is given);
    deployments driven by wall-clock experiments call :meth:`pump`
    instead to emit one report per active subscription.
    """

    def __init__(
        self,
        info: SmInfo,
        provider: StatsProvider,
        sm_codec: str = "fb",
        clock: Optional[SimClock] = None,
        visibility: Optional[VisibilityFn] = None,
        ran_function_id: Optional[int] = None,
    ) -> None:
        super().__init__(
            ran_function_id=info.default_function_id if ran_function_id is None else ran_function_id,
            name=info.name,
            oid=info.oid,
            revision=info.version,
        )
        self.info = info
        self.provider = provider
        self.sm_codec = sm_codec
        self.clock = clock
        self.visibility = visibility or (lambda origin: None)
        self._tasks: Dict[Tuple, PeriodicTask] = {}
        self._report_actions: Dict[Tuple, List[int]] = {}

    # -- subscription lifecycle ---------------------------------------

    def on_subscription(
        self,
        handle: SubscriptionHandle,
        event_trigger: bytes,
        actions: List[RicActionDefinition],
    ) -> Tuple[List[RicActionAdmitted], List[RicActionNotAdmitted]]:
        admitted: List[RicActionAdmitted] = []
        rejected: List[RicActionNotAdmitted] = []
        report_ids: List[int] = []
        for action in actions:
            if action.kind == RicActionKind.REPORT:
                admitted.append(RicActionAdmitted(action.action_id))
                report_ids.append(action.action_id)
            else:
                rejected.append(
                    RicActionNotAdmitted(
                        action_id=action.action_id,
                        cause_kind=0,
                        cause_value=Cause.ACTION_NOT_SUPPORTED,
                    )
                )
        if not report_ids:
            return admitted, rejected

        try:
            trigger = PeriodicTrigger.from_bytes(event_trigger, self.sm_codec)
        except DECODE_ERRORS:
            count_contained_decode()
            return [], [
                RicActionNotAdmitted(
                    action_id=action.action_id,
                    cause_kind=0,
                    cause_value=Cause.CONTROL_MESSAGE_INVALID,
                )
                for action in actions
            ]

        key = handle.key()
        self.subscriptions[key] = handle
        self._report_actions[key] = report_ids
        # Re-subscription (journal replay after reconnect, or the
        # server's resync) replaces the previous registration: stop a
        # still-armed task so the stream never doubles up.
        previous = self._tasks.pop(key, None)
        if previous is not None:
            previous.stop()
        if self.clock is not None:
            period_s = trigger.period_ms / 1000.0
            self._tasks[key] = self.clock.call_every(
                period_s, lambda: self._report(handle)
            )
        return admitted, rejected

    def on_subscription_delete(self, handle: SubscriptionHandle) -> bool:
        key = handle.key()
        task = self._tasks.pop(key, None)
        if task is not None:
            task.stop()
        self._report_actions.pop(key, None)
        return super().on_subscription_delete(handle)

    # -- emission -------------------------------------------------------

    def _report(self, handle: SubscriptionHandle) -> None:
        visible = self.visibility(handle.origin)
        payload_tree = self.provider(visible)
        payload = encode_payload(
            payload_tree, self.sm_codec, schema=self.info.payload_schema
        )
        # One coalesced transport write per tick, however many report
        # actions the subscription admitted.
        self.emit_many(
            handle,
            [
                (action_id, b"", payload)
                for action_id in self._report_actions.get(handle.key(), ())
            ],
        )

    def pump(self) -> int:
        """Emit one report for every active subscription.

        Wall-clock experiments (dummy agents of Fig. 8b/9b) call this
        at their own cadence instead of using a simulation clock.
        Returns the number of indications sent.
        """
        count = 0
        for handle in list(self.subscriptions.values()):
            self._report(handle)
            count += 1
        return count

    @property
    def active_subscriptions(self) -> int:
        return len(self.subscriptions)


def materialize_payload(payload: Any) -> Any:
    """Normalize a possibly-lazy SM payload into plain dict/list."""
    return materialize(payload)
