"""E2SM-NI: network interface service model (Appendix A.4).

The second SM standardized by O-RAN at the time of the paper
(ORAN-WG3.E2SM-NI-v01.00.00): it "allows interface manipulation,
supporting interfaces such as X2, S1, etc." with all four service
kinds:

* **report** — copy messages observed on an interface to the xApp,
* **insert** — copy the message *and suspend* the procedure until the
  controller answers (the RIC "processes procedures at the RAN's
  place"),
* **control** — inject a message into an interface,
* **policy** — a predefined verdict (forward/drop) the RAN function
  applies by itself on a trigger.

The RAN side is an :class:`InterfaceTap` the base station drives with
every interface message (this repo models S1/NG/X2/F1 signalling as
opaque typed payloads); the tap consults subscriptions and either
reports, suspends for insert, or applies a policy verdict.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.agent.ran_function import (
    ControlOutcome,
    RanFunction,
    SubscriptionHandle,
)
from repro.core.e2ap.ies import (
    RicActionAdmitted,
    RicActionDefinition,
    RicActionKind,
    RicActionNotAdmitted,
)
from repro.core.e2ap.messages import RicIndicationKind
from repro.core.e2ap.procedures import Cause
from repro.sm.base import (
    DECODE_ERRORS,
    SmInfo,
    count_contained_decode,
    decode_payload,
    encode_payload,
)

INFO = SmInfo(name="NI", oid="1.3.6.1.4.1.53148.1.1.2.3", default_function_id=3)

#: Interface types (E2SM-NI's NI-Type).
IF_S1 = "s1"
IF_X2 = "x2"
IF_NG = "ng"
IF_XN = "xn"
IF_F1 = "f1"
INTERFACES = (IF_S1, IF_X2, IF_NG, IF_XN, IF_F1)

#: Policy verdicts.
POLICY_FORWARD = "forward"
POLICY_DROP = "drop"


@dataclass(frozen=True)
class InterfaceMessage:
    """One message observed on (or injected into) an interface."""

    interface: str
    procedure: str          # e.g. "handover_request", "paging"
    payload: bytes = b""
    direction: str = "in"   # "in" towards the node, "out" from it

    def to_value(self) -> dict:
        return {
            "if": self.interface,
            "proc": self.procedure,
            "pl": self.payload,
            "dir": self.direction,
        }

    @classmethod
    def from_value(cls, value: Any) -> "InterfaceMessage":
        return cls(
            interface=value["if"],
            procedure=value["proc"],
            payload=value["pl"],
            direction=value["dir"],
        )


def build_action_definition(
    interface: str, procedures: Optional[List[str]], codec_name: str
) -> bytes:
    """Which interface/procedures an action applies to (empty = all)."""
    if interface not in INTERFACES:
        raise ValueError(f"unknown interface {interface!r}")
    return encode_payload(
        {"if": interface, "procs": list(procedures or ())},
        codec_name,
        schema="ni_action",
    )


def build_policy_definition(
    interface: str, procedures: Optional[List[str]], verdict: str, codec_name: str
) -> bytes:
    if verdict not in (POLICY_FORWARD, POLICY_DROP):
        raise ValueError(f"unknown verdict {verdict!r}")
    return encode_payload(
        {"if": interface, "procs": list(procedures or ()), "verdict": verdict},
        codec_name,
        schema="ni_policy",
    )


def build_control(message: InterfaceMessage, codec_name: str) -> bytes:
    """Controller side: inject ``message`` into the named interface."""
    return encode_payload(message.to_value(), codec_name, schema="ni_message")


@dataclass
class _NiAction:
    action_id: int
    kind: RicActionKind
    interface: str
    procedures: Tuple[str, ...]
    verdict: str = POLICY_FORWARD

    def matches(self, message: InterfaceMessage) -> bool:
        if self.interface != message.interface:
            return False
        return not self.procedures or message.procedure in self.procedures


@dataclass
class PendingInsert:
    """A suspended procedure awaiting the controller's resume."""

    call_id: int
    message: InterfaceMessage
    resume: Callable[[bool], None]   # True = proceed, False = abort


class NiFunction(RanFunction):
    """Agent-side E2SM-NI: tap, suspend, inject, and police interfaces."""

    def __init__(
        self,
        injector: Optional[Callable[[InterfaceMessage], None]] = None,
        sm_codec: str = "fb",
        ran_function_id: Optional[int] = None,
    ) -> None:
        super().__init__(
            ran_function_id=INFO.default_function_id if ran_function_id is None else ran_function_id,
            name=INFO.name,
            oid=INFO.oid,
            revision=INFO.version,
        )
        self.sm_codec = sm_codec
        #: applies controller-injected messages to the node's interfaces.
        self.injector = injector or (lambda message: None)
        self._actions: Dict[Tuple, List[_NiAction]] = {}
        self._pending: Dict[int, PendingInsert] = {}
        self._call_ids = itertools.count(1)
        self.reports_emitted = 0
        self.inserts_emitted = 0
        self.policies_applied = 0

    # -- subscription ---------------------------------------------------

    def on_subscription(
        self,
        handle: SubscriptionHandle,
        event_trigger: bytes,
        actions: List[RicActionDefinition],
    ):
        admitted: List[RicActionAdmitted] = []
        rejected: List[RicActionNotAdmitted] = []
        parsed: List[_NiAction] = []
        for action in actions:
            if action.kind == RicActionKind.CONTROL:
                rejected.append(
                    RicActionNotAdmitted(action.action_id, 0, Cause.ACTION_NOT_SUPPORTED)
                )
                continue
            try:
                tree = decode_payload(action.definition, self.sm_codec)
                interface = tree["if"]
                procedures = tuple(tree["procs"])
                verdict = tree.get("verdict", POLICY_FORWARD) if hasattr(tree, "get") else (
                    tree["verdict"] if "verdict" in tree else POLICY_FORWARD
                )
            except DECODE_ERRORS:
                count_contained_decode()
                rejected.append(
                    RicActionNotAdmitted(action.action_id, 0, Cause.CONTROL_MESSAGE_INVALID)
                )
                continue
            if interface not in INTERFACES:
                rejected.append(
                    RicActionNotAdmitted(action.action_id, 0, Cause.ACTION_NOT_SUPPORTED)
                )
                continue
            admitted.append(RicActionAdmitted(action.action_id))
            parsed.append(
                _NiAction(
                    action_id=action.action_id,
                    kind=action.kind,
                    interface=interface,
                    procedures=procedures,
                    verdict=verdict,
                )
            )
        if not admitted:
            return admitted, rejected
        key = handle.key()
        self.subscriptions[key] = handle
        self._actions[key] = parsed
        return admitted, rejected

    def on_subscription_delete(self, handle: SubscriptionHandle) -> bool:
        self._actions.pop(handle.key(), None)
        return super().on_subscription_delete(handle)

    # -- the tap the base station drives -----------------------------------

    def observe(
        self,
        message: InterfaceMessage,
        resume: Optional[Callable[[bool], None]] = None,
    ) -> bool:
        """Process one interface message.

        Returns True if the node may proceed immediately; False if an
        insert action suspended the procedure (``resume`` will be
        called with the controller's decision) or a policy dropped it.
        """
        proceed = True
        suspended = False
        for key, actions in list(self._actions.items()):
            handle = self.subscriptions.get(key)
            if handle is None:
                continue
            for action in actions:
                if not action.matches(message):
                    continue
                if action.kind == RicActionKind.REPORT:
                    self._emit_copy(handle, action.action_id, message, RicIndicationKind.REPORT)
                    self.reports_emitted += 1
                elif action.kind == RicActionKind.INSERT and not suspended:
                    call_id = next(self._call_ids)
                    self._pending[call_id] = PendingInsert(
                        call_id=call_id,
                        message=message,
                        resume=resume or (lambda decision: None),
                    )
                    self._emit_copy(
                        handle,
                        action.action_id,
                        message,
                        RicIndicationKind.INSERT,
                        call_id=call_id,
                    )
                    self.inserts_emitted += 1
                    suspended = True
                elif action.kind == RicActionKind.POLICY:
                    self.policies_applied += 1
                    if action.verdict == POLICY_DROP:
                        proceed = False
        if suspended:
            return False
        return proceed

    def _emit_copy(
        self,
        handle: SubscriptionHandle,
        action_id: int,
        message: InterfaceMessage,
        kind: RicIndicationKind,
        call_id: int = 0,
    ) -> None:
        header = encode_payload(
            {"call_id": call_id}, self.sm_codec, schema="ni_insert_header"
        )
        payload = encode_payload(
            message.to_value(), self.sm_codec, schema="ni_message"
        )
        self.emit(handle, action_id, header=header, payload=payload, kind=kind)

    # -- control: resume a suspended call or inject a message ---------------

    def on_control(self, origin: int, header: bytes, payload: bytes) -> ControlOutcome:
        try:
            tree = decode_payload(payload, self.sm_codec)
            if "resume" in tree:
                call_id = tree["call_id"]
                pending = self._pending.pop(call_id, None)
                if pending is None:
                    return ControlOutcome.fail(
                        Cause.ric_request(Cause.REQUEST_ID_UNKNOWN, f"no call {call_id}")
                    )
                pending.resume(bool(tree["resume"]))
                return ControlOutcome.ok()
            message = InterfaceMessage.from_value(tree)
        except (KeyError, TypeError) as exc:
            return ControlOutcome.fail(
                Cause.ric_request(Cause.CONTROL_MESSAGE_INVALID, f"malformed: {exc}")
            )
        if message.interface not in INTERFACES:
            return ControlOutcome.fail(
                Cause.ric_request(Cause.CONTROL_MESSAGE_INVALID, "unknown interface")
            )
        self.injector(message)
        return ControlOutcome.ok()

    @property
    def pending_inserts(self) -> int:
        return len(self._pending)


def build_resume(call_id: int, proceed: bool, codec_name: str) -> bytes:
    """Controller side: answer a suspended insert."""
    return encode_payload(
        {"resume": proceed, "call_id": call_id}, codec_name, schema="ni_resume"
    )


def parse_insert_header(header: bytes, codec_name: str) -> int:
    """Extract the call id from an insert indication's header."""
    return decode_payload(header, codec_name, schema="ni_insert_header")["call_id"]
