"""Traffic control service model (TC SM, §6.1.1).

Abstracts flow configuration within the RAN "similarly to how OpenFlow
abstracts flows in a switch" (Fig. 10): a classifier segregates packets
into queues, a scheduler serves the queues, a pacer limits the rate
into the RLC.  The xApp of Fig. 11 drives this SM to fight bufferbloat:
it adds a second FIFO queue, installs a 5-tuple filter for the VoIP
flow, and loads the 5G-BDP pacer.

Control commands (value trees, SM-encoded):

* ``{"cmd": "add_queue", "queue_id": int}``
* ``{"cmd": "del_queue", "queue_id": int}``
* ``{"cmd": "add_filter", "filter": {...FiveTupleMatch...}, "queue_id", "prio"}``
* ``{"cmd": "del_filter", "filter_id": int}``
* ``{"cmd": "set_pacer", "kind": "none"|"bdp", "params": {...}}``
* ``{"cmd": "set_sched", "kind": "fifo"|"rr"}``

Reports carry per-queue statistics (backlog, sojourn time, drops) via
the standard periodic trigger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from repro.core.agent.ran_function import ControlOutcome
from repro.core.e2ap.procedures import Cause
from repro.sm.base import (
    PeriodicReportFunction,
    SmInfo,
    VisibilityFn,
    decode_payload,
    encode_payload,
)

INFO = SmInfo(name="TRAFFIC_CTRL", oid="1.3.6.1.4.1.53148.1.1.2.147", default_function_id=147)

PACER_NONE = "none"
PACER_BDP = "bdp"
SCHED_FIFO = "fifo"
SCHED_RR = "rr"


@dataclass(frozen=True)
class FiveTupleMatch:
    """OSI classifier match; empty string / 0 fields are wildcards."""

    src_addr: str = ""
    dst_addr: str = ""
    src_port: int = 0
    dst_port: int = 0
    protocol: str = ""

    def to_value(self) -> dict:
        return {
            "sa": self.src_addr,
            "da": self.dst_addr,
            "sp": self.src_port,
            "dp": self.dst_port,
            "pr": self.protocol,
        }

    @classmethod
    def from_value(cls, value: Any) -> "FiveTupleMatch":
        return cls(
            src_addr=value["sa"],
            dst_addr=value["da"],
            src_port=value["sp"],
            dst_port=value["dp"],
            protocol=value["pr"],
        )


class TcApi(Protocol):
    """What the TC dataplane exposes for the TC SM to drive it."""

    def add_queue(self, queue_id: int) -> None: ...

    def del_queue(self, queue_id: int) -> None: ...

    def add_filter(self, match: FiveTupleMatch, queue_id: int, prio: int) -> int: ...

    def del_filter(self, filter_id: int) -> None: ...

    def set_pacer(self, kind: str, params: Dict[str, float]) -> None: ...

    def set_scheduler(self, kind: str) -> None: ...

    def queue_snapshot(self) -> dict: ...


# -- controller-side command builders ---------------------------------


def build_target(rnti: int, bearer_id: int, codec_name: str) -> bytes:
    """Control *header*: which bearer's pipeline the command addresses.

    ``rnti=0`` / ``bearer_id=0`` are wildcards (apply to every attached
    pipeline) — convenient for cell-wide policy installation.
    """
    return encode_payload({"rnti": rnti, "bearer_id": bearer_id}, codec_name)


def parse_target(header: bytes, codec_name: str) -> tuple:
    """Decode a control header; empty header means wildcard."""
    if not header:
        return 0, 0
    tree = decode_payload(header, codec_name)
    return tree["rnti"], tree["bearer_id"]


def build_add_queue(queue_id: int, codec_name: str) -> bytes:
    return encode_payload({"cmd": "add_queue", "queue_id": queue_id}, codec_name)


def build_del_queue(queue_id: int, codec_name: str) -> bytes:
    return encode_payload({"cmd": "del_queue", "queue_id": queue_id}, codec_name)


def build_add_filter(match: FiveTupleMatch, queue_id: int, prio: int, codec_name: str) -> bytes:
    return encode_payload(
        {"cmd": "add_filter", "filter": match.to_value(), "queue_id": queue_id, "prio": prio},
        codec_name,
    )


def build_del_filter(filter_id: int, codec_name: str) -> bytes:
    return encode_payload({"cmd": "del_filter", "filter_id": filter_id}, codec_name)


def build_set_pacer(kind: str, params: Dict[str, float], codec_name: str) -> bytes:
    return encode_payload({"cmd": "set_pacer", "kind": kind, "params": dict(params)}, codec_name)


def build_set_sched(kind: str, codec_name: str) -> bytes:
    return encode_payload({"cmd": "set_sched", "kind": kind}, codec_name)


#: Live view of the node's per-bearer pipelines: (rnti, bearer) -> TcApi.
PipelineDirectory = Callable[[], Dict[Tuple[int, int], TcApi]]


class TrafficCtrlFunction(PeriodicReportFunction):
    """Agent-side TC SM: control handling plus periodic queue reports.

    ``pipelines`` returns the node's live per-bearer TC pipelines;
    controls are routed by the (rnti, bearer) target in the control
    header (wildcards fan out to every pipeline).
    """

    def __init__(
        self,
        pipelines: PipelineDirectory,
        sm_codec: str = "fb",
        clock=None,
        visibility: Optional[VisibilityFn] = None,
        ran_function_id: Optional[int] = None,
    ) -> None:
        super().__init__(
            info=INFO,
            provider=lambda visible: self._snapshot(visible),
            sm_codec=sm_codec,
            clock=clock,
            visibility=visibility,
            ran_function_id=ran_function_id,
        )
        self.pipelines = pipelines

    def _snapshot(self, visible) -> dict:
        bearers = []
        for (rnti, bearer_id), api in sorted(self.pipelines().items()):
            if visible is not None and rnti not in visible:
                continue
            entry = api.queue_snapshot()
            entry["rnti"] = rnti
            entry["bearer_id"] = bearer_id
            bearers.append(entry)
        return {"bearers": bearers}

    def _targets(self, header: bytes) -> List[TcApi]:
        rnti, bearer_id = parse_target(header, self.sm_codec)
        matches = [
            api
            for (pipe_rnti, pipe_bearer), api in sorted(self.pipelines().items())
            if (rnti == 0 or pipe_rnti == rnti)
            and (bearer_id == 0 or pipe_bearer == bearer_id)
        ]
        return matches

    def on_control(self, origin: int, header: bytes, payload: bytes) -> ControlOutcome:
        targets = self._targets(header)
        if not targets:
            return ControlOutcome.fail(
                Cause.ric_request(Cause.CONTROL_MESSAGE_INVALID, "no matching pipeline")
            )
        try:
            command = decode_payload(payload, self.sm_codec)
            cmd = command["cmd"]
            result: Any = {"ok": True}
            for api in targets:
                if cmd == "add_queue":
                    api.add_queue(command["queue_id"])
                elif cmd == "del_queue":
                    api.del_queue(command["queue_id"])
                elif cmd == "add_filter":
                    filter_id = api.add_filter(
                        FiveTupleMatch.from_value(command["filter"]),
                        command["queue_id"],
                        command["prio"],
                    )
                    result = {"ok": True, "filter_id": filter_id}
                elif cmd == "del_filter":
                    api.del_filter(command["filter_id"])
                elif cmd == "set_pacer":
                    params_tree = command["params"]
                    params = {key: params_tree[key] for key in params_tree.keys()}
                    api.set_pacer(command["kind"], params)
                elif cmd == "set_sched":
                    api.set_scheduler(command["kind"])
                else:
                    return ControlOutcome.fail(
                        Cause.ric_request(
                            Cause.CONTROL_MESSAGE_INVALID, f"unknown cmd {cmd!r}"
                        )
                    )
        except (KeyError, TypeError) as exc:
            return ControlOutcome.fail(
                Cause.ric_request(Cause.CONTROL_MESSAGE_INVALID, f"malformed command: {exc}")
            )
        except ValueError as exc:
            return ControlOutcome.fail(Cause.ric_request(Cause.ADMISSION_REFUSED, str(exc)))
        return ControlOutcome.ok(encode_payload(result, self.sm_codec))
