"""PDCP statistics service model.

Per-bearer PDCP packet and byte counters — together with the RLC and
MAC SMs this covers "approximately the same data" FlexRAN's built-in
statistics export (§5.1).

Payload schema: ``{"bearers": [{"rnti", "bearer_id", "tx_pkts",
"tx_bytes", "rx_pkts", "rx_bytes"}], "tstamp_ms"}``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.sm.base import PeriodicReportFunction, SmInfo, StatsProvider, VisibilityFn

INFO = SmInfo(
    name="PDCP_STATS",
    oid="1.3.6.1.4.1.53148.1.1.2.144",
    default_function_id=144,
    payload_schema="pdcp_stats_report",
)


@dataclass
class PdcpBearerStats:
    """One bearer's PDCP counters."""

    rnti: int
    bearer_id: int
    tx_pkts: int = 0
    tx_bytes: int = 0
    rx_pkts: int = 0
    rx_bytes: int = 0

    def to_value(self) -> dict:
        return {
            "rnti": self.rnti,
            "bearer_id": self.bearer_id,
            "tx_pkts": self.tx_pkts,
            "tx_bytes": self.tx_bytes,
            "rx_pkts": self.rx_pkts,
            "rx_bytes": self.rx_bytes,
        }

    @classmethod
    def from_value(cls, value: Any) -> "PdcpBearerStats":
        return cls(
            rnti=value["rnti"],
            bearer_id=value["bearer_id"],
            tx_pkts=value["tx_pkts"],
            tx_bytes=value["tx_bytes"],
            rx_pkts=value["rx_pkts"],
            rx_bytes=value["rx_bytes"],
        )


def report_to_value(bearers: List[PdcpBearerStats], tstamp_ms: float) -> dict:
    return {"bearers": [b.to_value() for b in bearers], "tstamp_ms": tstamp_ms}


def report_from_value(value: Any) -> tuple:
    bearers = [PdcpBearerStats.from_value(item) for item in value["bearers"]]
    return bearers, value["tstamp_ms"]


class PdcpStatsFunction(PeriodicReportFunction):
    """Agent-side PDCP statistics RAN function."""

    def __init__(
        self,
        provider: StatsProvider,
        sm_codec: str = "fb",
        clock=None,
        visibility: Optional[VisibilityFn] = None,
        ran_function_id: Optional[int] = None,
    ) -> None:
        super().__init__(
            info=INFO,
            provider=provider,
            sm_codec=sm_codec,
            clock=clock,
            visibility=visibility,
            ran_function_id=ran_function_id,
        )
