"""E2SM-KPM: performance metrics service model (Appendix A.4).

One of the two SMs standardized by O-RAN at the time of the paper
(ORAN-WG3.E2SM-KPM-v01.00.00): "defines various report types on
periodic timer expires".  This implementation follows that structure:

* a *report style* selects which measurement group is produced
  (per-cell radio metrics, per-UE metrics, or cell load),
* the subscription's action definition names the style and an optional
  measurement filter (a list of metric names),
* reports fire on the standard periodic trigger.

Payload schema per report:
``{"style": int, "cell": {...}, "measurements": [{"name", "value"}],
"granularity_ms": float, "tstamp_ms": float}``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.agent.ran_function import RanFunction, SubscriptionHandle
from repro.core.e2ap.ies import (
    RicActionAdmitted,
    RicActionDefinition,
    RicActionKind,
    RicActionNotAdmitted,
)
from repro.core.e2ap.procedures import Cause
from repro.sm.base import (
    DECODE_ERRORS,
    PeriodicTrigger,
    SmInfo,
    count_contained_decode,
    decode_payload,
    encode_payload,
)

INFO = SmInfo(
    name="KPM",
    oid="1.3.6.1.4.1.53148.1.1.2.2",
    default_function_id=2,
    payload_schema="kpm_report",
)

#: Report styles, mirroring E2SM-KPM's style list.
STYLE_CELL_METRICS = 1   # DRB.UEThpDl, RRU.PrbTotDl, ...
STYLE_UE_METRICS = 2     # per-UE throughput/PRB usage
STYLE_CELL_LOAD = 3      # connected UEs, PRB utilization

#: Metric names per style (subset of 3GPP TS 28.552 counters).
STYLE_METRICS: Dict[int, Tuple[str, ...]] = {
    STYLE_CELL_METRICS: ("DRB.UEThpDl", "RRU.PrbTotDl", "DRB.PdcpSduVolumeDL"),
    STYLE_UE_METRICS: ("DRB.UEThpDl.UE", "RRU.PrbUsedDl.UE"),
    STYLE_CELL_LOAD: ("RRC.ConnMean", "RRU.PrbUtilDl"),
}


def build_action_definition(style: int, metrics: Optional[List[str]], codec_name: str) -> bytes:
    """Controller side: SM-encode the action definition."""
    if style not in STYLE_METRICS:
        raise ValueError(f"unknown KPM report style {style}")
    return encode_payload(
        {"style": style, "metrics": list(metrics or ())},
        codec_name,
        schema="kpm_action",
    )


def parse_action_definition(data: bytes, codec_name: str) -> Tuple[int, List[str]]:
    """Decode an action definition; empty bytes mean the default style
    (cell metrics, all counters) so generic subscribers need no KPM
    knowledge."""
    if not data:
        return STYLE_CELL_METRICS, []
    tree = decode_payload(data, codec_name, schema="kpm_action")
    return tree["style"], list(tree["metrics"])


@dataclass(frozen=True)
class KpmMeasurement:
    """One metric sample inside a report."""

    name: str
    value: float

    def to_value(self) -> dict:
        return {"name": self.name, "value": self.value}

    @classmethod
    def from_value(cls, value: Any) -> "KpmMeasurement":
        return cls(name=value["name"], value=value["value"])


def report_to_value(
    style: int, measurements: List[KpmMeasurement], granularity_ms: float, tstamp_ms: float
) -> dict:
    return {
        "style": style,
        "measurements": [m.to_value() for m in measurements],
        "granularity_ms": granularity_ms,
        "tstamp_ms": tstamp_ms,
    }


def report_from_value(value: Any) -> Tuple[int, List[KpmMeasurement], float]:
    return (
        value["style"],
        [KpmMeasurement.from_value(item) for item in value["measurements"]],
        value["tstamp_ms"],
    )


#: Metric provider: (style, wanted names, visible UEs) -> measurements.
KpmProvider = Callable[[int, List[str], Optional[Set[int]]], List[KpmMeasurement]]


class KpmFunction(RanFunction):
    """Agent-side E2SM-KPM with per-subscription report styles."""

    def __init__(
        self,
        provider: KpmProvider,
        sm_codec: str = "fb",
        clock=None,
        visibility=None,
        ran_function_id: Optional[int] = None,
    ) -> None:
        super().__init__(
            ran_function_id=INFO.default_function_id if ran_function_id is None else ran_function_id,
            name=INFO.name,
            oid=INFO.oid,
            revision=INFO.version,
        )
        self.provider = provider
        self.sm_codec = sm_codec
        self.clock = clock
        self.visibility = visibility or (lambda origin: None)
        self._styles: Dict[Tuple, List[Tuple[int, int, List[str]]]] = {}
        self._periods: Dict[Tuple, float] = {}
        self._tasks: Dict[Tuple, object] = {}

    def on_subscription(
        self,
        handle: SubscriptionHandle,
        event_trigger: bytes,
        actions: List[RicActionDefinition],
    ):
        try:
            trigger = PeriodicTrigger.from_bytes(event_trigger, self.sm_codec)
        except DECODE_ERRORS:
            count_contained_decode()
            return [], [
                RicActionNotAdmitted(a.action_id, 0, Cause.CONTROL_MESSAGE_INVALID)
                for a in actions
            ]
        admitted: List[RicActionAdmitted] = []
        rejected: List[RicActionNotAdmitted] = []
        styles: List[Tuple[int, int, List[str]]] = []
        for action in actions:
            if action.kind != RicActionKind.REPORT:
                rejected.append(
                    RicActionNotAdmitted(action.action_id, 0, Cause.ACTION_NOT_SUPPORTED)
                )
                continue
            try:
                style, metrics = parse_action_definition(action.definition, self.sm_codec)
            except DECODE_ERRORS:
                count_contained_decode()
                rejected.append(
                    RicActionNotAdmitted(action.action_id, 0, Cause.CONTROL_MESSAGE_INVALID)
                )
                continue
            if style not in STYLE_METRICS:
                rejected.append(
                    RicActionNotAdmitted(action.action_id, 0, Cause.ACTION_NOT_SUPPORTED)
                )
                continue
            admitted.append(RicActionAdmitted(action.action_id))
            styles.append((action.action_id, style, metrics))
        if not admitted:
            return admitted, rejected
        key = handle.key()
        self.subscriptions[key] = handle
        self._styles[key] = styles
        self._periods[key] = trigger.period_ms
        if self.clock is not None:
            self._tasks[key] = self.clock.call_every(
                trigger.period_ms / 1000.0, lambda: self._report(handle)
            )
        return admitted, rejected

    def on_subscription_delete(self, handle: SubscriptionHandle) -> bool:
        key = handle.key()
        task = self._tasks.pop(key, None)
        if task is not None:
            task.stop()
        self._styles.pop(key, None)
        self._periods.pop(key, None)
        return super().on_subscription_delete(handle)

    def _report(self, handle: SubscriptionHandle) -> None:
        key = handle.key()
        visible = self.visibility(handle.origin)
        period = self._periods.get(key, 0.0)
        for action_id, style, metrics in self._styles.get(key, ()):
            wanted = metrics or list(STYLE_METRICS[style])
            samples = self.provider(style, wanted, visible)
            payload = encode_payload(
                report_to_value(style, samples, period, 0.0),
                self.sm_codec,
                schema="kpm_report",
            )
            self.emit(handle, action_id, header=b"", payload=payload)

    def pump(self) -> int:
        count = 0
        for handle in list(self.subscriptions.values()):
            self._report(handle)
            count += 1
        return count


def base_station_provider(bs) -> KpmProvider:
    """Derive KPM metrics from a simulated base station's state."""

    def provide(style: int, wanted: List[str], visible: Optional[Set[int]]):
        ues = [
            ue for rnti, ue in sorted(bs.mac.ues.items())
            if visible is None or rnti in visible
        ]
        tti_s = bs.config.phy.tti_s
        samples: List[KpmMeasurement] = []
        for name in wanted:
            if name == "DRB.UEThpDl":
                total = sum(ue.total_bytes_dl for ue in ues)
                samples.append(KpmMeasurement(name, total * 8 / 1e6))
            elif name == "RRU.PrbTotDl":
                samples.append(KpmMeasurement(name, float(bs.config.phy.n_prbs)))
            elif name == "DRB.PdcpSduVolumeDL":
                total = sum(entity.tx_bytes for entity in bs.pdcp.values())
                samples.append(KpmMeasurement(name, total / 1000.0))
            elif name == "RRC.ConnMean":
                samples.append(KpmMeasurement(name, float(len(ues))))
            elif name == "RRU.PrbUtilDl":
                ttis = max(bs.mac.ttis_run, 1)
                used = sum(ue.total_bytes_dl for ue in ues)
                capacity = bs.mac.phy.n_prbs * ttis
                samples.append(KpmMeasurement(name, min(1.0, used / max(capacity, 1))))
            elif name.endswith(".UE"):
                for ue in ues:
                    samples.append(
                        KpmMeasurement(f"{name}.{ue.rnti}", float(ue.total_bytes_dl))
                    )
            else:
                samples.append(KpmMeasurement(name, 0.0))
        return samples

    return provide
