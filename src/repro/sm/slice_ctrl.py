"""Slicing control service model (SC SM, §6.1.2).

Abstracts the configuration of radio-resource slices in a
RAT-independent way: the SM "allows to configure the slice algorithm
(setting the slice scheduler) and a list of slices with
algorithm-specific parameters (selecting the user scheduler and
configuring its available resources)", plus the UE-to-slice
association.  The xApp stays oblivious of the RAT.

Control commands (value trees, SM-encoded):

* ``{"cmd": "set_algo", "algo": "none"|"static"|"nvs"}``
* ``{"cmd": "add_slice", "slice": {...SliceConfig...}}``
* ``{"cmd": "del_slice", "slice_id": int}``
* ``{"cmd": "assoc_ue", "rnti": int, "slice_id": int}``

Reports carry the current slice configuration and per-slice resource
usage, via the standard periodic trigger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Protocol, Tuple

from repro.core.agent.ran_function import ControlOutcome, SubscriptionHandle
from repro.core.e2ap.procedures import Cause
from repro.sm.base import (
    PeriodicReportFunction,
    SmInfo,
    StatsProvider,
    VisibilityFn,
    decode_payload,
    encode_payload,
)

INFO = SmInfo(name="SLICE_CTRL", oid="1.3.6.1.4.1.53148.1.1.2.146", default_function_id=146)

ALGO_NONE = "none"      # single scheduler, no slicing
ALGO_STATIC = "static"  # fixed resource partition, no sharing
ALGO_NVS = "nvs"        # NVS capacity/rate slicing (Kokku et al.)

KIND_CAPACITY = "capacity"
KIND_RATE = "rate"


@dataclass(frozen=True)
class SliceConfig:
    """Algorithm-specific slice parameters.

    ``cap`` is the resource share for capacity slices (0..1];
    ``rate_mbps``/``ref_mbps`` parameterize NVS rate slices
    (reserved rate over reference rate, Appendix B).
    """

    slice_id: int
    label: str = ""
    kind: str = KIND_CAPACITY
    cap: float = 0.0
    rate_mbps: float = 0.0
    ref_mbps: float = 0.0
    ue_scheduler: str = "pf"

    def to_value(self) -> dict:
        return {
            "slice_id": self.slice_id,
            "label": self.label,
            "kind": self.kind,
            "cap": self.cap,
            "rate_mbps": self.rate_mbps,
            "ref_mbps": self.ref_mbps,
            "ue_scheduler": self.ue_scheduler,
        }

    @classmethod
    def from_value(cls, value: Any) -> "SliceConfig":
        return cls(
            slice_id=value["slice_id"],
            label=value["label"],
            kind=value["kind"],
            cap=value["cap"],
            rate_mbps=value["rate_mbps"],
            ref_mbps=value["ref_mbps"],
            ue_scheduler=value["ue_scheduler"],
        )

    @property
    def resource_share(self) -> float:
        """The NVS resource fraction this slice consumes."""
        if self.kind == KIND_CAPACITY:
            return self.cap
        if self.ref_mbps <= 0.0:
            raise ValueError(f"rate slice {self.slice_id} has no reference rate")
        return self.rate_mbps / self.ref_mbps


class SliceControlApi(Protocol):
    """What a MAC layer must expose for the SC SM to drive it.

    Implementations raise ``ValueError`` on admission-control failures
    (e.g. total resource share exceeding 1.0) — "it is the SM ... to
    perform sufficient admission control upon subscriptions of the
    controllers, and ensure that the requested operations are
    conflict-free" (§4.1.2).
    """

    def set_slice_algorithm(self, algo: str) -> None: ...

    def add_slice(self, config: SliceConfig) -> None: ...

    def delete_slice(self, slice_id: int) -> None: ...

    def associate_ue(self, rnti: int, slice_id: int) -> None: ...

    def slice_snapshot(self) -> dict: ...


# -- controller-side command builders ---------------------------------


def build_set_algo(algo: str, codec_name: str) -> bytes:
    return encode_payload({"cmd": "set_algo", "algo": algo}, codec_name)


def build_add_slice(config: SliceConfig, codec_name: str) -> bytes:
    return encode_payload({"cmd": "add_slice", "slice": config.to_value()}, codec_name)


def build_del_slice(slice_id: int, codec_name: str) -> bytes:
    return encode_payload({"cmd": "del_slice", "slice_id": slice_id}, codec_name)


def build_assoc_ue(rnti: int, slice_id: int, codec_name: str) -> bytes:
    return encode_payload({"cmd": "assoc_ue", "rnti": rnti, "slice_id": slice_id}, codec_name)


def parse_command(payload: bytes, codec_name: str) -> dict:
    tree = decode_payload(payload, codec_name)
    return {key: tree[key] for key in tree.keys()} if hasattr(tree, "keys") else dict(tree)


class SliceCtrlFunction(PeriodicReportFunction):
    """Agent-side SC SM: control handling plus periodic config reports."""

    def __init__(
        self,
        api: SliceControlApi,
        sm_codec: str = "fb",
        clock=None,
        visibility: Optional[VisibilityFn] = None,
        ran_function_id: Optional[int] = None,
    ) -> None:
        super().__init__(
            info=INFO,
            provider=lambda visible: api.slice_snapshot(),
            sm_codec=sm_codec,
            clock=clock,
            visibility=visibility,
            ran_function_id=ran_function_id,
        )
        self.api = api

    def on_control(self, origin: int, header: bytes, payload: bytes) -> ControlOutcome:
        try:
            command = decode_payload(payload, self.sm_codec)
            cmd = command["cmd"]
            if cmd == "set_algo":
                self.api.set_slice_algorithm(command["algo"])
            elif cmd == "add_slice":
                self.api.add_slice(SliceConfig.from_value(command["slice"]))
            elif cmd == "del_slice":
                self.api.delete_slice(command["slice_id"])
            elif cmd == "assoc_ue":
                self.api.associate_ue(command["rnti"], command["slice_id"])
            else:
                return ControlOutcome.fail(
                    Cause.ric_request(Cause.CONTROL_MESSAGE_INVALID, f"unknown cmd {cmd!r}")
                )
        except (KeyError, TypeError) as exc:
            return ControlOutcome.fail(
                Cause.ric_request(Cause.CONTROL_MESSAGE_INVALID, f"malformed command: {exc}")
            )
        except ValueError as exc:
            # Admission control refused the operation.
            return ControlOutcome.fail(
                Cause.ric_request(Cause.ADMISSION_REFUSED, str(exc))
            )
        return ControlOutcome.ok(encode_payload({"ok": True}, self.sm_codec))
