"""MAC statistics service model (§4.1.1, Fig. 3).

Reports per-UE MAC-layer counters — CQI, MCS, allocated resource
blocks, transported bytes — "excluding HARQ" exactly as the paper's
experiments configure it (§5.1, §5.3).  Payload schema:

``{"ues": [{"rnti", "cqi", "mcs_dl", "mcs_ul", "prbs_dl", "prbs_ul",
"bytes_dl", "bytes_ul", "slice_id"}], "tstamp_ms"}``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Set

from repro.sm.base import PeriodicReportFunction, SmInfo, StatsProvider, VisibilityFn

INFO = SmInfo(
    name="MAC_STATS",
    oid="1.3.6.1.4.1.53148.1.1.2.142",
    default_function_id=142,
    payload_schema="mac_stats_report",
)


@dataclass
class MacUeStats:
    """One UE's MAC counters over the last reporting period."""

    rnti: int
    cqi: int = 15
    mcs_dl: int = 28
    mcs_ul: int = 28
    prbs_dl: int = 0
    prbs_ul: int = 0
    bytes_dl: int = 0
    bytes_ul: int = 0
    slice_id: int = 0

    def to_value(self) -> dict:
        return {
            "rnti": self.rnti,
            "cqi": self.cqi,
            "mcs_dl": self.mcs_dl,
            "mcs_ul": self.mcs_ul,
            "prbs_dl": self.prbs_dl,
            "prbs_ul": self.prbs_ul,
            "bytes_dl": self.bytes_dl,
            "bytes_ul": self.bytes_ul,
            "slice_id": self.slice_id,
        }

    @classmethod
    def from_value(cls, value: Any) -> "MacUeStats":
        return cls(
            rnti=value["rnti"],
            cqi=value["cqi"],
            mcs_dl=value["mcs_dl"],
            mcs_ul=value["mcs_ul"],
            prbs_dl=value["prbs_dl"],
            prbs_ul=value["prbs_ul"],
            bytes_dl=value["bytes_dl"],
            bytes_ul=value["bytes_ul"],
            slice_id=value["slice_id"],
        )


def report_to_value(ues: List[MacUeStats], tstamp_ms: float) -> dict:
    return {"ues": [ue.to_value() for ue in ues], "tstamp_ms": tstamp_ms}


def report_from_value(value: Any) -> tuple:
    """Returns (list of MacUeStats, tstamp_ms)."""
    ues = [MacUeStats.from_value(item) for item in value["ues"]]
    return ues, value["tstamp_ms"]


class MacStatsFunction(PeriodicReportFunction):
    """Agent-side MAC statistics RAN function."""

    def __init__(
        self,
        provider: StatsProvider,
        sm_codec: str = "fb",
        clock=None,
        visibility: Optional[VisibilityFn] = None,
        ran_function_id: Optional[int] = None,
    ) -> None:
        super().__init__(
            info=INFO,
            provider=provider,
            sm_codec=sm_codec,
            clock=clock,
            visibility=visibility,
            ran_function_id=ran_function_id,
        )


def synthetic_provider(num_ues: int, bearer_bytes: int = 12_000) -> StatsProvider:
    """Provider for dummy test agents (§5.3): ``num_ues`` UEs with a
    unique default bearer each, deterministic counter patterns."""
    counters = {"t": 0}

    def provide(visible: Optional[Set[int]]) -> dict:
        counters["t"] += 1
        tick = counters["t"]
        ues = []
        for rnti in range(num_ues):
            if visible is not None and rnti not in visible:
                continue
            ues.append(
                MacUeStats(
                    rnti=rnti,
                    cqi=7 + (rnti + tick) % 9,
                    mcs_dl=10 + (rnti + tick) % 18,
                    mcs_ul=10 + (rnti * 3 + tick) % 18,
                    prbs_dl=(rnti * 7 + tick) % 106,
                    prbs_ul=(rnti * 5 + tick) % 106,
                    bytes_dl=bearer_bytes + rnti * 100 + tick,
                    bytes_ul=bearer_bytes // 4 + rnti * 25 + tick,
                    slice_id=0,
                ).to_value()
            )
        return {"ues": ues, "tstamp_ms": float(tick)}

    return provide
