"""RRC configuration/event service model.

Event-driven (not periodic): emits a report whenever a UE attaches or
detaches, carrying the selected PLMN and slice identifier (S-NSSAI).
The slicing controller of §6.1.2 "discovers the UE-to-service
association through the selected PLMN identification or slice
information provided in the attach procedure" via this SM; the
infrastructure controller of Fig. 4 uses it to configure the
UE-to-controller association at the DU agent.

Payload schema: ``{"event": "attach"|"detach", "rnti", "plmn",
"snssai", "tstamp_ms"}``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.core.agent.ran_function import RanFunction, SubscriptionHandle
from repro.core.e2ap.ies import (
    RicActionAdmitted,
    RicActionDefinition,
    RicActionKind,
    RicActionNotAdmitted,
)
from repro.core.e2ap.procedures import Cause
from repro.sm.base import SmInfo, decode_payload, encode_payload

INFO = SmInfo(name="RRC_CONF", oid="1.3.6.1.4.1.53148.1.1.2.145", default_function_id=145)

EVENT_ATTACH = "attach"
EVENT_DETACH = "detach"


@dataclass(frozen=True)
class RrcUeEvent:
    """One UE attach/detach notification."""

    event: str
    rnti: int
    plmn: str
    snssai: int
    tstamp_ms: float = 0.0

    def to_value(self) -> dict:
        return {
            "event": self.event,
            "rnti": self.rnti,
            "plmn": self.plmn,
            "snssai": self.snssai,
            "tstamp_ms": self.tstamp_ms,
        }

    @classmethod
    def from_value(cls, value: Any) -> "RrcUeEvent":
        return cls(
            event=value["event"],
            rnti=value["rnti"],
            plmn=value["plmn"],
            snssai=value["snssai"],
            tstamp_ms=value["tstamp_ms"],
        )


def build_handover(rnti: int, target_nb: int, codec_name: str) -> bytes:
    """Controller side: command a handover of ``rnti`` to ``target_nb``.

    The paper lists handovers among what xApps control through FlexRIC
    (§1); Fig. 14b has the virtualization layer translating exactly
    this command for disaggregated deployments.
    """
    return encode_payload(
        {"cmd": "handover", "rnti": rnti, "target_nb": target_nb}, codec_name
    )


class RrcConfFunction(RanFunction):
    """Agent-side RRC event function.

    The base station calls :meth:`notify_attach` / :meth:`notify_detach`
    from its RRC procedures; every subscriber receives the event.
    When a ``mobility`` handler is wired (a callable taking
    ``(rnti, target_nb)``), the function also accepts handover controls.
    """

    def __init__(self, sm_codec: str = "fb", ran_function_id: int = INFO.default_function_id) -> None:
        super().__init__(
            ran_function_id=ran_function_id, name=INFO.name, oid=INFO.oid, revision=INFO.version
        )
        self.sm_codec = sm_codec
        self.events_emitted = 0
        #: wired by the node when it supports mobility.
        self.mobility = None

    def on_control(self, origin: int, header: bytes, payload: bytes):
        from repro.core.agent.ran_function import ControlOutcome
        from repro.core.e2ap.procedures import Cause
        from repro.ran.mobility import HandoverError

        try:
            command = decode_payload(payload, self.sm_codec)
            if command["cmd"] != "handover":
                return ControlOutcome.fail(
                    Cause.ric_request(
                        Cause.CONTROL_MESSAGE_INVALID, f"unknown cmd {command['cmd']!r}"
                    )
                )
            rnti = command["rnti"]
            target_nb = command["target_nb"]
        except (KeyError, TypeError) as exc:
            return ControlOutcome.fail(
                Cause.ric_request(Cause.CONTROL_MESSAGE_INVALID, f"malformed: {exc}")
            )
        if self.mobility is None:
            return ControlOutcome.fail(
                Cause.ric_service(Cause.FUNCTION_RESOURCE_LIMIT, "mobility not available")
            )
        try:
            self.mobility(rnti, target_nb)
        except (HandoverError, KeyError, ValueError) as exc:
            return ControlOutcome.fail(
                Cause.ric_request(Cause.ADMISSION_REFUSED, str(exc))
            )
        return ControlOutcome.ok()

    def on_subscription(
        self,
        handle: SubscriptionHandle,
        event_trigger: bytes,
        actions: List[RicActionDefinition],
    ) -> Tuple[List[RicActionAdmitted], List[RicActionNotAdmitted]]:
        report_actions = [a for a in actions if a.kind == RicActionKind.REPORT]
        if not report_actions:
            return [], [
                RicActionNotAdmitted(a.action_id, 0, Cause.ACTION_NOT_SUPPORTED)
                for a in actions
            ]
        self.subscriptions[handle.key()] = handle
        return [RicActionAdmitted(a.action_id) for a in report_actions], [
            RicActionNotAdmitted(a.action_id, 0, Cause.ACTION_NOT_SUPPORTED)
            for a in actions
            if a.kind != RicActionKind.REPORT
        ]

    # -- base-station-facing ------------------------------------------

    def notify_attach(self, rnti: int, plmn: str, snssai: int, tstamp_ms: float = 0.0) -> None:
        self._broadcast(RrcUeEvent(EVENT_ATTACH, rnti, plmn, snssai, tstamp_ms))

    def notify_detach(self, rnti: int, plmn: str, snssai: int, tstamp_ms: float = 0.0) -> None:
        self._broadcast(RrcUeEvent(EVENT_DETACH, rnti, plmn, snssai, tstamp_ms))

    def _broadcast(self, event: RrcUeEvent) -> None:
        payload = encode_payload(event.to_value(), self.sm_codec)
        for handle in list(self.subscriptions.values()):
            self.emit(handle, action_id=1, header=b"", payload=payload)
            self.events_emitted += 1


def parse_event(payload: bytes, codec_name: str) -> RrcUeEvent:
    """Controller side: decode an RRC event indication payload."""
    return RrcUeEvent.from_value(decode_payload(payload, codec_name))
