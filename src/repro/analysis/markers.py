"""Source markers the static analyzer recognizes.

Runtime no-ops: the decorators only attach metadata so that grepping a
class tells the reader (and ``repro-lint``) which attributes are
copy-on-write snapshots and which methods are their sanctioned
mutators.  Kept free of any other repro import so hot modules can use
them without pulling in the analysis machinery.
"""

from __future__ import annotations

from typing import Any, Callable, Type, TypeVar

T = TypeVar("T")


def cow_snapshot(*attrs: str) -> Callable[[Type[T]], Type[T]]:
    """Class decorator declaring copy-on-write snapshot attributes.

    Declared attributes are read lock-free on hot paths, so they may
    only ever be *rebound* to a freshly built mapping (under the
    owner's mutator lock) — never mutated in place — and readers must
    load the attribute into a local exactly once per operation.
    ``repro-lint`` rule RL003 enforces all three properties.
    """

    def mark(cls: Type[T]) -> Type[T]:
        existing = tuple(getattr(cls, "__cow_snapshots__", ()))
        cls.__cow_snapshots__ = existing + attrs
        return cls

    return mark


def cow_mutator(func: Callable[..., Any]) -> Callable[..., Any]:
    """Marks a method as a sanctioned snapshot publisher.

    The method may rebind ``@cow_snapshot`` attributes without a
    lexically visible ``with self._lock`` because its *callers* hold
    the mutator lock (the docstring of each marked method states the
    contract).  RL003 treats any other rebind site as a violation.
    """
    func.__cow_mutator__ = True
    return func
