"""repro-lint configuration: scopes and repo-specific knobs.

Kept as plain data so fixture tests can build alternative configs and
so the rule catalog in DESIGN.md §12 has one authoritative source for
"where does this rule apply".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

#: every analyzable tree, relative to the repo root.
ALL_ROOTS: Tuple[str, ...] = ("src", "tests", "benchmarks", "examples")

#: production code only (rules about runtime invariants).
SRC: Tuple[str, ...] = ("src/repro/",)

#: everything (rules about universally wrong constructs).
EVERYWHERE: Tuple[str, ...] = ("",)

#: zero-copy data-plane modules (RL007): the framing/transport/codec
#: hot path where one stray ``bytes(...)`` re-introduces a per-message
#: O(payload) copy (DESIGN.md §15).
HOT_PATH: Tuple[str, ...] = (
    "src/repro/core/transport/framing.py",
    "src/repro/core/transport/tcp.py",
    "src/repro/core/transport/inproc.py",
    "src/repro/core/transport/bufpool.py",
    "src/repro/core/codec/per.py",
    "src/repro/core/codec/flat.py",
    "src/repro/core/codec/protobuf.py",
)


@dataclass(frozen=True)
class LintConfig:
    """Tunable surface of the analyzer."""

    #: path-prefix scope per rule code (matched against the
    #: forward-slash path relative to the repo root).
    rule_scopes: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "RL001": EVERYWHERE,
            "RL002": SRC,
            "RL003": SRC,
            "RL004": SRC,
            "RL005": SRC,
            "RL006": EVERYWHERE,
            "RL007": HOT_PATH,
        }
    )

    #: extra COW snapshot declarations for classes that cannot carry
    #: the ``@cow_snapshot`` decorator: relpath -> {class -> {attrs}}.
    cow_snapshot_attrs: Dict[str, Dict[str, FrozenSet[str]]] = field(
        default_factory=dict
    )

    #: function names that implement shard selector/dispatch loops;
    #: blocking calls inside them must be bounded by a timeout (RL004).
    #: ``_worker_run`` is the bounded overload worker pool's loop — the
    #: queue/admission paths of DESIGN.md §13 live under the same
    #: bounded-blocking rule as the transport shard loops.  The §14
    #: multiprocess tier adds three more long-lived loops: the worker
    #: command loop (``_worker_loop``), the parent supervision loop
    #: (``_supervise``) and the no-reuseport accept loop
    #: (``_accept_loop``) — an unbounded block in any of them would
    #: wedge crash detection or shutdown.
    loop_functions: FrozenSet[str] = frozenset(
        {
            "_run",
            "_poll",
            "_shard_run",
            "_worker_run",
            "_worker_loop",
            "_supervise",
            "_accept_loop",
        }
    )

    #: blocking call names RL004 audits inside loop functions.
    #: ``poll`` covers multiprocessing.Connection.poll — the §14 pipe
    #: protocol's equivalent of select().
    blocking_calls: FrozenSet[str] = frozenset(
        {"select", "wait", "get", "join", "acquire", "recv", "poll"}
    )

    #: files that MUST contain a generated region (RL006): hand-rolled
    #: replacements of generated artifacts are flagged even when the
    #: author also deleted the markers.
    generated_required: Tuple[str, ...] = (
        "src/repro/core/codec/kernel_manifest.py",
    )


DEFAULT_CONFIG = LintConfig()
