"""Lock-order instrumentation: acquisition graph + inversion detection.

A classic happened-before lock checker in the spirit of the kernel's
lockdep: every tracked acquisition while other tracked locks are held
adds a *site → site* edge to a global directed graph, where a site is
the source location that created the lock (``path:lineno``) — so all
instances born at one line (e.g. every ``Server._lock``) share a
node.  An edge that closes a cycle means two code paths acquire the
same pair of lock classes in opposite orders: a potential deadlock,
reported deterministically even when the interleaving that would
actually deadlock never happens in the run.

Design constraints:

* **no false negatives from scheduling** — the graph accumulates
  across threads and time, so an ABBA pair is flagged as soon as both
  orders have been *seen*, not only when they overlap;
* **reentrancy-aware** — re-acquiring an RLock (or the same lock
  instance) already held by this thread adds no edge;
* **cheap when uncontended** — an acquisition with no other tracked
  lock held touches only a thread-local list; the graph mutex is an
  original (untracked) lock so the checker cannot recurse into
  itself.

The wrappers are API-compatible with ``threading.Lock``/``RLock``
including the private ``_is_owned``/``_release_save``/
``_acquire_restore`` hooks ``threading.Condition`` probes for, so a
``Condition`` built on a tracked lock keeps correct wait semantics.
"""

from __future__ import annotations

import _thread
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockGraph",
    "LockOrderViolation",
    "TrackedLock",
    "TrackedRLock",
    "GRAPH",
]

#: untracked primitives (bypass any monkeypatching of threading.*).
_real_lock = _thread.allocate_lock
_real_rlock = _thread.RLock


@dataclass
class LockOrderViolation:
    """One detected inversion: the new edge closed a cycle."""

    #: acquisition order observed now: ``held`` was held while
    #: acquiring ``acquired``.
    held: str
    acquired: str
    #: the pre-existing reverse path acquired → ... → held.
    cycle: Tuple[str, ...]
    thread: str

    def describe(self) -> str:
        chain = " -> ".join(self.cycle)
        return (
            f"lock-order inversion in thread {self.thread!r}: acquired "
            f"{self.acquired!r} while holding {self.held!r}, but the "
            f"opposite order already exists ({chain})"
        )


class _Held(threading.local):
    def __init__(self) -> None:
        self.stack: List[Tuple[str, object]] = []


@dataclass
class LockGraph:
    """Site-level lock acquisition graph with cycle detection."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    violations: List[LockOrderViolation] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._mu = _real_lock()
        self._held = _Held()
        self._seen_pairs: Set[Tuple[str, str]] = set()

    # -- bookkeeping ---------------------------------------------------

    def reset(self) -> None:
        with self._mu:
            self.edges.clear()
            self.violations.clear()
            self._seen_pairs.clear()

    def drain_violations(self) -> List[LockOrderViolation]:
        with self._mu:
            out = list(self.violations)
            self.violations.clear()
        return out

    def held_sites(self) -> List[str]:
        """Sites of locks the calling thread currently holds."""
        return [site for site, _inst in self._held.stack]

    # -- acquisition hooks --------------------------------------------

    def note_acquired(self, lock: object, site: str) -> None:
        stack = self._held.stack
        for _held_site, inst in stack:
            if inst is lock:
                # Reentrant re-acquisition: no new ordering information.
                stack.append((site, lock))
                return
        if stack:
            held_site = stack[-1][0]
            if held_site != site:
                self._add_edge(held_site, site)
        stack.append((site, lock))

    def note_released(self, lock: object) -> None:
        stack = self._held.stack
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][1] is lock:
                del stack[index]
                return

    def note_released_all(self, lock: object) -> int:
        """Drop every stack entry for ``lock`` (Condition full-release);
        returns how many were held so they can be restored."""
        stack = self._held.stack
        count = 0
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][1] is lock:
                del stack[index]
                count += 1
        return count

    # -- graph ---------------------------------------------------------

    def _add_edge(self, a: str, b: str) -> None:
        with self._mu:
            if b in self.edges.setdefault(a, set()):
                return
            self.edges[a].add(b)
            cycle = self._path(b, a)
            if cycle is not None and (a, b) not in self._seen_pairs:
                self._seen_pairs.add((a, b))
                self._seen_pairs.add((b, a))
                self.violations.append(
                    LockOrderViolation(
                        held=a,
                        acquired=b,
                        cycle=tuple(cycle) + (b,),
                        thread=threading.current_thread().name,
                    )
                )

    def _path(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS: a path start → goal through ``edges`` (excluding the
        edge just added, which closed the cycle)."""
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        visited = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self.edges.get(node, ()):
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None


#: process-global graph used by the installed instrumentation.
GRAPH = LockGraph()


class _TrackedBase:
    """Common acquire/release accounting for both lock flavors."""

    __slots__ = ("_lock", "_site", "_graph")

    def __init__(self, site: str, graph: Optional[LockGraph] = None) -> None:
        self._site = site
        self._graph = graph if graph is not None else GRAPH

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            self._graph.note_acquired(self, self._site)
        return ok

    def release(self) -> None:
        self._graph.note_released(self)
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} site={self._site!r} {self._lock!r}>"


class TrackedLock(_TrackedBase):
    """Instrumented ``threading.Lock``."""

    __slots__ = ()

    def __init__(self, site: str, graph: Optional[LockGraph] = None) -> None:
        super().__init__(site, graph)
        self._lock = _real_lock()

    def locked(self) -> bool:
        return self._lock.locked()


class TrackedRLock(_TrackedBase):
    """Instrumented ``threading.RLock`` (Condition-compatible)."""

    __slots__ = ()

    def __init__(self, site: str, graph: Optional[LockGraph] = None) -> None:
        super().__init__(site, graph)
        self._lock = _real_rlock()

    # ``threading.Condition`` probes these by hasattr; forwarding them
    # keeps reentrant-wait semantics while the graph stays consistent.
    def _is_owned(self) -> bool:
        return self._lock._is_owned()

    def _release_save(self):
        count = self._graph.note_released_all(self)
        return (self._lock._release_save(), count)

    def _acquire_restore(self, state) -> None:
        inner, count = state
        self._lock._acquire_restore(inner)
        for _ in range(count):
            self._graph.note_acquired(self, self._site)
