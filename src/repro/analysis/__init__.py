"""Invariant analysis suite: static lint + runtime race detectors.

PRs 5–6 bought throughput by replacing simple code with *unenforced
invariants*: copy-on-write routing snapshots that must never be
mutated in place, monotonic-clock deadlines, ``DECODE_ERRORS``-bounded
containment on the decode paths, and generated codec kernels that must
stay byte-equivalent to the interpretive oracle.  This package turns
those conventions into machine-checked contracts:

* :mod:`repro.analysis.lint` — **repro-lint**, an AST-based static
  analyzer (stdlib ``ast``, zero dependencies) with repo-specific
  rules RL001–RL006, ``# repro-lint: disable=CODE`` pragmas, a JSON
  baseline for grandfathered findings, and a CLI
  (``python -m repro.analysis.lint``) that exits non-zero on new
  findings so it can gate CI and local runs alike.

* :mod:`repro.analysis.runtime` — test-time instrumentation: an
  instrumented ``threading.Lock``/``RLock`` that records the
  lock-acquisition graph and flags lock-order inversions across
  threads, plus a "freezer" that wraps published COW snapshot dicts in
  a mutation-raising proxy.  Enabled with ``REPRO_ANALYSIS=1`` (wired
  in ``tests/conftest.py``) so races surface as deterministic test
  failures instead of flaky benchmarks.

The rule catalog and the invariant each rule guards are documented in
DESIGN.md §12.
"""

from repro.analysis.markers import cow_mutator, cow_snapshot

__all__ = ["cow_mutator", "cow_snapshot"]
