"""COW snapshot freezer: mutation-raising proxy for published routes.

The sharded ingest (DESIGN.md §10) publishes routing tables as
copy-on-write snapshots: plain dicts that hot-path readers load
lock-free, and that mutators *replace* — never mutate — under their
lock.  Nothing in production enforces the "never mutate" half; a
``.update()`` slipped into a future refactor would corrupt concurrent
readers only under load, as a flaky benchmark.

Under analysis mode (``REPRO_ANALYSIS=1``) every published snapshot is
wrapped in :class:`FrozenSnapshot`, a dict subclass whose mutating
methods raise :class:`SnapshotMutationError` at the offending call
site — turning the race into a deterministic stack trace.  Reads stay
plain C-speed ``dict`` operations, and with the freezer disabled
:func:`publish_snapshot` returns its argument untouched, so the hot
path costs nothing in production.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = [
    "FrozenSnapshot",
    "SnapshotMutationError",
    "publish_snapshot",
    "set_freezing",
    "freezing",
]


class SnapshotMutationError(RuntimeError):
    """In-place mutation of a published copy-on-write snapshot."""


def _refuse(op: str):
    def method(self, *args: Any, **kwargs: Any):  # noqa: ANN001 - dict API
        raise SnapshotMutationError(
            f"in-place {op!r} on a published COW snapshot: snapshots are "
            "read lock-free by shard threads and must be rebuilt and "
            "rebound under the mutator lock, never mutated"
        )

    method.__name__ = op
    return method


class FrozenSnapshot(dict):
    """A dict whose mutators raise; reads are ordinary dict reads."""

    __slots__ = ()

    __setitem__ = _refuse("__setitem__")
    __delitem__ = _refuse("__delitem__")
    __ior__ = _refuse("__ior__")
    clear = _refuse("clear")
    pop = _refuse("pop")
    popitem = _refuse("popitem")
    setdefault = _refuse("setdefault")
    update = _refuse("update")


#: single-element cell so closures observe toggles (same idiom as the
#: codegen strict flag).
_FREEZE = [False]


def set_freezing(enabled: bool) -> None:
    """Toggle snapshot freezing (installed by analysis mode)."""
    _FREEZE[0] = bool(enabled)


def freezing() -> bool:
    return _FREEZE[0]


def publish_snapshot(snapshot: Dict) -> Dict:
    """Prepare a freshly built dict for lock-free publication.

    Identity function in production; returns a mutation-raising
    :class:`FrozenSnapshot` copy when the freezer is enabled.
    """
    if _FREEZE[0]:
        return FrozenSnapshot(snapshot)
    return snapshot
