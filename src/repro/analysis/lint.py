"""repro-lint driver: file walking, pragmas, baseline, CLI.

Usage (from the repo root)::

    PYTHONPATH=src python -m repro.analysis.lint              # human output
    PYTHONPATH=src python -m repro.analysis.lint --json       # machine output
    PYTHONPATH=src python -m repro.analysis.lint --write-baseline

Exit status: 0 when no *new* (non-baselined, non-suppressed) findings,
1 when there are, 2 on usage errors.  The baseline file grandfathers
intentional findings; each entry carries a human comment explaining
why the construct is kept.  Suppression at a single site is a pragma::

    risky_call()  # repro-lint: disable=RL001,RL005

A pragma on its own line applies to the next line; ``disable-file=``
within the first ten lines suppresses a code for the whole file.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import ALL_ROOTS, DEFAULT_CONFIG, LintConfig
from repro.analysis.rules import RULES, Finding, ParsedFile

_PRAGMA = re.compile(r"#\s*repro-lint:\s*(disable|disable-file)=([A-Z0-9,\s]+)")

BASELINE_DEFAULT = ".repro-lint-baseline.json"


# -- pragmas ----------------------------------------------------------


def _pragmas(lines: Sequence[str]) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and per-file disabled codes.

    Returns (line → codes) with 1-based line numbers; a pragma that is
    the whole line also covers the following line.
    """
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for number, line in enumerate(lines, start=1):
        match = _PRAGMA.search(line)
        if not match:
            continue
        codes = {code.strip() for code in match.group(2).split(",") if code.strip()}
        if match.group(1) == "disable-file":
            if number <= 10:
                file_wide.update(codes)
            continue
        by_line.setdefault(number, set()).update(codes)
        if line.strip().startswith("#"):
            by_line.setdefault(number + 1, set()).update(codes)
    return by_line, file_wide


def _suppressed(finding: Finding, by_line: Dict[int, Set[str]], file_wide: Set[str]) -> bool:
    if finding.code in file_wide:
        return True
    return finding.code in by_line.get(finding.line, ())


# -- baseline ---------------------------------------------------------


def fingerprint(finding: Finding, line_text: str, occurrence: int) -> str:
    """Stable identity for a finding: code, path, the *text* of the
    offending line (not its number — the baseline survives unrelated
    edits above it) and an occurrence index for duplicates."""
    payload = f"{finding.code}|{finding.path}|{line_text.strip()}|{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _fingerprints(findings: Sequence[Finding], files: Dict[str, ParsedFile]) -> List[str]:
    counts: Dict[Tuple[str, str, str], int] = {}
    prints = []
    for finding in findings:
        parsed = files.get(finding.path)
        line_text = ""
        if parsed is not None and 1 <= finding.line <= len(parsed.lines):
            line_text = parsed.lines[finding.line - 1]
        key = (finding.code, finding.path, line_text.strip())
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        prints.append(fingerprint(finding, line_text, occurrence))
    return prints


def load_baseline(path: Path) -> Dict[str, dict]:
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    return {entry["fingerprint"]: entry for entry in data.get("entries", [])}


def write_baseline(
    path: Path, findings: Sequence[Finding], prints: Sequence[str],
    old: Optional[Dict[str, dict]] = None,
) -> None:
    old = old or {}
    entries = []
    for finding, fp in zip(findings, prints):
        entry = {
            "fingerprint": fp,
            "code": finding.code,
            "path": finding.path,
            "line": finding.line,
            "comment": old.get(fp, {}).get("comment", "TODO: justify or fix"),
        }
        entries.append(entry)
    entries.sort(key=lambda e: (e["path"], e["line"], e["code"]))
    path.write_text(json.dumps({"version": 1, "entries": entries}, indent=2) + "\n")


# -- driver -----------------------------------------------------------


def _relpath(path: Path, root: Path) -> str:
    return path.resolve().relative_to(root.resolve()).as_posix()


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def parse_file(path: Path, root: Path) -> ParsedFile:
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text)
    except SyntaxError:
        tree = None
    return ParsedFile(
        path=_relpath(path, root),
        text=text,
        lines=text.splitlines(),
        tree=tree,
    )


def _in_scope(relpath: str, scopes: Tuple[str, ...]) -> bool:
    return any(relpath.startswith(prefix) for prefix in scopes)


def lint_paths(
    paths: Sequence[Path],
    root: Path,
    config: LintConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], List[Finding], Dict[str, ParsedFile]]:
    """Run every (selected) rule over every file under ``paths``.

    Returns ``(findings, suppressed, files)``: pragma-suppressed
    findings are split out, baseline filtering is the caller's job.
    """
    selected = {code: RULES[code] for code in (rules or sorted(RULES))}
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    files: Dict[str, ParsedFile] = {}
    for path in iter_python_files(paths):
        parsed = parse_file(path, root)
        files[parsed.path] = parsed
        by_line, file_wide = _pragmas(parsed.lines)
        for code, rule in selected.items():
            scopes = config.rule_scopes.get(code, ("",))
            if not _in_scope(parsed.path, scopes):
                continue
            for finding in rule.check(parsed, config):
                if _suppressed(finding, by_line, file_wide):
                    suppressed.append(finding)
                else:
                    findings.append(finding)
    for required in config.generated_required:
        if required not in files and _any_parent_walked(required, paths, root):
            findings.append(
                Finding(
                    "RL006",
                    required,
                    0,
                    0,
                    "required generated file is missing; regenerate it "
                    "(python -m repro.core.codec.manifest --write)",
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, suppressed, files


def _any_parent_walked(required: str, paths: Sequence[Path], root: Path) -> bool:
    target = (root / required).resolve()
    for path in paths:
        try:
            target.relative_to(path.resolve())
        except ValueError:
            continue
        return True
    return False


# -- CLI --------------------------------------------------------------


def _human(findings: Sequence[Finding]) -> str:
    out = [f"{f.location()} {f.code} {f.message}" for f in findings]
    return "\n".join(out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST lint for repo concurrency/codec contracts (RL001-RL006)",
    )
    parser.add_argument(
        "paths", nargs="*", help=f"files/dirs to lint (default: {', '.join(ALL_ROOTS)})"
    )
    parser.add_argument("--root", default=".", help="repo root for relative paths")
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--baseline",
        default=BASELINE_DEFAULT,
        help="baseline file of grandfathered findings (relative to --root)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record all current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--rules", help="comma-separated subset of rule codes to run"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code].summary}")
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"repro-lint: --root {args.root!r} is not a directory", file=sys.stderr)
        return 2
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [root / sub for sub in ALL_ROOTS if (root / sub).is_dir()]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    rules = None
    if args.rules:
        rules = [code.strip() for code in args.rules.split(",") if code.strip()]
        unknown = [code for code in rules if code not in RULES]
        if unknown:
            print(f"repro-lint: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    findings, suppressed, files = lint_paths(paths, root, rules=rules)
    prints = _fingerprints(findings, files)

    baseline_path = root / args.baseline
    if args.write_baseline:
        old = load_baseline(baseline_path)
        write_baseline(baseline_path, findings, prints, old)
        print(f"repro-lint: wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding, fp in zip(findings, prints):
        (grandfathered if fp in baseline else new).append(finding)

    if args.json:
        print(
            json.dumps(
                {
                    "new": [vars(f) for f in new],
                    "baselined": [vars(f) for f in grandfathered],
                    "suppressed": [vars(f) for f in suppressed],
                    "summary": {
                        "new": len(new),
                        "baselined": len(grandfathered),
                        "suppressed": len(suppressed),
                    },
                },
                indent=2,
            )
        )
    else:
        if new:
            print(_human(new))
        print(
            f"repro-lint: {len(new)} new finding(s), "
            f"{len(grandfathered)} baselined, {len(suppressed)} suppressed"
        )
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
